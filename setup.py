"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in fully offline environments where the
``wheel`` package (needed by the PEP 517 editable path) is unavailable.
"""

from setuptools import setup

setup()
