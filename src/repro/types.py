"""Shared types for the volatile-resource scheduling reproduction.

This module defines the small vocabulary shared across the whole package:
the three processor states of the paper's model (Section 3.2), the state
encoding used by availability traces, and a handful of type aliases.

The paper encodes processor availability as a vector ``S_q`` whose entry
``S_q[t]`` is one of ``u`` (UP), ``r`` (RECLAIMED) or ``d`` (DOWN).  We mirror
that encoding both as an :class:`enum.IntEnum` (for fast numpy storage) and
as the single-character codes used throughout the paper (for readable test
fixtures and trace files).
"""

from __future__ import annotations

import enum
from typing import Sequence, Union

import numpy as np

__all__ = [
    "ProcState",
    "STATE_CODES",
    "CODE_TO_STATE",
    "states_from_codes",
    "codes_from_states",
    "StateTrace",
    "Slot",
]

#: A discrete time-slot index (the paper discretises time, Section 3.2).
Slot = int

#: A per-processor availability trace: one state per time slot.
StateTrace = np.ndarray


class ProcState(enum.IntEnum):
    """The three availability states of a volatile processor.

    The integer values are chosen so that traces can be stored as compact
    ``uint8`` numpy arrays and compared vectorially.

    * :attr:`UP` — available for computation and communication.
    * :attr:`RECLAIMED` — temporarily preempted by its owner; ongoing work is
      suspended and resumes untouched when the processor returns to UP.
    * :attr:`DOWN` — crashed; the application program, any task data, and any
      partially computed results on the processor are lost.
    """

    UP = 0
    RECLAIMED = 1
    DOWN = 2

    @property
    def code(self) -> str:
        """The paper's single-character code for this state (u/r/d)."""
        return STATE_CODES[self]

    @classmethod
    def from_code(cls, code: str) -> "ProcState":
        """Parse the paper's single-character code (``u``/``r``/``d``).

        Raises:
            ValueError: if ``code`` is not one of ``u``, ``r``, ``d``.
        """
        try:
            return CODE_TO_STATE[code]
        except KeyError:
            raise ValueError(
                f"unknown processor state code {code!r}; expected one of 'u', 'r', 'd'"
            ) from None


#: Mapping from state to the paper's character code.
STATE_CODES = {
    ProcState.UP: "u",
    ProcState.RECLAIMED: "r",
    ProcState.DOWN: "d",
}

#: Mapping from the paper's character code to state.
CODE_TO_STATE = {code: state for state, code in STATE_CODES.items()}


def states_from_codes(codes: Union[str, Sequence[str]]) -> np.ndarray:
    """Convert a string like ``"uurd"`` into a ``uint8`` state trace.

    Accepts either a single string (each character one slot) or a sequence
    of single-character strings.  This is the format used by the paper for
    availability vectors, e.g. ``S1 = [u, u, u, u, u, u, r, r, r]``.

    >>> states_from_codes("urd")
    array([0, 1, 2], dtype=uint8)
    """
    return np.array([ProcState.from_code(c) for c in codes], dtype=np.uint8)


def codes_from_states(states: Sequence[int]) -> str:
    """Convert a state trace back into the compact ``urd`` string form.

    >>> codes_from_states([0, 1, 2])
    'urd'
    """
    return "".join(STATE_CODES[ProcState(int(s))] for s in states)
