"""Internal argument-validation helpers.

Small, dependency-free checks shared across the package.  Each helper raises
a focused exception with the offending parameter name in the message so that
user errors surface at the API boundary rather than deep inside the
simulator's slot loop (where they would be expensive to trace back).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "require_positive_int",
    "require_nonnegative_int",
    "require_positive",
    "require_probability",
    "require_in_range",
]


def require_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, requiring it to be a positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def require_nonnegative_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, requiring it to be a non-negative integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def require_positive(value: Any, name: str) -> float:
    """Return ``value`` as a float, requiring it to be strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def require_probability(value: Any, name: str) -> float:
    """Return ``value`` as a float, requiring ``0 <= value <= 1``."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def require_in_range(value: Any, name: str, low: float, high: float) -> float:
    """Return ``value`` as a float, requiring ``low <= value <= high``."""
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value
