"""Small statistics utilities used by the experiment reports.

Only what the harness actually needs: means with standard errors, a
bootstrap confidence interval for skewed dfb distributions, and a compact
five-number summary.  Everything operates on plain sequences and returns
plain floats so report code stays free of numpy idioms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["DEFAULT_BOOTSTRAP_SEED", "mean_and_sem", "bootstrap_ci", "summarize", "Summary"]

#: Seed of the resampling generator when the caller passes none.  A fixed
#: default makes CI bounds a pure function of the data, so two report
#: builds over the same campaign agree bit for bit; callers that need
#: independent resampling streams (e.g. one per table row) should derive
#: and pass their own generator.
DEFAULT_BOOTSTRAP_SEED = 0xB007_57A9


def mean_and_sem(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and standard error of the mean.

    The SEM is 0.0 for singleton samples (no dispersion information).

    Raises:
        ValueError: on an empty sample.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    return mean, sem


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    dfb distributions are heavily right-skewed (many zeros, a long tail of
    bad instances), so a normal-approximation interval would be misleading;
    the percentile bootstrap needs no distributional assumption.

    Args:
        values: the sample.
        confidence: interval mass (default 95%).
        resamples: bootstrap resamples.
        rng: resampling generator.  Defaults to a generator seeded with
            :data:`DEFAULT_BOOTSTRAP_SEED`, so repeated report builds
            produce identical bounds; pass an explicit stream to decouple
            multiple intervals computed over the same data.

    Returns:
        ``(low, high)`` bounds for the mean.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = rng if rng is not None else np.random.default_rng(DEFAULT_BOOTSTRAP_SEED)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


@dataclass(frozen=True)
class Summary:
    """Five-number summary plus mean/SEM."""

    count: int
    mean: float
    sem: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f}±{self.sem:.2f} "
            f"min={self.minimum:.2f} q25={self.q25:.2f} med={self.median:.2f} "
            f"q75={self.q75:.2f} max={self.maximum:.2f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Five-number summary with mean and SEM."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    mean, sem = mean_and_sem(arr)
    q25, median, q75 = np.quantile(arr, [0.25, 0.5, 0.75])
    return Summary(
        count=int(arr.size),
        mean=mean,
        sem=sem,
        minimum=float(arr.min()),
        q25=float(q25),
        median=float(median),
        q75=float(q75),
        maximum=float(arr.max()),
    )
