"""Terminal plotting: ASCII line charts and aligned tables.

The paper's Figure 2 is a multi-series line chart (average dfb versus
``wmin``).  We render the same chart as ASCII so the reproduction needs no
plotting dependency and the benchmark output remains diffable text.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["ascii_plot", "format_table"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    Args:
        series: mapping of series name to y-values (all the same length as
            ``x_values``; ``nan`` entries are skipped).
        x_values: shared x coordinates (ascending).
        width: plot-area character width.
        height: plot-area character height.
        title: optional title line.
        x_label / y_label: optional axis labels.

    Returns:
        The chart as a multi-line string (legend included).
    """
    if not series:
        raise ValueError("need at least one series")
    n = len(x_values)
    if n == 0:
        raise ValueError("x_values must be non-empty")
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {n} x-values"
            )

    finite = [
        y
        for ys in series.values()
        for y in ys
        if y == y  # filters nan
    ]
    if not finite:
        raise ValueError("all series values are NaN")
    y_min = min(finite)
    y_max = max(finite)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x_values[0]), float(x_values[-1])
    if x_max == x_min:
        x_max = x_min + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, int(round((x - x_min) / (x_max - x_min) * (width - 1))))

    def to_row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, int(round((1.0 - frac) * (height - 1))))

    legend: Dict[str, str] = {}
    for s_idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        legend[name] = marker
        previous: Optional[tuple] = None
        for x, y in zip(x_values, ys):
            if y != y:  # nan
                previous = None
                continue
            col, row = to_col(float(x)), to_row(float(y))
            grid[row][col] = marker
            if previous is not None:
                # Linear interpolation between consecutive points.
                pcol, prow = previous
                steps = max(abs(col - pcol), abs(row - prow))
                for step in range(1, steps):
                    icol = pcol + (col - pcol) * step // max(steps, 1)
                    irow = prow + (row - prow) * step // max(steps, 1)
                    if grid[irow][icol] == " ":
                        grid[irow][icol] = "."
            previous = (col, row)

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_max:.1f}"), len(f"{y_min:.1f}"))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = f"{y_max:.1f}"
        elif row_idx == height - 1:
            label = f"{y_min:.1f}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_min:g}" + " " * (width - len(f"{x_min:g}") - len(f"{x_max:g}")) + f"{x_max:g}"
    lines.append(" " * label_width + "  " + x_axis)
    if x_label:
        lines.append(" " * label_width + "  " + x_label.center(width))
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    lines.append("legend: " + "  ".join(f"{m}={name}" for name, m in legend.items()))
    return "\n".join(lines)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned text table (paper-style results table).

    Numeric cells are right-aligned, text cells left-aligned.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("all rows must match the header width")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    numeric = [
        all(_is_numeric(row[i]) for row in str_rows) if str_rows else False
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
