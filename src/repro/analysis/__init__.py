"""Statistics and text plotting helpers for the experiment harness."""

from .gantt import render_gantt
from .plotting import ascii_plot, format_table
from .stats import bootstrap_ci, mean_and_sem, summarize

__all__ = [
    "mean_and_sem",
    "bootstrap_ci",
    "summarize",
    "ascii_plot",
    "format_table",
    "render_gantt",
]
