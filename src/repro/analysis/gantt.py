"""ASCII Gantt rendering of recorded simulation timelines.

Turns a :class:`~repro.sim.timeline.TimelineRecorder` matrix into the
schedule pictures scheduling papers reason about: one row per processor,
one column per slot, with the activity codes documented in
:mod:`repro.sim.timeline` (``#`` compute, ``=`` data, ``p`` program,
``.`` idle-UP, ``r`` reclaimed, ``X`` down).

Long runs are windowed (``start``/``width``) and tick-marked every ten
slots so slot indices remain readable.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["render_gantt"]

LEGEND = "legend: #=compute  ==data  p=program  .=idle-up  r=reclaimed  X=down"


def render_gantt(
    timeline,
    *,
    start: int = 0,
    width: Optional[int] = None,
    workers: Optional[List[int]] = None,
    show_legend: bool = True,
) -> str:
    """Render a timeline window as an ASCII Gantt chart.

    Args:
        timeline: a :class:`~repro.sim.timeline.TimelineRecorder`.
        start: first slot of the window.
        width: window width in slots (default: to the end of the record).
        workers: subset of worker indices to show (default: all).
        show_legend: append the activity legend.

    Returns:
        The chart as a multi-line string.

    Raises:
        ValueError: for an empty record or an out-of-range window.
    """
    matrix = timeline.matrix()
    slots = matrix.shape[0]
    if slots == 0:
        raise ValueError("timeline is empty; was the recorder attached?")
    if not 0 <= start < slots:
        raise ValueError(f"start {start} outside recorded range [0, {slots})")
    end = slots if width is None else min(slots, start + width)
    chosen = workers if workers is not None else list(range(timeline.n_workers))
    for q in chosen:
        if not 0 <= q < timeline.n_workers:
            raise ValueError(f"worker {q} out of range")

    label_width = max(len(f"P{q}") for q in chosen) + 1
    window = end - start

    # Tick header: a mark every 10 slots, labelled with the slot index.
    ticks = [" "] * window
    labels = [" "] * window
    for offset in range(window):
        slot = start + offset
        if slot % 10 == 0:
            ticks[offset] = "|"
            text = str(slot)
            for i, ch in enumerate(text):
                if offset + i < window:
                    labels[offset + i] = ch
    lines = [
        " " * label_width + "".join(labels),
        " " * label_width + "".join(ticks),
    ]
    for q in chosen:
        row = "".join(chr(c) for c in matrix[start:end, q])
        lines.append(f"{f'P{q}':<{label_width}}{row}")
    if show_legend:
        lines.append(LEGEND)
    return "\n".join(lines)
