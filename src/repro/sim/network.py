"""The bounded multi-port master network (paper Section 3.2).

The master's outgoing link supports at most ``ncom = BW / bw`` simultaneous
communications, each at the fixed per-worker bandwidth ``bw``; at every slot
the number of program transfers plus data transfers must satisfy
``nprog + ndata <= ncom``.

:class:`BoundedMultiportNetwork` performs the per-slot *channel allocation*:
given the set of transfer requests for this slot, it grants at most ``ncom``
of them (at most one per worker), preferring

1. transfers that have already started (a started communication is never
   starved by a newer one — this realises the "finish what you began"
   discipline of the dynamic heuristic class),
2. program transfers over data transfers (a worker without the program can
   do nothing at all, so program bytes are the scarcer resource),
3. original task instances over replicas (Section 6.1: originals have
   priority over replicas),
4. lower processor index (deterministic tie-break).

The class also keeps an audit trail of per-slot channel usage so tests and
the simulation report can *prove* the bandwidth constraint was never
violated, rather than trusting the loop structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional

from .._validation import require_positive_int

__all__ = ["TransferRequest", "BoundedMultiportNetwork"]


@dataclass(frozen=True)
class TransferRequest:
    """One worker's request for a channel this slot.

    Attributes:
        worker: processor index of the receiving worker.
        kind: ``"prog"`` or ``"data"``.
        started: True if this transfer already received at least one slot
            of service (it is being *resumed*, not opened).
        is_replica: True when the data transfer feeds a replica instance.
        key: opaque identifier echoed back in the grant list so the caller
            can map grants to its own transfer records.
    """

    worker: int
    kind: str
    started: bool
    is_replica: bool
    key: object

    def __post_init__(self) -> None:
        if self.kind not in ("prog", "data"):
            raise ValueError(f"kind must be 'prog' or 'data', got {self.kind!r}")
        if self.worker < 0:
            raise ValueError(f"worker index must be >= 0, got {self.worker}")

    @cached_property
    def priority(self) -> tuple:
        """Sort key implementing the allocation policy (lower = first).

        Cached: requests are immutable, and the span-stepped master
        reuses request objects across slots (``_gather_requests``), so
        the allocator's sort key is built once per distinct request.
        """
        return (
            0 if self.started else 1,
            0 if self.kind == "prog" else 1,
            0 if not self.is_replica else 1,
            self.worker,
        )


@dataclass(frozen=True)
class SlotUsage:
    """Audit record of one slot's channel allocation."""

    slot: int
    nprog: int
    ndata: int
    requested: int

    @property
    def total(self) -> int:
        return self.nprog + self.ndata


class BoundedMultiportNetwork:
    """Per-slot channel allocator with invariant auditing.

    Args:
        ncom: the maximum number of simultaneous communications.  ``None``
            models the unbounded case of Proposition 2.
        audit: when True (default), every allocation is recorded and
            :meth:`verify_invariants` can assert the bandwidth constraint
            held at every slot of the run.
    """

    def __init__(self, ncom: Optional[int] = None, *, audit: bool = True):
        if ncom is not None:
            ncom = require_positive_int(ncom, "ncom")
        self.ncom = ncom
        self._audit = audit
        self._usage: List[SlotUsage] = []

    def plan(
        self,
        requests: List[TransferRequest],
        *,
        slot: Optional[int] = None,
    ) -> List[TransferRequest]:
        """The allocation decision alone: which requests win a channel.

        Pure (no audit trail side effects) — used by :meth:`allocate` and
        by the span-stepped master's audit mode to re-verify mid-span
        that the boundary-slot grants are still the ones a fresh
        allocation would make.  ``slot`` is diagnostic only (error
        context).

        **Grant stability** (the invariant DESIGN.md §6 leans on): while
        the *set* of requests is unchanged, re-running the allocation on
        consecutive slots returns the same granted set.  Serving a grant
        flips its ``started`` bit to True, which only *improves* its
        priority; ungranted requests keep theirs.  Every granted request
        therefore still ranks above every ungranted one on the next slot,
        so no new grant decision can arise mid-span — the master re-runs
        allocation only at span boundaries.

        Raises:
            ValueError: if two requests name the same worker.
        """
        seen_workers = set()
        for req in requests:
            if req.worker in seen_workers:
                where = "" if slot is None else f" in slot {slot}"
                raise ValueError(
                    f"worker {req.worker} submitted two transfer requests"
                    f"{where}; the model allows one communication per worker"
                )
            seen_workers.add(req.worker)

        ranked = sorted(requests, key=lambda r: r.priority)
        if self.ncom is not None:
            return ranked[: self.ncom]
        return ranked

    def allocate(
        self, slot: int, requests: List[TransferRequest]
    ) -> List[TransferRequest]:
        """Grant channels for this slot.

        Args:
            slot: the current slot (for the audit trail).
            requests: all pending transfer requests.  At most one request
                per worker may be submitted (the model allows one concurrent
                communication per worker).

        Returns:
            The granted requests, in priority order.

        Raises:
            ValueError: if two requests name the same worker.
        """
        granted = self.plan(requests, slot=slot)
        if self._audit:
            nprog = sum(1 for r in granted if r.kind == "prog")
            ndata = len(granted) - nprog
            self._usage.append(
                SlotUsage(slot=slot, nprog=nprog, ndata=ndata, requested=len(requests))
            )
        return granted

    def record_span(
        self, start_slot: int, count: int, *, nprog: int, ndata: int, requested: int
    ) -> None:
        """Audit-record ``count`` quiet slots repeating one allocation.

        The span-stepped master calls this for slots it fast-forwards:
        the request set and grants are provably identical to the last
        boundary slot's (see :meth:`plan`), so the audit trail stays
        bit-for-bit what a slot-stepped run would have recorded.
        """
        if not self._audit or count <= 0:
            return
        self._usage.extend(
            SlotUsage(
                slot=start_slot + offset,
                nprog=nprog,
                ndata=ndata,
                requested=requested,
            )
            for offset in range(count)
        )

    # ------------------------------------------------------------------ #
    # Audit / reporting.                                                   #
    # ------------------------------------------------------------------ #
    @property
    def usage(self) -> List[SlotUsage]:
        """The per-slot audit trail (empty when ``audit=False``)."""
        return list(self._usage)

    def verify_invariants(self) -> None:
        """Assert ``nprog + ndata <= ncom`` held at every audited slot.

        Raises:
            AssertionError: if any slot exceeded the channel budget.
        """
        if self.ncom is None:
            return
        for record in self._usage:
            if record.total > self.ncom:
                raise AssertionError(
                    f"bandwidth constraint violated at slot {record.slot}: "
                    f"nprog={record.nprog} + ndata={record.ndata} > ncom={self.ncom}"
                )

    def busy_slot_count(self) -> int:
        """Number of audited slots with at least one active channel."""
        return sum(1 for record in self._usage if record.total > 0)

    def channel_slot_total(self) -> int:
        """Total channel-slots consumed (the master's communication work)."""
        return sum(record.total for record in self._usage)

    def mean_utilization(self) -> float:
        """Average fraction of the channel budget in use over audited slots.

        Returns 0.0 when nothing was audited or ``ncom`` is unbounded.
        """
        if self.ncom is None or not self._usage:
            return 0.0
        return self.channel_slot_total() / (self.ncom * len(self._usage))
