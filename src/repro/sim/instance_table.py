"""Structure-of-arrays bookkeeping for the master's live task instances.

PR 3's array-backed scheduler left the *simulator body* as the dominant
per-run cost: the master kept its live instances in a Python list and
answered every question about them by scanning it — triviality checks and
glide analysis at every span boundary, unpinned collection every round,
replication counts, sibling lookups at commit, and an O(instances) list
rebuild per destroyed instance.  :class:`InstanceTable` replaces the list
with a table of *rows* (slots reused through a free list) holding parallel
columns plus incrementally maintained aggregates, so each of those scans
becomes a column operation or an O(1) counter read (DESIGN.md §9).

**Columns** (indexed by row):

===============  ============  ==========================================
column           storage       meaning
===============  ============  ==========================================
``task_id``      int32 array   task index within the iteration (-1 dead)
``replica_id``   int16 array   0 original, 1.. replicas
``pinned``       bool array    work has begun (data started or computing)
``computing``    bool array    currently its worker's computing instance
``alive``        bool array    row is live
``seq``          int64 array   creation order (the instance ``uid``)
===============  ============  ==========================================

The columns deliberately exclude per-round-churning placement state:
every scheduling round re-plans every unpinned instance (tens of
thousands of placements per run), so a mirrored ``worker``/queue-length
column would be written far more often than it is read.  The hosting
worker stays on the instance record (``inst.worker``) and queue lengths
are ``len(worker.queue)`` — both already O(1) — while the table tracks
only what changes at *event* rate.

``objects[row]`` holds the live :class:`~repro.sim.worker.TaskInstance`
record carrying the per-slot progress counters (``data_received``,
``compute_done``, and the remaining work derived from them); those tick
every simulated slot, where Python attribute writes beat numpy scalar
writes decisively, so they stay on the record — the table's columns
change only at *events* (creation, pinning, compute start, crash,
commit), mirroring the RoundState maintenance discipline (§8).

**Aggregates**, maintained incrementally at every mutation:

* per task (numpy arrays): ``live_count``, ``replica_mask`` (bitmask of
  live replica ids), ``original_row`` (row of the live original, -1
  after commit), ``committed``; plus ``rows_of[t]`` — live rows in
  creation order (the commit path's sibling lookup);
* per worker: ``computing_row`` (row of the computing instance, -1 when
  idle) — the O(1) lookup the compute/span loops use instead of a queue
  scan;
* scalars: ``n_live``, the ``unpinned`` row set (O(1) round-triviality /
  glide checks via its size), ``n_uncommitted``, and ``repl_deficit``
  (uncommitted tasks with fewer than ``max_instances`` live instances —
  replication is saturated exactly when it is zero).

``ops`` counts structural mutations (adds, destroys, pins, compute
starts, releases) and feeds the benchmark's ``instance_ops`` column.

The master's audit mode cross-checks every column and aggregate against
a brute-force rebuild (:meth:`audit`), the same belt-and-braces pattern
the incremental RoundState uses.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .worker import TaskInstance

__all__ = ["InstanceTable"]


class InstanceTable:
    """Row store for one iteration's live instances (see module docstring).

    Args:
        n_tasks: tasks per iteration (``m``).
        n_workers: processors (``p``).
        max_instances: cap on live instances per task (1 + max replicas);
            drives the replication-saturation counter.
        capacity: initial row capacity (defaults to the live-instance
            bound ``n_tasks * max_instances``; rows double on demand, so
            a smaller value only means early growth — used by tests).
    """

    def __init__(
        self,
        n_tasks: int,
        n_workers: int,
        max_instances: int,
        *,
        capacity: Optional[int] = None,
    ):
        if n_tasks <= 0 or n_workers <= 0 or max_instances <= 0:
            raise ValueError(
                "n_tasks, n_workers and max_instances must be positive, got "
                f"({n_tasks}, {n_workers}, {max_instances})"
            )
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.max_instances = max_instances
        if capacity is None:
            capacity = max(8, n_tasks * max_instances)
        elif capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        # Columns.
        self.task_id = np.full(capacity, -1, dtype=np.int32)
        self.replica_id = np.zeros(capacity, dtype=np.int16)
        self.pinned = np.zeros(capacity, dtype=bool)
        self.computing = np.zeros(capacity, dtype=bool)
        self.alive = np.zeros(capacity, dtype=bool)
        self.seq = np.zeros(capacity, dtype=np.int64)
        self.objects: List[Optional[TaskInstance]] = [None] * capacity
        #: Dead rows available for reuse; popped LIFO so row churn stays
        #: compact (lowest rows are recycled first after a reset).
        self.free: List[int] = list(range(capacity - 1, -1, -1))
        # Per-task aggregates.
        self.live_count = np.zeros(n_tasks, dtype=np.int32)
        self.replica_mask = np.zeros(n_tasks, dtype=np.int64)
        self.original_row = np.full(n_tasks, -1, dtype=np.int32)
        self.committed = np.zeros(n_tasks, dtype=bool)
        self.rows_of: List[List[int]] = [[] for _ in range(n_tasks)]
        # Per-worker aggregates.
        self.computing_row: List[int] = [-1] * n_workers
        # Scalars.
        self.unpinned: set = set()
        self.n_live = 0
        self.n_uncommitted = n_tasks
        self.repl_deficit = n_tasks
        #: Structural mutation counter (benchmark diagnostic).
        self.ops = 0

    @property
    def n_unpinned(self) -> int:
        """Live unpinned instances (O(1) triviality / glide check)."""
        return len(self.unpinned)

    # ------------------------------------------------------------------ #
    # Iteration lifecycle.                                                 #
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear every row and aggregate for a fresh iteration."""
        capacity = len(self.task_id)
        self.task_id[:] = -1
        self.pinned[:] = False
        self.computing[:] = False
        self.alive[:] = False
        self.objects = [None] * capacity
        self.free = list(range(capacity - 1, -1, -1))
        self.live_count[:] = 0
        self.replica_mask[:] = 0
        self.original_row[:] = -1
        self.committed[:] = False
        for rows in self.rows_of:
            rows.clear()
        self.computing_row = [-1] * self.n_workers
        self.unpinned = set()
        self.n_live = 0
        self.n_uncommitted = self.n_tasks
        self.repl_deficit = self.n_tasks

    def _grow(self) -> None:
        old = len(self.task_id)
        new = 2 * old
        for name in ("task_id", "replica_id", "pinned", "computing", "alive", "seq"):
            column = getattr(self, name)
            grown = np.zeros(new, dtype=column.dtype)
            grown[:old] = column
            setattr(self, name, grown)
        self.task_id[old:] = -1
        self.objects.extend([None] * old)
        self.free.extend(range(new - 1, old - 1, -1))

    # ------------------------------------------------------------------ #
    # Structural mutations.                                                #
    # ------------------------------------------------------------------ #
    def add(self, inst: TaskInstance) -> int:
        """Register a freshly created (unplaced, unpinned) instance."""
        if not self.free:
            self._grow()
        row = self.free.pop()
        inst.row = row
        task = inst.task_id
        self.task_id[row] = task
        self.replica_id[row] = inst.replica_id
        self.pinned[row] = False
        self.computing[row] = False
        self.alive[row] = True
        self.seq[row] = inst.uid
        self.objects[row] = inst
        if inst.replica_id == 0:
            self.original_row[task] = row
        count = int(self.live_count[task]) + 1
        self.live_count[task] = count
        if count == self.max_instances and not self.committed[task]:
            self.repl_deficit -= 1
        self.replica_mask[task] |= 1 << inst.replica_id
        self.rows_of[task].append(row)
        self.unpinned.add(row)
        self.n_live += 1
        self.ops += 1
        return row

    def destroy(self, inst: TaskInstance) -> None:
        """Drop a live instance: free its row, roll back every aggregate.

        Reads ``inst.worker`` for the computing-row rollback, so callers
        destroy *before* detaching the instance from its worker queue (or
        after :meth:`on_crash`, which clears the per-worker state)."""
        row = inst.row
        task = int(self.task_id[row])
        host = inst.worker
        if host is not None and self.computing_row[host] == row:
            self.computing_row[host] = -1
        if not self.pinned[row]:
            self.unpinned.discard(row)
        count = int(self.live_count[task]) - 1
        self.live_count[task] = count
        if count == self.max_instances - 1 and not self.committed[task]:
            self.repl_deficit += 1
        self.replica_mask[task] &= ~(1 << int(self.replica_id[row]))
        if self.original_row[task] == row:
            self.original_row[task] = -1
        self.rows_of[task].remove(row)
        self.task_id[row] = -1
        self.pinned[row] = False
        self.computing[row] = False
        self.alive[row] = False
        self.objects[row] = None
        self.free.append(row)
        inst.row = -1
        self.n_live -= 1
        self.ops += 1

    def pin(self, inst: TaskInstance) -> None:
        """Mark work begun (first data slot or computation start)."""
        row = inst.row
        if not self.pinned[row]:
            self.pinned[row] = True
            self.unpinned.discard(row)
            self.ops += 1

    def start_computing(self, inst: TaskInstance) -> None:
        """Record the worker's computing instance (pins it if needed)."""
        row = inst.row
        self.computing[row] = True
        self.computing_row[inst.worker] = row
        self.pin(inst)

    def release(self, inst: TaskInstance) -> None:
        """Roll back progress flags for an instance being reset in place
        (a crashed or proactively terminated original returning to the
        pool).  Reads ``inst.worker`` like :meth:`destroy`, so call it
        before the instance is detached (or after :meth:`on_crash`)."""
        row = inst.row
        host = inst.worker
        if host is not None and self.computing_row[host] == row:
            self.computing_row[host] = -1
        if self.pinned[row]:
            self.pinned[row] = False
            self.unpinned.add(row)
        self.computing[row] = False
        self.ops += 1

    def on_crash(self, host: int) -> None:
        """Zero the per-worker state after ``WorkerRuntime.crash``; the
        caller then destroys/releases each lost instance."""
        self.computing_row[host] = -1
        self.ops += 1

    def commit_task(self, task: int) -> None:
        """Mark a task committed (sibling rows are destroyed separately)."""
        self.committed[task] = True
        self.n_uncommitted -= 1
        if self.live_count[task] < self.max_instances:
            self.repl_deficit -= 1
        self.ops += 1

    # ------------------------------------------------------------------ #
    # Queries.                                                             #
    # ------------------------------------------------------------------ #
    @property
    def replication_saturated(self) -> bool:
        """True when every uncommitted task carries ``max_instances``
        live instances (O(1): the incrementally maintained deficit)."""
        return self.repl_deficit == 0

    def unpinned_rows(self) -> List[int]:
        """Rows of live unpinned instances, ascending."""
        return sorted(self.unpinned)

    def live_rows(self) -> np.ndarray:
        """All live rows, ascending."""
        return np.nonzero(self.alive)[0]

    def uncommitted_tasks(self) -> np.ndarray:
        """Task ids not yet committed, ascending."""
        return np.nonzero(~self.committed)[0]

    def hosts_of_task(self, task: int) -> set:
        """Workers currently hosting a live instance of ``task``."""
        objects = self.objects
        return {
            objects[row].worker
            for row in self.rows_of[task]
            if objects[row].worker is not None
        }

    def free_replica_id(self, task: int) -> int:
        """Lowest replica id in ``1..max_instances`` not currently live."""
        mask = int(self.replica_mask[task])
        rid = 1
        while mask >> rid & 1:
            rid += 1
        return rid

    # ------------------------------------------------------------------ #
    # Audit.                                                               #
    # ------------------------------------------------------------------ #
    def audit(self, instances: List[TaskInstance], committed: set) -> None:
        """Assert every column and aggregate against a brute-force rebuild
        from the reference instance list (master audit mode)."""
        assert self.n_live == len(instances), (
            f"n_live {self.n_live} != {len(instances)} live instances"
        )
        by_row = {}
        for inst in instances:
            row = inst.row
            assert 0 <= row < len(self.task_id), f"bad row {row} on {inst}"
            assert row not in by_row, f"row {row} assigned twice"
            by_row[row] = inst
            assert bool(self.alive[row])
            assert self.task_id[row] == inst.task_id
            assert self.replica_id[row] == inst.replica_id
            assert bool(self.pinned[row]) == inst.pinned
            assert (row in self.unpinned) == (not inst.pinned)
            assert self.seq[row] == inst.uid
            assert self.objects[row] is inst
        assert int(np.count_nonzero(self.alive)) == len(instances)
        assert len(self.unpinned) == sum(1 for i in instances if not i.pinned)
        for task in range(self.n_tasks):
            rows = [inst.row for inst in instances if inst.task_id == task]
            assert self.live_count[task] == len(rows)
            assert sorted(self.rows_of[task]) == sorted(rows)
            # rows_of preserves creation order (the commit path relies on it).
            seqs = [int(self.seq[row]) for row in self.rows_of[task]]
            assert seqs == sorted(seqs), f"task {task}: rows_of out of order"
            mask = 0
            original = -1
            for inst in instances:
                if inst.task_id == task:
                    mask |= 1 << inst.replica_id
                    if inst.replica_id == 0:
                        original = inst.row
            assert self.replica_mask[task] == mask
            assert self.original_row[task] == original
            assert bool(self.committed[task]) == (task in committed)
        assert self.n_uncommitted == self.n_tasks - len(committed)
        deficit = sum(
            1
            for task in range(self.n_tasks)
            if task not in committed
            and self.live_count[task] < self.max_instances
        )
        assert self.repl_deficit == deficit, (
            f"repl_deficit {self.repl_deficit} != rebuilt {deficit}"
        )
        assert sorted(self.free) == sorted(
            set(range(len(self.task_id))) - set(by_row)
        )
