"""A small discrete-event simulation kernel.

The volatile master–worker simulator in :mod:`repro.sim.master` advances in
*time slots* because the paper's model itself discretises time (Section
3.2) — every state transition, transfer and compute step happens at slot
boundaries, so a slot-stepped loop is the faithful realisation.

This module provides the complementary substrate: a classic event-heap
discrete-event kernel with generator-based processes (SimPy-style), used

* to unit-test event-driven behaviours in isolation,
* by extension experiments that need sub-slot or continuous-time events
  (e.g. the Weibull availability study samples sojourns in continuous time
  before rounding to slots), and
* as a building block for users who want to model richer platforms on top
  of this package.

Processes are Python generators that ``yield`` scheduling requests:

* ``yield Timeout(delay)`` — resume after ``delay`` time units;
* ``yield evt`` where ``evt`` is an :class:`Event` — resume when the event
  is succeeded, receiving its value;
* ``yield AllOf([...])`` / ``yield AnyOf([...])`` — barrier / race.

The kernel is deterministic: simultaneous events fire in scheduling order
(a monotone sequence number breaks time ties).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. yielding an unknown object)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    Attributes:
        cause: the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; :meth:`succeed` fires it with an optional
    value, waking every waiting process.  Succeeding twice is an error —
    one-shot semantics keep causality easy to reason about.
    """

    __slots__ = ("env", "_value", "_fired", "_callbacks")

    def __init__(self, env: "Environment"):
        self.env = env
        self._value: Any = None
        self._fired = False
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """True once the event has fired."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the event fired with (None until fired)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now, scheduling all waiters at the current time."""
        if self._fired:
            raise SimulationError("event already fired")
        self._fired = True
        self._value = value
        for cb in self._callbacks:
            self.env._schedule(self.env.now, cb, self)
        self._callbacks.clear()
        return self

    def _wait(self, callback: Callable[["Event"], None]) -> None:
        if self._fired:
            self.env._schedule(self.env.now, callback, self)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        env._schedule(env.now + delay, self._fire, None)

    def _fire(self, _evt: Optional[Event]) -> None:
        if not self._fired:
            self.succeed(self.delay)


class AllOf(Event):
    """Fires when all child events have fired; value = list of values."""

    __slots__ = ("_remaining", "_children")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child._wait(self._on_child)

    def _on_child(self, _evt: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self._fired:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value = (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf needs at least one event")
        for idx, child in enumerate(self._children):
            child._wait(lambda evt, idx=idx: self._on_child(idx, evt))

    def _on_child(self, idx: int, evt: Event) -> None:
        if not self._fired:
            self.succeed((idx, evt.value))


class Process(Event):
    """A running generator-based process.

    The process's event fires (with the generator's return value) when the
    generator finishes.  :meth:`interrupt` throws :class:`Interrupt` into
    the generator at the current simulation time.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "process",
    ):
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name
        env._schedule(env.now, self._resume, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._fired:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        self._waiting_on = None  # the pending wait is abandoned
        self.env._schedule(self.env.now, self._throw, Interrupt(cause))

    def _throw(self, exc: Interrupt) -> None:
        if self._fired:
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._await(target)

    def _resume(self, evt: Optional[Event]) -> None:
        if self._fired:
            return
        if evt is not None and evt is not self._waiting_on:
            return  # stale wakeup from an abandoned wait
        try:
            target = self._generator.send(evt.value if evt is not None else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._await(target)

    def _await(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes must yield Event instances"
            )
        self._waiting_on = target
        target._wait(self._resume)


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    callback: Callable[[Any], None] = field(compare=False)
    arg: Any = field(compare=False)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- factory helpers ------------------------------------------------ #
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        """An event firing ``delay`` from now."""
        return Timeout(self, delay)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = "process"
    ) -> Process:
        """Start a generator as a process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier over ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race over ``events``."""
        return AnyOf(self, events)

    # -- scheduling core ------------------------------------------------ #
    def _schedule(
        self, time: float, callback: Callable[[Any], None], arg: Any
    ) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past ({time} < {self._now})"
            )
        heapq.heappush(self._queue, _QueueEntry(time, next(self._seq), callback, arg))

    def step(self) -> None:
        """Process the next queued callback, advancing the clock."""
        entry = heapq.heappop(self._queue)
        self._now = entry.time
        entry.callback(entry.arg)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or the clock passes ``until``.

        When ``until`` is given, the clock is left at exactly ``until``
        even if the next event lies beyond it.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until ({until}) is before now ({self._now})")
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires (returning its value) or ``limit``.

        Raises:
            SimulationError: if the queue drains or the limit passes before
                the event fires.
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError("event queue drained before event fired")
            if self._queue[0].time > limit:
                raise SimulationError(f"time limit {limit} reached before event fired")
            self.step()
        return event.value
