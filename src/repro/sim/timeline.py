"""Per-slot activity timelines: what every worker did, every slot.

The event log (:mod:`repro.sim.events`) captures *transitions*; the
timeline recorder captures *occupancy* — for each worker and slot, its
availability state and the activity the simulator gave it.  Together they
make a run fully inspectable; the Gantt renderer in
:mod:`repro.analysis.gantt` turns the matrix into the kind of schedule
picture scheduling papers reason about.

Activities (one code per worker-slot):

====  =========================================================
code  meaning
====  =========================================================
``#``  computing a task
``=``  receiving task input data
``p``  receiving the application program
``.``  UP but idle
``r``  RECLAIMED (frozen)
``X``  DOWN
====  =========================================================

The recorder costs one row of bytes per slot; enable it for debugging and
examples, not for large campaigns.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..types import ProcState

__all__ = ["Activity", "TimelineRecorder"]


class Activity:
    """Byte codes stored in the timeline matrix."""

    COMPUTE = ord("#")
    DATA = ord("=")
    PROGRAM = ord("p")
    IDLE = ord(".")
    RECLAIMED = ord("r")
    DOWN = ord("X")


#: State code (``ProcState`` int) → availability-derived default activity,
#: as a lookup table so whole rows fill in one vectorised gather.
_STATE_DEFAULTS = np.zeros(3, dtype=np.uint8)
_STATE_DEFAULTS[int(ProcState.UP)] = Activity.IDLE
_STATE_DEFAULTS[int(ProcState.RECLAIMED)] = Activity.RECLAIMED
_STATE_DEFAULTS[int(ProcState.DOWN)] = Activity.DOWN


class TimelineRecorder:
    """Records a ``(slots, workers)`` activity matrix during a run.

    The master calls :meth:`begin_slot`, then :meth:`mark_compute` /
    :meth:`mark_transfer` as it grants work.  Workers not marked during a
    slot keep the availability-derived default (idle / reclaimed / down).
    """

    def __init__(self, n_workers: int):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers
        self._rows: List[np.ndarray] = []
        self._current: Optional[np.ndarray] = None

    def begin_slot(self, states: np.ndarray) -> None:
        """Open a new slot row, pre-filled from availability states.

        Vectorised: one table gather instead of a per-worker branch chain
        (this runs every recorded slot).
        """
        row = _STATE_DEFAULTS[np.asarray(states, dtype=np.uint8)]
        self._rows.append(row)
        self._current = row

    def mark_compute(self, worker: int) -> None:
        """Record one slot of computation on ``worker``."""
        self._mark(worker, Activity.COMPUTE)

    def mark_transfer(self, worker: int, kind: str) -> None:
        """Record one slot of channel service (``"prog"`` or ``"data"``).

        Computation takes display precedence over the overlapped data
        prefetch (both can happen in the same slot; the Gantt shows the
        CPU's view, and transfer totals remain available in the report).
        """
        code = Activity.PROGRAM if kind == "prog" else Activity.DATA
        if self._current is None:
            raise RuntimeError("mark_transfer before begin_slot")
        if self._current[worker] != Activity.COMPUTE:
            self._current[worker] = code

    def _mark(self, worker: int, code: int) -> None:
        if self._current is None:
            raise RuntimeError("mark before begin_slot")
        self._current[worker] = code

    def record_quiet_span(
        self,
        states: np.ndarray,
        compute_workers,
        transfer_marks,
        count: int,
    ) -> None:
        """Batch-fill ``count`` identical slot rows for a quiet span.

        The span-stepped master (DESIGN.md §6) calls this instead of
        ``count`` ``begin_slot``/``mark_*`` cycles: inside a quiet span the
        states are constant, the same workers compute every slot, and the
        same channel grants serve every slot, so a single row — built with
        exactly the per-slot precedence rules (compute over transfer over
        the availability default) — repeats verbatim.  The row array is
        shared between the ``count`` entries; rows are never mutated after
        their slot ends, so :meth:`matrix` copies are unaffected.

        Args:
            states: the (constant) state vector over the span.
            compute_workers: indices computing on every span slot.
            transfer_marks: ``(worker, kind)`` per stable channel grant.
            count: span length in slots (must be positive).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        row = _STATE_DEFAULTS[np.asarray(states, dtype=np.uint8)]
        for q in compute_workers:
            row[q] = Activity.COMPUTE
        for q, kind in transfer_marks:
            if row[q] != Activity.COMPUTE:
                row[q] = Activity.PROGRAM if kind == "prog" else Activity.DATA
        self._rows.extend([row] * count)
        self._current = None  # marks require a fresh begin_slot

    @property
    def slots_recorded(self) -> int:
        """Number of slot rows captured so far."""
        return len(self._rows)

    def matrix(self) -> np.ndarray:
        """The ``(slots, workers)`` activity matrix (uint8 char codes)."""
        if not self._rows:
            return np.empty((0, self.n_workers), dtype=np.uint8)
        return np.vstack(self._rows)

    def worker_row(self, worker: int) -> str:
        """One worker's activity string across all recorded slots."""
        if not 0 <= worker < self.n_workers:
            raise IndexError(f"worker {worker} out of range")
        return "".join(chr(c) for c in self.matrix()[:, worker])

    def busy_fraction(self, worker: int) -> float:
        """Fraction of recorded slots the worker computed or transferred."""
        row = self.matrix()[:, worker]
        if row.size == 0:
            return 0.0
        busy = np.isin(
            row, [Activity.COMPUTE, Activity.DATA, Activity.PROGRAM]
        ).sum()
        return float(busy) / row.size
