"""Round-relevance gating: replan policies and the exact-elision contract.

PR 3/4 made both the scheduling round and the simulator body cheap enough
that *how often rounds run* became the dominant cost lever (ROADMAP): the
master replans on every UP-set change while unpinned work exists, yet a
large fraction of those rounds provably reproduce the plan they replace.
This module holds the two knobs of the gating subsystem (DESIGN.md §10):

* the **exact tier** — always on by default
  (``SimulatorOptions.round_relevance="exact"``) and bit-identical: before
  mutating any queue the master asks the scheduler's
  :meth:`~repro.core.heuristics.base.Scheduler.would_replan` hook whether
  a re-plan could change anything, and skips the round's entire mutation
  phase (queue purges, replica drop/recreate churn, instance-table ops)
  when the answer is a proof of reproduction.  The proof machinery lives
  in :class:`~repro.sim.master.MasterSimulator`; this module only defines
  the policy layer;

* the **relaxed tier** — opt-in
  (``SimulatorOptions.replan_policy``), which *changes* the replan-trigger
  semantics and therefore the science: it is validated against the
  paper's shape targets by ``experiments/replan_study.py`` rather than by
  bit-identity.

Policies (:func:`parse_replan_policy`):

``event``
    The default, the paper's semantics: replan at every UP-set change,
    crash, commit, program completion and iteration boundary.
``every-slot``
    The ablation arm: a scheduling round every slot (alias of the legacy
    ``replan_every_slot`` flag; forces slot stepping).
``sticky``
    Pure UP-set churn never triggers a replan; only structural events
    (crash, commit, program completion, iteration boundary) do.  Plans
    stick to their processors — the ROADMAP's "sticky replicas" arm.
    Empty processors become entirely invisible to the span logic, so
    spans stretch to the next pipeline milestone.
``debounce:k``
    Leading-edge cooldown: an UP-set change triggers a replan only when
    at least ``k`` slots have passed since the last *executed* round;
    churn inside the cooldown window is dropped (not deferred).
    ``debounce:1`` is equivalent to ``event``.  Structural events always
    replan.
``relevant-up``
    Relevance-scoped churn: replan on UP *entries* and on exits of
    processors that carry work (a non-empty queue or partial program);
    exits of empty processors are ignored — removing a candidate that
    hosts nothing is the churn class the exact tier most often proves
    irrelevant, so this policy hard-codes that assumption and lets spans
    glide over those exits.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReplanPolicy", "REPLAN_POLICIES", "parse_replan_policy"]

#: Valid policy names (``debounce`` takes a ``:k`` suffix).
REPLAN_POLICIES = ("event", "every-slot", "sticky", "debounce", "relevant-up")


@dataclass(frozen=True)
class ReplanPolicy:
    """Parsed replan-trigger policy (see module docstring).

    Attributes:
        name: one of :data:`REPLAN_POLICIES`.
        debounce: the cooldown ``k`` for ``debounce:k`` (0 otherwise).
    """

    name: str
    debounce: int = 0

    @property
    def churn_always(self) -> bool:
        """True when every UP-set change triggers a replan unconditionally
        (the hot-path fast case: ``event`` and ``every-slot``)."""
        return self.name in ("event", "every-slot")

    @property
    def ignores_churn(self) -> bool:
        """True when pure UP-set churn never triggers a replan
        (``sticky``): empty processors are invisible to the span logic."""
        return self.name == "sticky"

    @property
    def ignores_empty_exits(self) -> bool:
        """True when exits of empty processors never trigger a replan
        (``sticky`` and ``relevant-up``)."""
        return self.name in ("sticky", "relevant-up")

    def spec(self) -> str:
        """The canonical spec string (round-trips through the parser)."""
        if self.name == "debounce":
            return f"debounce:{self.debounce}"
        return self.name


def parse_replan_policy(spec: str) -> ReplanPolicy:
    """Parse a :attr:`SimulatorOptions.replan_policy` spec string.

    Args:
        spec: ``"event"``, ``"every-slot"``, ``"sticky"``,
            ``"relevant-up"``, or ``"debounce:k"`` with integer ``k >= 1``.

    Raises:
        ValueError: for unknown names or malformed debounce windows.
    """
    if not isinstance(spec, str):
        raise ValueError(f"replan_policy must be a string, got {spec!r}")
    name, _, arg = spec.partition(":")
    if name == "debounce":
        if not arg:
            raise ValueError(
                "debounce policy needs a window: 'debounce:k' with k >= 1"
            )
        try:
            window = int(arg)
        except ValueError:
            raise ValueError(
                f"debounce window must be an integer, got {arg!r}"
            ) from None
        if window < 1:
            raise ValueError(f"debounce window must be >= 1, got {window}")
        return ReplanPolicy("debounce", window)
    if arg:
        raise ValueError(f"policy {name!r} takes no argument, got {spec!r}")
    if name not in REPLAN_POLICIES:
        known = ", ".join(REPLAN_POLICIES)
        raise ValueError(
            f"unknown replan_policy {spec!r}; known policies: {known} "
            "(debounce takes a ':k' window)"
        )
    return ReplanPolicy(name)
