"""Availability sources: ground-truth state generators for the simulator.

The simulator asks, slot by slot, "what state is processor q in now?".
That question is answered by an :class:`AvailabilitySource`.  Three families
are provided:

* :class:`MarkovSource` — samples the paper's 3-state chain lazily, in
  chunks, so arbitrarily long runs never need a pre-sized trace.
* :class:`TraceSource` — replays a fixed vector :math:`S_q` (offline
  instances, regression fixtures, and Failure-Trace-Archive-style traces
  loaded through :mod:`repro.workload.traces`).
* :class:`SemiMarkovSource` / :class:`WeibullSource` — non-memoryless
  generators for the paper's future-work direction (Section 8): state
  *sojourn times* are drawn from arbitrary distributions instead of the
  geometric sojourns a Markov chain implies.  These exercise the
  model-mismatch code path (heuristics still believe a Markov chain).

All sources share one contract (:class:`AvailabilitySource`):

* ``state_at(slot)`` — random access with O(1) amortised cost for the
  simulator's monotone access pattern.  **Hot path**: slots are assumed
  to be non-negative ints; validation lives in the batched accessors and
  the callers, never here.
* ``next_change_after(slot, limit=...)`` — the run-length query the
  span-stepped simulator core is built on (DESIGN.md §6): the first slot
  after ``slot`` whose state differs from ``state_at(slot)``.  Cheap for
  every family because all three hold materialised traces.
* ``block(start, stop)`` / ``materialized(length)`` — batched state
  reads (tests, belief fitting, :meth:`~repro.sim.platform.Platform.
  states_block`).

All sources are deterministic given their RNG/trace.  For the lazy
families the trace content is independent of the access pattern: every
generated slot consumes exactly one underlying draw in slot order, so a
span-stepped run that scans ahead sees the same states a slot-stepped run
does.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from .._validation import require_nonnegative_int, require_positive, require_positive_int
from ..core.markov import MarkovAvailabilityModel
from ..types import ProcState

__all__ = [
    "AvailabilitySource",
    "MarkovSource",
    "TraceSource",
    "SemiMarkovSource",
    "WeibullSource",
]

#: Initial scan window for ``next_change_after`` (doubles per miss).
_SCAN_CHUNK = 64
_SCAN_CHUNK_MAX = 1 << 16


class AvailabilitySource(Protocol):
    """Anything that can report a processor's state over time.

    Implementations must be deterministic given their construction inputs
    and support arbitrary (monotone-cheap) random access.  ``slot``
    arguments are assumed non-negative; per-call validation is deliberately
    left to callers so ``state_at`` stays off the hot path's profile.
    """

    def state_at(self, slot: int) -> int:
        """Ground-truth state (as ``int(ProcState)``) at slot ``slot``."""
        ...

    def next_change_after(
        self, slot: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        """First slot ``s > slot`` with ``state_at(s) != state_at(slot)``.

        Args:
            slot: reference slot.
            limit: give up after this slot — return ``None`` when no
                change occurs in ``(slot, limit]``.  Callers **must**
                pass a limit when the source may stay in one state
                forever (absorbing chains, exhausted traces); lazy
                sources would otherwise scan without bound.

        Returns:
            The change slot, or ``None`` if the state holds through
            ``limit`` (or forever, for sources that can prove it).
        """
        ...

    def block(self, start: int, stop: int) -> np.ndarray:
        """States for slots ``[start, stop)`` as a ``uint8`` array."""
        ...

    def materialized(self, length: int) -> np.ndarray:
        """The first ``length`` slots as a concrete array (tests, export)."""
        ...

    def up_count_in(self, start: int, stop: int) -> int:
        """Number of UP slots in ``[start, stop)``.

        O(1) amortised via a lazily maintained UP prefix sum; the
        span-stepped simulator uses it to advance a computing worker
        across a window in which the worker may freeze (RECLAIMED) and
        resume arbitrarily — compute progress is exactly the UP count.
        """
        ...

    def nth_up_after(
        self, slot: int, k: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        """The slot of the ``k``-th UP slot strictly after ``slot``.

        Returns ``None`` when fewer than ``k`` UP slots occur in
        ``(slot, limit]``.  This is the completion milestone of a
        computing instance with ``k`` slots of work left.  As with
        :meth:`next_change_after`, pass a ``limit`` whenever the source
        may never serve ``k`` UP slots.
        """
        ...


class _LazyTraceSource:
    """Shared machinery for sources backed by a lazily grown state trace.

    Subclasses hold the materialised trace in ``self._trace`` and
    implement :meth:`_grow_to`, extending the trace to at least the given
    length (consuming exactly one underlying draw per generated slot, so
    trace content never depends on the growth schedule).
    """

    _trace: np.ndarray
    _up_prefix: Optional[np.ndarray] = None

    def _grow_to(self, length: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _ensure(self, length: int) -> None:
        if length > len(self._trace):
            self._grow_to(length)

    def _prefix_to(self, length: int) -> np.ndarray:
        """The UP prefix-sum array covering at least ``trace[:length]``.

        ``prefix[i]`` is the number of UP slots among slots ``0..i-1``.
        The trace only ever grows by appending, so the prefix extends
        incrementally.
        """
        self._ensure(length)
        up = int(ProcState.UP)
        if self._up_prefix is None:
            self._up_prefix = np.concatenate(
                [[0], np.cumsum(self._trace == up, dtype=np.int64)]
            )
        elif len(self._up_prefix) <= len(self._trace):
            done = len(self._up_prefix) - 1
            extra = np.cumsum(self._trace[done:] == up, dtype=np.int64)
            self._up_prefix = np.concatenate(
                [self._up_prefix, extra + self._up_prefix[-1]]
            )
        return self._up_prefix

    def state_at(self, slot: int) -> int:
        # Hot path (called once per processor per boundary): no validation.
        if slot >= len(self._trace):
            self._grow_to(slot + 1)
        return int(self._trace[slot])

    def next_change_after(
        self, slot: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        current = self.state_at(slot)
        start = slot + 1
        chunk = _SCAN_CHUNK
        while limit is None or start <= limit:
            stop = start + chunk
            if limit is not None:
                stop = min(stop, limit + 1)
            self._ensure(stop)
            hits = np.flatnonzero(self._trace[start:stop] != current)
            if hits.size:
                return start + int(hits[0])
            start = stop
            chunk = min(chunk * 2, _SCAN_CHUNK_MAX)
        return None

    def block(self, start: int, stop: int) -> np.ndarray:
        start = require_nonnegative_int(start, "start")
        if stop < start:
            raise ValueError(f"stop must be >= start, got [{start}, {stop})")
        self._ensure(stop)
        return self._trace[start:stop].copy()

    def materialized(self, length: int) -> np.ndarray:
        length = require_positive_int(length, "length")
        return self.block(0, length)

    def up_count_in(self, start: int, stop: int) -> int:
        if stop <= start:
            return 0
        prefix = self._prefix_to(stop)
        return int(prefix[stop] - prefix[start])

    def nth_up_after(
        self, slot: int, k: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        if k <= 0:
            raise ValueError(f"k must be >= 1, got {k}")
        probe = slot + k  # cannot arrive sooner than k consecutive UP slots
        while True:
            if limit is not None:
                probe = min(probe, limit)
            prefix = self._prefix_to(probe + 1)
            target = prefix[slot + 1] + k
            if prefix[probe + 1] >= target:
                found = int(np.searchsorted(prefix, target, side="left")) - 1
                return found if (limit is None or found <= limit) else None
            if limit is not None and probe >= limit:
                return None
            probe = 2 * probe + 1


class MarkovSource(_LazyTraceSource):
    """Lazily sampled Markov availability (the paper's ground truth).

    The trace is extended in geometric chunks as the simulation advances,
    so the cost of a run is proportional to its makespan, not to a guessed
    horizon.
    """

    _CHUNK = 1024

    def __init__(
        self,
        model: MarkovAvailabilityModel,
        rng: np.random.Generator,
        *,
        initial: Optional[int] = None,
    ):
        self._model = model
        self._rng = rng
        self._trace = model.sample_trace(self._CHUNK, rng, initial=initial)

    @property
    def model(self) -> MarkovAvailabilityModel:
        """The generating chain (also the default scheduler belief)."""
        return self._model

    def _grow_to(self, length: int) -> None:
        while len(self._trace) < length:
            grow = max(self._CHUNK, len(self._trace))  # double each time
            self._trace = self._model.extend_trace(self._trace, grow, self._rng)


class TraceSource:
    """Replays a fixed availability vector :math:`S_q`.

    Slots beyond the end of the trace report ``pad_state`` (DOWN by
    default, so an exhausted offline trace never silently contributes
    compute).
    """

    def __init__(
        self, trace: Sequence[int], *, pad_state: ProcState = ProcState.DOWN
    ):
        arr = np.asarray(trace, dtype=np.uint8)
        if arr.ndim != 1 or len(arr) == 0:
            raise ValueError("trace must be a non-empty 1-D sequence")
        if arr.max(initial=0) > 2:
            raise ValueError("trace entries must be ProcState values (0, 1, 2)")
        self._trace = arr
        self._pad = int(pad_state)
        self._up_prefix: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._trace)

    def state_at(self, slot: int) -> int:
        # Hot path: bounds implicit (negative slots raise via the 0 <=
        # check below; beyond-the-end slots report the pad state).
        if 0 <= slot < len(self._trace):
            return int(self._trace[slot])
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return self._pad

    def next_change_after(
        self, slot: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        current = self.state_at(slot)
        length = len(self._trace)
        change: Optional[int] = None
        if slot + 1 < length:
            hits = np.flatnonzero(self._trace[slot + 1 :] != current)
            if hits.size:
                change = slot + 1 + int(hits[0])
        if change is None and self._pad != current:
            # Constant through the trace tail, then the pad takes over.
            change = max(length, slot + 1)
        if change is None or (limit is not None and change > limit):
            return None
        return change

    def block(self, start: int, stop: int) -> np.ndarray:
        start = require_nonnegative_int(start, "start")
        if stop < start:
            raise ValueError(f"stop must be >= start, got [{start}, {stop})")
        length = len(self._trace)
        if stop <= length:
            return self._trace[start:stop].copy()
        out = np.full(stop - start, self._pad, dtype=np.uint8)
        if start < length:
            out[: length - start] = self._trace[start:]
        return out

    def materialized(self, length: int) -> np.ndarray:
        length = require_positive_int(length, "length")
        return self.block(0, length)

    def _prefix(self) -> np.ndarray:
        if self._up_prefix is None:
            self._up_prefix = np.concatenate(
                [[0], np.cumsum(self._trace == int(ProcState.UP), dtype=np.int64)]
            )
        return self._up_prefix

    def up_count_in(self, start: int, stop: int) -> int:
        if stop <= start:
            return 0
        prefix = self._prefix()
        length = len(self._trace)
        in_trace = int(prefix[min(stop, length)] - prefix[min(start, length)])
        if self._pad == int(ProcState.UP) and stop > length:
            in_trace += stop - max(start, length)
        return in_trace

    def nth_up_after(
        self, slot: int, k: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        if k <= 0:
            raise ValueError(f"k must be >= 1, got {k}")
        prefix = self._prefix()
        length = len(self._trace)
        before = int(prefix[min(slot + 1, length)])  # UP slots in [0, slot]
        if self._pad == int(ProcState.UP) and slot + 1 > length:
            before += slot + 1 - length
        target = before + k
        found: Optional[int] = None
        if target <= prefix[-1]:
            found = int(np.searchsorted(prefix, target, side="left")) - 1
        elif self._pad == int(ProcState.UP):
            # The missing UP slots come from the padded tail.
            found = max(length, slot + 1) + (target - int(prefix[-1])) - 1
            if slot + 1 > length:
                found = slot + k
        if found is None or (limit is not None and found > limit):
            return None
        return found


class SemiMarkovSource(_LazyTraceSource):
    """Sojourn-time-driven availability (non-memoryless future work).

    The process alternates states according to an *embedded* transition
    matrix over UP/RECLAIMED/DOWN, but the time spent in each visit is drawn
    from a caller-supplied sojourn sampler per state — e.g. lognormal UP
    intervals, heavy-tailed DOWN repairs.  With geometric sojourns this
    reduces exactly to the Markov chain (asserted in tests).

    Args:
        embedded: a 3×3 matrix of *jump* probabilities; diagonal must be 0
            (self-transitions are expressed by the sojourn length instead).
        sojourn_samplers: for each state, a callable ``(rng) -> int`` giving
            the number of slots spent per visit (must be ≥ 1).
        rng: generator for both jumps and sojourns.
        initial: starting state (default UP).
    """

    _GROW = 1024

    def __init__(
        self,
        embedded: np.ndarray,
        sojourn_samplers: dict[int, Callable[[np.random.Generator], int]],
        rng: np.random.Generator,
        *,
        initial: int = int(ProcState.UP),
    ):
        embedded = np.asarray(embedded, dtype=float)
        if embedded.shape != (3, 3):
            raise ValueError("embedded matrix must be 3x3")
        if np.any(np.abs(np.diag(embedded)) > 1e-12):
            raise ValueError("embedded matrix diagonal must be zero")
        if not np.allclose(embedded.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("embedded matrix rows must sum to 1")
        for s in (0, 1, 2):
            if s not in sojourn_samplers:
                raise ValueError(f"missing sojourn sampler for state {s}")
        self._embedded = embedded
        self._samplers = sojourn_samplers
        self._rng = rng
        self._state = int(initial)
        self._trace = np.empty(0, dtype=np.uint8)
        self._grow_to(self._GROW)

    def _grow_to(self, length: int) -> None:
        # Geometric growth: monotone access patterns miss roughly once per
        # sojourn, and each miss re-concatenates the trace, so growing to
        # exactly the requested length would be quadratic in run length.
        length = max(length, 2 * len(self._trace))
        pieces = [self._trace]
        total = len(self._trace)
        while total < length:
            sojourn = int(self._samplers[self._state](self._rng))
            if sojourn < 1:
                raise ValueError(
                    f"sojourn sampler for state {self._state} returned {sojourn}; "
                    "sojourns must be >= 1 slot"
                )
            pieces.append(np.full(sojourn, self._state, dtype=np.uint8))
            total += sojourn
            row = self._embedded[self._state]
            self._state = int(
                np.searchsorted(np.cumsum(row), self._rng.random(), side="right")
            )
        self._trace = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]


class WeibullSource(SemiMarkovSource):
    """Availability with Weibull-distributed UP intervals.

    Empirical studies cited by the paper ([8, 9, 10]) report that UP
    interval durations on real desktop grids are well fit by Weibull
    distributions with shape < 1 (bursty, heavy-tailed).  This source keeps
    geometric RECLAIMED/DOWN sojourns (parameterised by their mean) but
    draws UP sojourns from ``Weibull(shape, scale)``, rounded up to ≥ 1
    slot.  Used for model-mismatch experiments.

    Args:
        shape: Weibull shape parameter ``k`` (``< 1`` → heavy tail).
        scale: Weibull scale parameter ``λ`` in slots.
        mean_reclaimed: mean RECLAIMED sojourn (geometric), slots.
        mean_down: mean DOWN sojourn (geometric), slots.
        p_up_to_reclaimed: probability that an ending UP interval goes to
            RECLAIMED rather than DOWN.
        rng: generator.
    """

    def __init__(
        self,
        *,
        shape: float,
        scale: float,
        mean_reclaimed: float,
        mean_down: float,
        p_up_to_reclaimed: float,
        rng: np.random.Generator,
    ):
        shape = require_positive(shape, "shape")
        scale = require_positive(scale, "scale")
        mean_reclaimed = require_positive(mean_reclaimed, "mean_reclaimed")
        mean_down = require_positive(mean_down, "mean_down")
        if not 0.0 <= p_up_to_reclaimed <= 1.0:
            raise ValueError("p_up_to_reclaimed must lie in [0, 1]")

        def up_sojourn(r: np.random.Generator) -> int:
            return max(1, int(np.ceil(scale * r.weibull(shape))))

        def geometric(mean: float) -> Callable[[np.random.Generator], int]:
            p = min(1.0, 1.0 / mean)

            def sample(r: np.random.Generator) -> int:
                return int(r.geometric(p))

            return sample

        embedded = np.array(
            [
                [0.0, p_up_to_reclaimed, 1.0 - p_up_to_reclaimed],
                [0.9, 0.0, 0.1],  # reclaimed mostly returns to UP
                [1.0, 0.0, 0.0],  # repair always returns to UP
            ]
        )
        super().__init__(
            embedded,
            {
                int(ProcState.UP): up_sojourn,
                int(ProcState.RECLAIMED): geometric(mean_reclaimed),
                int(ProcState.DOWN): geometric(mean_down),
            },
            rng,
        )
