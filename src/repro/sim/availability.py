"""Availability sources: ground-truth state generators for the simulator.

The simulator asks, slot by slot, "what state is processor q in now?".
That question is answered by an :class:`AvailabilitySource`.  Three families
are provided:

* :class:`MarkovSource` — samples the paper's 3-state chain lazily, in
  chunks, so arbitrarily long runs never need a pre-sized trace.
* :class:`TraceSource` — replays a fixed vector :math:`S_q` (offline
  instances, regression fixtures, and Failure-Trace-Archive-style traces
  loaded through :mod:`repro.workload.traces`).
* :class:`SemiMarkovSource` / :class:`WeibullSource` — non-memoryless
  generators for the paper's future-work direction (Section 8): state
  *sojourn times* are drawn from arbitrary distributions instead of the
  geometric sojourns a Markov chain implies.  These exercise the
  model-mismatch code path (heuristics still believe a Markov chain).

All sources are deterministic given their RNG/trace, and support random
access ``state_at(slot)`` with O(1) amortised cost for monotone access
patterns (the simulator's).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from .._validation import require_nonnegative_int, require_positive
from ..core.markov import MarkovAvailabilityModel
from ..types import ProcState

__all__ = [
    "AvailabilitySource",
    "MarkovSource",
    "TraceSource",
    "SemiMarkovSource",
    "WeibullSource",
]


class AvailabilitySource(Protocol):
    """Anything that can report a processor's state at a given slot."""

    def state_at(self, slot: int) -> int:
        """Ground-truth state (as ``int(ProcState)``) at slot ``slot``."""
        ...


class MarkovSource:
    """Lazily sampled Markov availability (the paper's ground truth).

    The trace is extended in geometric chunks as the simulation advances,
    so the cost of a run is proportional to its makespan, not to a guessed
    horizon.
    """

    _CHUNK = 1024

    def __init__(
        self,
        model: MarkovAvailabilityModel,
        rng: np.random.Generator,
        *,
        initial: Optional[int] = None,
    ):
        self._model = model
        self._rng = rng
        self._trace = model.sample_trace(self._CHUNK, rng, initial=initial)

    @property
    def model(self) -> MarkovAvailabilityModel:
        """The generating chain (also the default scheduler belief)."""
        return self._model

    def state_at(self, slot: int) -> int:
        # Hot path (called once per processor per slot): no validation.
        while slot >= len(self._trace):
            grow = max(self._CHUNK, len(self._trace))  # double each time
            self._trace = self._model.extend_trace(self._trace, grow, self._rng)
        return int(self._trace[slot])

    def materialized(self, length: int) -> np.ndarray:
        """The first ``length`` slots as a concrete array (tests, export)."""
        self.state_at(length - 1)
        return self._trace[:length].copy()


class TraceSource:
    """Replays a fixed availability vector :math:`S_q`.

    Slots beyond the end of the trace report ``pad_state`` (DOWN by
    default, so an exhausted offline trace never silently contributes
    compute).
    """

    def __init__(
        self, trace: Sequence[int], *, pad_state: ProcState = ProcState.DOWN
    ):
        arr = np.asarray(trace, dtype=np.uint8)
        if arr.ndim != 1 or len(arr) == 0:
            raise ValueError("trace must be a non-empty 1-D sequence")
        if arr.max(initial=0) > 2:
            raise ValueError("trace entries must be ProcState values (0, 1, 2)")
        self._trace = arr
        self._pad = int(pad_state)

    def __len__(self) -> int:
        return len(self._trace)

    def state_at(self, slot: int) -> int:
        # Hot path: bounds implicit (negative slots raise via __getitem__
        # wraparound being prevented by the 0 <= check below).
        if 0 <= slot < len(self._trace):
            return int(self._trace[slot])
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return self._pad


class SemiMarkovSource:
    """Sojourn-time-driven availability (non-memoryless future work).

    The process alternates states according to an *embedded* transition
    matrix over UP/RECLAIMED/DOWN, but the time spent in each visit is drawn
    from a caller-supplied sojourn sampler per state — e.g. lognormal UP
    intervals, heavy-tailed DOWN repairs.  With geometric sojourns this
    reduces exactly to the Markov chain (asserted in tests).

    Args:
        embedded: a 3×3 matrix of *jump* probabilities; diagonal must be 0
            (self-transitions are expressed by the sojourn length instead).
        sojourn_samplers: for each state, a callable ``(rng) -> int`` giving
            the number of slots spent per visit (must be ≥ 1).
        rng: generator for both jumps and sojourns.
        initial: starting state (default UP).
    """

    _GROW = 1024

    def __init__(
        self,
        embedded: np.ndarray,
        sojourn_samplers: dict[int, Callable[[np.random.Generator], int]],
        rng: np.random.Generator,
        *,
        initial: int = int(ProcState.UP),
    ):
        embedded = np.asarray(embedded, dtype=float)
        if embedded.shape != (3, 3):
            raise ValueError("embedded matrix must be 3x3")
        if np.any(np.abs(np.diag(embedded)) > 1e-12):
            raise ValueError("embedded matrix diagonal must be zero")
        if not np.allclose(embedded.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("embedded matrix rows must sum to 1")
        for s in (0, 1, 2):
            if s not in sojourn_samplers:
                raise ValueError(f"missing sojourn sampler for state {s}")
        self._embedded = embedded
        self._samplers = sojourn_samplers
        self._rng = rng
        self._state = int(initial)
        self._trace = np.empty(0, dtype=np.uint8)
        self._fill_to(self._GROW)

    def _fill_to(self, length: int) -> None:
        pieces = [self._trace]
        total = len(self._trace)
        while total < length:
            sojourn = int(self._samplers[self._state](self._rng))
            if sojourn < 1:
                raise ValueError(
                    f"sojourn sampler for state {self._state} returned {sojourn}; "
                    "sojourns must be >= 1 slot"
                )
            pieces.append(np.full(sojourn, self._state, dtype=np.uint8))
            total += sojourn
            row = self._embedded[self._state]
            self._state = int(
                np.searchsorted(np.cumsum(row), self._rng.random(), side="right")
            )
        self._trace = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    def state_at(self, slot: int) -> int:
        slot = require_nonnegative_int(slot, "slot")
        if slot >= len(self._trace):
            self._fill_to(max(slot + 1, 2 * len(self._trace)))
        return int(self._trace[slot])


class WeibullSource(SemiMarkovSource):
    """Availability with Weibull-distributed UP intervals.

    Empirical studies cited by the paper ([8, 9, 10]) report that UP
    interval durations on real desktop grids are well fit by Weibull
    distributions with shape < 1 (bursty, heavy-tailed).  This source keeps
    geometric RECLAIMED/DOWN sojourns (parameterised by their mean) but
    draws UP sojourns from ``Weibull(shape, scale)``, rounded up to ≥ 1
    slot.  Used for model-mismatch experiments.

    Args:
        shape: Weibull shape parameter ``k`` (``< 1`` → heavy tail).
        scale: Weibull scale parameter ``λ`` in slots.
        mean_reclaimed: mean RECLAIMED sojourn (geometric), slots.
        mean_down: mean DOWN sojourn (geometric), slots.
        p_up_to_reclaimed: probability that an ending UP interval goes to
            RECLAIMED rather than DOWN.
        rng: generator.
    """

    def __init__(
        self,
        *,
        shape: float,
        scale: float,
        mean_reclaimed: float,
        mean_down: float,
        p_up_to_reclaimed: float,
        rng: np.random.Generator,
    ):
        shape = require_positive(shape, "shape")
        scale = require_positive(scale, "scale")
        mean_reclaimed = require_positive(mean_reclaimed, "mean_reclaimed")
        mean_down = require_positive(mean_down, "mean_down")
        if not 0.0 <= p_up_to_reclaimed <= 1.0:
            raise ValueError("p_up_to_reclaimed must lie in [0, 1]")

        def up_sojourn(r: np.random.Generator) -> int:
            return max(1, int(np.ceil(scale * r.weibull(shape))))

        def geometric(mean: float) -> Callable[[np.random.Generator], int]:
            p = min(1.0, 1.0 / mean)

            def sample(r: np.random.Generator) -> int:
                return int(r.geometric(p))

            return sample

        embedded = np.array(
            [
                [0.0, p_up_to_reclaimed, 1.0 - p_up_to_reclaimed],
                [0.9, 0.0, 0.1],  # reclaimed mostly returns to UP
                [1.0, 0.0, 0.0],  # repair always returns to UP
            ]
        )
        super().__init__(
            embedded,
            {
                int(ProcState.UP): up_sojourn,
                int(ProcState.RECLAIMED): geometric(mean_reclaimed),
                int(ProcState.DOWN): geometric(mean_down),
            },
            rng,
        )
