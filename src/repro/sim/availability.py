"""Availability sources: ground-truth state generators for the simulator.

The simulator asks, slot by slot, "what state is processor q in now?".
That question is answered by an :class:`AvailabilitySource`.  Three families
are provided:

* :class:`MarkovSource` — samples the paper's 3-state chain lazily, in
  chunks, so arbitrarily long runs never need a pre-sized trace.
* :class:`TraceSource` — replays a fixed vector :math:`S_q` (offline
  instances, regression fixtures, and Failure-Trace-Archive-style traces
  loaded through :mod:`repro.workload.traces`).
* :class:`SemiMarkovSource` / :class:`WeibullSource` — non-memoryless
  generators for the paper's future-work direction (Section 8): state
  *sojourn times* are drawn from arbitrary distributions instead of the
  geometric sojourns a Markov chain implies.  These exercise the
  model-mismatch code path (heuristics still believe a Markov chain).

All sources share one contract (:class:`AvailabilitySource`):

* ``state_at(slot)`` — random access with O(1) amortised cost for the
  simulator's monotone access pattern.  **Hot path**: slots are assumed
  to be non-negative ints; validation lives in the batched accessors and
  the callers, never here.
* ``next_change_after(slot, limit=...)`` — the run-length query the
  span-stepped simulator core is built on (DESIGN.md §6): the first slot
  after ``slot`` whose state differs from ``state_at(slot)``.
* ``block(start, stop)`` / ``materialized(length)`` — batched state
  reads (tests, belief fitting, :meth:`~repro.sim.platform.Platform.
  states_block`).
* ``up_count_in`` / ``nth_up_after`` — UP-slot arithmetic for the
  span-stepped refined-glide path.

**Storage** (DESIGN.md §6/§9): the lazy families hold the generated
trace *run-length encoded* — ``(start, state)`` runs plus a cumulative
UP-slot count per run — so memory is O(transitions) rather than
O(slots), ``next_change_after`` is the end of the current run, and
``up_count_in``/``nth_up_after`` are binary searches over the per-run
UP counts instead of densely materialised prefix sums.  A per-source
cursor caches the bounds of the most recently read run, making the
simulator's monotone access pattern O(1) per query.
:class:`TraceSource` keeps the caller's dense vector (it is externally
owned and finite).

All sources are deterministic given their RNG/trace.  For the lazy
families the trace content is independent of the access pattern: every
generated slot consumes exactly one underlying draw in slot order, so a
span-stepped run that scans ahead sees the same states a slot-stepped run
does (and the run-length encoding never changes what is drawn — dense
chunks are sampled exactly as before and compressed on append).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from .._validation import require_nonnegative_int, require_positive, require_positive_int
from ..core.markov import MarkovAvailabilityModel
from ..types import ProcState

__all__ = [
    "AvailabilitySource",
    "MarkovSource",
    "TraceSource",
    "TraceView",
    "SemiMarkovSource",
    "WeibullSource",
    "extend_markov_sources",
]

#: Bytes per stored run in the RLE representation: int64 start + uint8
#: state + int64 cumulative UP count (see ``storage_bytes``).
_RLE_BYTES_PER_RUN = 8 + 1 + 8

#: Bytes per slot of the dense representation the RLE storage replaces:
#: uint8 trace plus the int64 UP prefix sum the span-stepped queries
#: used to materialise (see ``dense_bytes``).
_DENSE_BYTES_PER_SLOT = 1 + 8


class AvailabilitySource(Protocol):
    """Anything that can report a processor's state over time.

    Implementations must be deterministic given their construction inputs
    and support arbitrary (monotone-cheap) random access.  ``slot``
    arguments are assumed non-negative; per-call validation is deliberately
    left to callers so ``state_at`` stays off the hot path's profile.
    """

    def state_at(self, slot: int) -> int:
        """Ground-truth state (as ``int(ProcState)``) at slot ``slot``."""
        ...

    def next_change_after(
        self, slot: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        """First slot ``s > slot`` with ``state_at(s) != state_at(slot)``.

        Args:
            slot: reference slot.
            limit: give up after this slot — return ``None`` when no
                change occurs in ``(slot, limit]``.  Callers **must**
                pass a limit when the source may stay in one state
                forever (absorbing chains, exhausted traces); lazy
                sources would otherwise scan without bound.

        Returns:
            The change slot, or ``None`` if the state holds through
            ``limit`` (or forever, for sources that can prove it).
        """
        ...

    def block(self, start: int, stop: int) -> np.ndarray:
        """States for slots ``[start, stop)`` as a ``uint8`` array."""
        ...

    def materialized(self, length: int) -> np.ndarray:
        """The first ``length`` slots as a concrete array (tests, export)."""
        ...

    def up_count_in(self, start: int, stop: int) -> int:
        """Number of UP slots in ``[start, stop)``.

        O(1) amortised via a lazily maintained UP prefix sum; the
        span-stepped simulator uses it to advance a computing worker
        across a window in which the worker may freeze (RECLAIMED) and
        resume arbitrarily — compute progress is exactly the UP count.
        """
        ...

    def nth_up_after(
        self, slot: int, k: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        """The slot of the ``k``-th UP slot strictly after ``slot``.

        Returns ``None`` when fewer than ``k`` UP slots occur in
        ``(slot, limit]``.  This is the completion milestone of a
        computing instance with ``k`` slots of work left.  As with
        :meth:`next_change_after`, pass a ``limit`` whenever the source
        may never serve ``k`` UP slots.
        """
        ...

    def storage_bytes(self) -> int:
        """Live bytes of the source's state storage (benchmark metric)."""
        ...

    def dense_bytes(self) -> int:
        """Bytes a dense representation of the same coverage would hold
        (uint8 state per slot + int64 UP prefix): the denominator of the
        benchmark's ``trace_compression``."""
        ...


class _RleTraceSource:
    """Shared machinery for sources storing a run-length-encoded trace.

    The materialised trace is held as runs: ``_run_starts[i]`` is the
    first slot of run ``i``, ``_run_states[i]`` its state, and
    ``_run_up[i]`` the number of UP slots in runs ``0..i-1`` (the per-run
    UP prefix sum).  ``_length`` slots are materialised in total, so run
    ``i`` covers ``[_run_starts[i], _run_starts[i+1])`` (the last run
    ends at ``_length`` and may still be extended by growth).

    Subclasses implement :meth:`_grow_to`, extending coverage to at least
    the given length by appending runs via :meth:`_append_run` /
    :meth:`_append_dense` (consuming exactly one underlying draw per
    generated slot, in slot order, so trace content never depends on the
    growth schedule).

    A cursor (``_cur_start``/``_cur_end``/``_cur_state``) caches the
    bounds of the most recently located run; the simulator's monotone
    access pattern hits it almost always, making ``state_at`` a pair of
    int comparisons.  A cursor on the last run may go stale-short when
    the run is later extended — that is safe: the miss re-locates the
    same run with the fresh end.
    """

    _INITIAL_RUN_CAPACITY = 64

    def _init_rle(self) -> None:
        cap = self._INITIAL_RUN_CAPACITY
        self._run_starts = np.empty(cap, dtype=np.int64)
        self._run_states = np.empty(cap, dtype=np.uint8)
        self._run_up = np.empty(cap, dtype=np.int64)
        self._n_runs = 0
        self._length = 0
        self._hint = 0
        self._cur_start = 0
        self._cur_end = 0  # exclusive; 0 = cursor invalid
        self._cur_state = -1

    def _grow_to(self, length: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _ensure(self, length: int) -> None:
        if length > self._length:
            self._grow_to(length)

    # ------------------------------------------------------------------ #
    # Run appends (subclass generators call these).                        #
    # ------------------------------------------------------------------ #
    def _reserve(self, extra: int) -> None:
        """Ensure capacity for ``extra`` more runs (geometric doubling)."""
        n = self._n_runs
        if n + extra <= len(self._run_starts):
            return
        new_cap = max(2 * len(self._run_starts), n + extra)
        for name in ("_run_starts", "_run_states", "_run_up"):
            old = getattr(self, name)
            grown = np.empty(new_cap, dtype=old.dtype)
            grown[:n] = old[:n]
            setattr(self, name, grown)

    def _append_run(self, state: int, count: int) -> None:
        """Append ``count`` slots of ``state``, merging with the last run."""
        n = self._n_runs
        if n and self._run_states[n - 1] == state:
            self._length += count
            return
        self._reserve(1)
        self._run_starts[n] = self._length
        self._run_states[n] = state
        if n:
            prev_len = self._length - self._run_starts[n - 1]
            up_gain = prev_len if self._run_states[n - 1] == int(ProcState.UP) else 0
            self._run_up[n] = self._run_up[n - 1] + up_gain
        else:
            self._run_up[0] = 0
        self._n_runs = n + 1
        self._length += count

    def _append_dense(self, states: np.ndarray) -> None:
        """Compress a freshly generated dense chunk into runs (vectorised:
        one boundary scan + three slice writes per chunk)."""
        m = len(states)
        if m == 0:
            return
        bounds = np.flatnonzero(states[1:] != states[:-1]) + 1
        starts_rel = np.empty(len(bounds) + 1, dtype=np.int64)
        starts_rel[0] = 0
        starts_rel[1:] = bounds
        run_states = states[starts_rel]
        base = self._length
        n = self._n_runs
        first = 0
        if n and self._run_states[n - 1] == run_states[0]:
            # The leading segment extends the trailing stored run.
            first = 1
            if len(starts_rel) == 1:
                self._length = base + m
                return
        count = len(starts_rel) - first
        self._reserve(count)
        ends_rel = np.empty(len(starts_rel), dtype=np.int64)
        ends_rel[:-1] = starts_rel[1:]
        ends_rel[-1] = m
        segment_up = (run_states == int(ProcState.UP)) * (ends_rel - starts_rel)
        cumulative = np.concatenate([[0], np.cumsum(segment_up)])
        total_up = self._total_up()
        self._run_starts[n : n + count] = base + starts_rel[first:]
        self._run_states[n : n + count] = run_states[first:]
        self._run_up[n : n + count] = total_up + cumulative[first : first + count]
        self._n_runs = n + count
        self._length = base + m

    # ------------------------------------------------------------------ #
    # Run lookup.                                                          #
    # ------------------------------------------------------------------ #
    def _run_index(self, slot: int) -> int:
        """Index of the run containing ``slot`` (< ``_length``), with the
        cursor updated to it."""
        hint = self._hint
        starts = self._run_starts
        n = self._n_runs
        if starts[hint] <= slot:
            # Monotone access: the answer is almost always the hinted run
            # or one of the next two; fall back to binary search only on
            # genuine jumps.
            if hint + 1 == n or slot < starts[hint + 1]:
                index = hint
            elif hint + 2 == n or slot < starts[hint + 2]:
                index = hint + 1
            elif hint + 3 == n or slot < starts[hint + 3]:
                index = hint + 2
            else:
                index = int(starts[:n].searchsorted(slot, side="right")) - 1
        else:
            index = int(starts[:n].searchsorted(slot, side="right")) - 1
        self._hint = index
        self._cur_start = int(starts[index])
        self._cur_state = int(self._run_states[index])
        self._cur_end = (
            int(starts[index + 1]) if index + 1 < n else self._length
        )
        return index

    def _up_before(self, stop: int) -> int:
        """UP slots in ``[0, stop)``; requires ``0 <= stop <= _length``."""
        if stop <= 0:
            return 0
        index = self._run_index(stop - 1)
        count = int(self._run_up[index])
        if self._cur_state == int(ProcState.UP):
            count += stop - self._cur_start
        return count

    def _total_up(self) -> int:
        n = self._n_runs
        if n == 0:
            return 0
        tail = 0
        if self._run_states[n - 1] == int(ProcState.UP):
            tail = self._length - int(self._run_starts[n - 1])
        return int(self._run_up[n - 1]) + tail

    # ------------------------------------------------------------------ #
    # AvailabilitySource contract.                                         #
    # ------------------------------------------------------------------ #
    def state_at(self, slot: int) -> int:
        # Hot path (called once per processor per boundary): no validation,
        # and the cursor answers without touching numpy at all.
        if self._cur_start <= slot < self._cur_end:
            return self._cur_state
        if slot >= self._length:
            self._grow_to(slot + 1)
        self._run_index(slot)
        return self._cur_state

    def next_change_after(
        self, slot: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        if slot >= self._length:
            self._grow_to(slot + 1)
        if not (self._cur_start <= slot < self._cur_end):
            self._run_index(slot)
        index = self._hint
        while True:
            if index + 1 < self._n_runs:
                change = int(self._run_starts[index + 1])
                if limit is not None and change > limit:
                    return None
                return change
            # ``slot`` lies in the last materialised run: grow — in
            # geometric steps, never straight to a large ``limit`` — until
            # a new run appears (the run may first extend) or the limit is
            # spanned.
            if limit is not None and self._length > limit:
                return None
            self._grow_to(max(self._length + 64, 2 * self._length))

    def block(self, start: int, stop: int) -> np.ndarray:
        start = require_nonnegative_int(start, "start")
        if stop < start:
            raise ValueError(f"stop must be >= start, got [{start}, {stop})")
        out = np.empty(stop - start, dtype=np.uint8)
        if stop == start:
            return out
        self._ensure(stop)
        position = start
        index = self._run_index(start)
        starts = self._run_starts
        while position < stop:
            end = int(starts[index + 1]) if index + 1 < self._n_runs else self._length
            segment = end if end < stop else stop
            out[position - start : segment - start] = self._run_states[index]
            position = segment
            index += 1
        return out

    def materialized(self, length: int) -> np.ndarray:
        length = require_positive_int(length, "length")
        return self.block(0, length)

    def up_count_in(self, start: int, stop: int) -> int:
        if stop <= start:
            return 0
        self._ensure(stop)
        return self._up_before(stop) - self._up_before(start)

    def nth_up_after(
        self, slot: int, k: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        if k <= 0:
            raise ValueError(f"k must be >= 1, got {k}")
        self._ensure(slot + 1)
        target = self._up_before(slot + 1) + k
        # Grow geometrically until the target-th UP slot is materialised
        # (never straight to a large ``limit``: the answer is usually a
        # few sojourns away).
        while self._total_up() < target:
            if limit is not None and self._length > limit:
                return None
            self._grow_to(max(self._length + 64, 2 * self._length))
        # The target-th UP slot lies in the (UP) run j with
        # ``_run_up[j] < target`` and ``_run_up[j+1] >= target``.
        n = self._n_runs
        j = int(self._run_up[:n].searchsorted(target, side="left")) - 1
        found = int(self._run_starts[j]) + (target - int(self._run_up[j])) - 1
        if limit is not None and found > limit:
            return None
        return found

    # ------------------------------------------------------------------ #
    # Storage diagnostics (benchmarks, DESIGN.md §9 memory bound).         #
    # ------------------------------------------------------------------ #
    @property
    def run_count(self) -> int:
        """Number of stored runs (state transitions + 1)."""
        return self._n_runs

    @property
    def slots_materialized(self) -> int:
        """Slots generated so far (the dense-equivalent trace length)."""
        return self._length

    def storage_bytes(self) -> int:
        """Live bytes of the RLE representation (runs × 17)."""
        return self._n_runs * _RLE_BYTES_PER_RUN

    def dense_bytes(self) -> int:
        """Bytes the replaced dense representation would hold for the
        same coverage: a uint8 state per slot plus the int64 UP prefix
        sum the span-stepped queries used to materialise."""
        return self._length * _DENSE_BYTES_PER_SLOT


class MarkovSource(_RleTraceSource):
    """Lazily sampled Markov availability (the paper's ground truth).

    The trace is extended in geometric chunks as the simulation advances,
    so the cost of a run is proportional to its makespan, not to a guessed
    horizon.  Chunks are sampled densely — exactly the draws the dense
    implementation made, in the same order — and stored run-length
    encoded, so memory is O(transitions).
    """

    _CHUNK = 1024

    def __init__(
        self,
        model: MarkovAvailabilityModel,
        rng: np.random.Generator,
        *,
        initial: Optional[int] = None,
    ):
        self._model = model
        self._rng = rng
        self._init_rle()
        chunk = model.sample_trace(self._CHUNK, rng, initial=initial)
        self._last_state = int(chunk[-1])
        self._append_dense(chunk)

    @property
    def model(self) -> MarkovAvailabilityModel:
        """The generating chain (also the default scheduler belief)."""
        return self._model

    def _grow_to(self, length: int) -> None:
        while self._length < length:
            grow = max(self._CHUNK, self._length)  # double each time
            # Shares ``model.extend_trace``'s draw protocol exactly.
            chunk = self._model.continue_trace(
                self._last_state, grow, self._rng
            )
            self._last_state = int(chunk[-1])
            self._append_dense(chunk)


class TraceView(_RleTraceSource):
    """A per-consumer read view over another RLE source's trace.

    The batch campaign engine (DESIGN.md §11) runs several simulations of
    the *same* trial concurrently; they read the identical ground-truth
    trace, but each simulation's access pattern is monotone only in its
    own slot clock.  Sharing one source object would thrash the
    monotone-access cursor; a view shares the base's materialised runs
    (the numpy run arrays are adopted by reference at each sync — no
    copying) while keeping its own cursor and hint, so every consumer
    stays O(1) per query.

    Growth delegates to the base: a view that reads past the
    materialised length asks the base to extend and re-adopts.  All
    draws therefore stay on the base's RNG in slot order — a view can
    never change *what* is sampled, only *when* (the documented
    growth-schedule independence of the lazy sources).

    A view adopted mid-growth is safe: :meth:`_RleTraceSource._reserve`
    reallocates by copying the committed prefix, so the arrays a view
    holds always describe a consistent (possibly shorter) snapshot, and
    its cursor/hint indices stay valid because the run prefix is
    append-only.
    """

    def __init__(self, base: _RleTraceSource):
        if not isinstance(base, _RleTraceSource):
            raise TypeError(
                f"TraceView needs an RLE-backed source, got {type(base).__name__}"
            )
        self._base = base
        self._init_rle()
        self._sync()

    @property
    def base(self) -> _RleTraceSource:
        """The source whose trace this view reads."""
        return self._base

    @property
    def model(self):
        """The base's generating model (where it has one)."""
        return self._base.model

    def _sync(self) -> None:
        base = self._base
        self._run_starts = base._run_starts
        self._run_states = base._run_states
        self._run_up = base._run_up
        self._n_runs = base._n_runs
        self._length = base._length

    def _grow_to(self, length: int) -> None:
        self._base._ensure(length)
        self._sync()

    def storage_bytes(self) -> int:
        """Live bytes — 0: the run storage belongs to the base."""
        return 0

    def dense_bytes(self) -> int:
        """Dense-equivalent bytes of the base's coverage."""
        return self._base.dense_bytes()


def extend_markov_sources(sources: Sequence[MarkovSource], length: int) -> None:
    """Extend several Markov sources to ``length`` slots in one fused sweep.

    The batch engine's per-boundary availability batching (DESIGN.md
    §11): lagging sources are grouped by generating model and continued
    through one :meth:`~repro.core.markov.MarkovAvailabilityModel.
    continue_trace_batch` call per distinct chain, so the inverse-CDF
    setup is paid once per chain rather than once per source.  Each
    source's draws still come from its own generator in slot order, so
    the materialised traces are bit-identical to letting every source
    grow on demand (the growth-schedule independence contract).
    """
    groups: dict[int, list[MarkovSource]] = {}
    for source in sources:
        if not isinstance(source, MarkovSource):
            raise TypeError(
                "extend_markov_sources handles MarkovSource only, got "
                f"{type(source).__name__}"
            )
        if source._length < length:
            groups.setdefault(id(source.model), []).append(source)
    for members in groups.values():
        model = members[0].model
        tails = model.continue_trace_batch(
            [member._last_state for member in members],
            [length - member._length for member in members],
            [member._rng for member in members],
        )
        for member, tail in zip(members, tails):
            member._last_state = int(tail[-1])
            member._append_dense(tail)


class TraceSource:
    """Replays a fixed availability vector :math:`S_q`.

    Slots beyond the end of the trace report ``pad_state`` (DOWN by
    default, so an exhausted offline trace never silently contributes
    compute).
    """

    def __init__(
        self, trace: Sequence[int], *, pad_state: ProcState = ProcState.DOWN
    ):
        arr = np.asarray(trace, dtype=np.uint8)
        if arr.ndim != 1 or len(arr) == 0:
            raise ValueError("trace must be a non-empty 1-D sequence")
        if arr.max(initial=0) > 2:
            raise ValueError("trace entries must be ProcState values (0, 1, 2)")
        self._trace = arr
        self._pad = int(pad_state)
        self._up_prefix: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._trace)

    def state_at(self, slot: int) -> int:
        # Hot path: bounds implicit (negative slots raise via the 0 <=
        # check below; beyond-the-end slots report the pad state).
        if 0 <= slot < len(self._trace):
            return int(self._trace[slot])
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return self._pad

    def next_change_after(
        self, slot: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        current = self.state_at(slot)
        length = len(self._trace)
        change: Optional[int] = None
        if slot + 1 < length:
            hits = np.flatnonzero(self._trace[slot + 1 :] != current)
            if hits.size:
                change = slot + 1 + int(hits[0])
        if change is None and self._pad != current:
            # Constant through the trace tail, then the pad takes over.
            change = max(length, slot + 1)
        if change is None or (limit is not None and change > limit):
            return None
        return change

    def block(self, start: int, stop: int) -> np.ndarray:
        start = require_nonnegative_int(start, "start")
        if stop < start:
            raise ValueError(f"stop must be >= start, got [{start}, {stop})")
        length = len(self._trace)
        if stop <= length:
            return self._trace[start:stop].copy()
        out = np.full(stop - start, self._pad, dtype=np.uint8)
        if start < length:
            out[: length - start] = self._trace[start:]
        return out

    def materialized(self, length: int) -> np.ndarray:
        length = require_positive_int(length, "length")
        return self.block(0, length)

    def _prefix(self) -> np.ndarray:
        if self._up_prefix is None:
            self._up_prefix = np.concatenate(
                [[0], np.cumsum(self._trace == int(ProcState.UP), dtype=np.int64)]
            )
        return self._up_prefix

    def up_count_in(self, start: int, stop: int) -> int:
        if stop <= start:
            return 0
        prefix = self._prefix()
        length = len(self._trace)
        in_trace = int(prefix[min(stop, length)] - prefix[min(start, length)])
        if self._pad == int(ProcState.UP) and stop > length:
            in_trace += stop - max(start, length)
        return in_trace

    def nth_up_after(
        self, slot: int, k: int, *, limit: Optional[int] = None
    ) -> Optional[int]:
        if k <= 0:
            raise ValueError(f"k must be >= 1, got {k}")
        prefix = self._prefix()
        length = len(self._trace)
        before = int(prefix[min(slot + 1, length)])  # UP slots in [0, slot]
        if self._pad == int(ProcState.UP) and slot + 1 > length:
            before += slot + 1 - length
        target = before + k
        found: Optional[int] = None
        if target <= prefix[-1]:
            found = int(np.searchsorted(prefix, target, side="left")) - 1
        elif self._pad == int(ProcState.UP):
            # The missing UP slots come from the padded tail.
            found = max(length, slot + 1) + (target - int(prefix[-1])) - 1
            if slot + 1 > length:
                found = slot + k
        if found is None or (limit is not None and found > limit):
            return None
        return found

    # Storage diagnostics (symmetry with the RLE sources; the vector is
    # externally supplied, so dense *is* this source's representation).
    def storage_bytes(self) -> int:
        """Live bytes: the dense vector plus the UP prefix if built."""
        prefix = self._up_prefix
        return int(self._trace.nbytes) + (0 if prefix is None else int(prefix.nbytes))

    def dense_bytes(self) -> int:
        """Dense-equivalent bytes (same formula as the RLE sources)."""
        return len(self._trace) * _DENSE_BYTES_PER_SLOT


class SemiMarkovSource(_RleTraceSource):
    """Sojourn-time-driven availability (non-memoryless future work).

    The process alternates states according to an *embedded* transition
    matrix over UP/RECLAIMED/DOWN, but the time spent in each visit is drawn
    from a caller-supplied sojourn sampler per state — e.g. lognormal UP
    intervals, heavy-tailed DOWN repairs.  With geometric sojourns this
    reduces exactly to the Markov chain (asserted in tests).

    Args:
        embedded: a 3×3 matrix of *jump* probabilities; diagonal must be 0
            (self-transitions are expressed by the sojourn length instead).
        sojourn_samplers: for each state, a callable ``(rng) -> int`` giving
            the number of slots spent per visit (must be ≥ 1).
        rng: generator for both jumps and sojourns.
        initial: starting state (default UP).
    """

    _GROW = 1024

    def __init__(
        self,
        embedded: np.ndarray,
        sojourn_samplers: dict[int, Callable[[np.random.Generator], int]],
        rng: np.random.Generator,
        *,
        initial: int = int(ProcState.UP),
    ):
        embedded = np.asarray(embedded, dtype=float)
        if embedded.shape != (3, 3):
            raise ValueError("embedded matrix must be 3x3")
        if np.any(np.abs(np.diag(embedded)) > 1e-12):
            raise ValueError("embedded matrix diagonal must be zero")
        if not np.allclose(embedded.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("embedded matrix rows must sum to 1")
        for s in (0, 1, 2):
            if s not in sojourn_samplers:
                raise ValueError(f"missing sojourn sampler for state {s}")
        self._embedded = embedded
        self._samplers = sojourn_samplers
        self._rng = rng
        self._state = int(initial)
        # Per-state cumulative jump rows as plain floats: the jump draw
        # below is then two scalar compares instead of a cumsum +
        # searchsorted pair per run (bit-identical — ``side="right"`` on
        # a 3-element cumulative row *is* "count of thresholds <= u").
        self._jump_cum = [
            (float(c[0]), float(c[1])) for c in np.cumsum(embedded, axis=1)
        ]
        self._init_rle()
        self._grow_to(self._GROW)

    def _grow_to(self, length: int) -> None:
        # Geometric growth (monotone access misses roughly once per
        # sojourn); each sojourn is appended directly as one run — the
        # process *is* its run-length encoding.
        length = max(length, 2 * self._length)
        while self._length < length:
            sojourn = int(self._samplers[self._state](self._rng))
            if sojourn < 1:
                raise ValueError(
                    f"sojourn sampler for state {self._state} returned {sojourn}; "
                    "sojourns must be >= 1 slot"
                )
            self._append_run(self._state, sojourn)
            cum0, cum1 = self._jump_cum[self._state]
            u = self._rng.random()
            self._state = 0 if u < cum0 else (1 if u < cum1 else 2)


class WeibullSource(SemiMarkovSource):
    """Availability with Weibull-distributed UP intervals.

    Empirical studies cited by the paper ([8, 9, 10]) report that UP
    interval durations on real desktop grids are well fit by Weibull
    distributions with shape < 1 (bursty, heavy-tailed).  This source keeps
    geometric RECLAIMED/DOWN sojourns (parameterised by their mean) but
    draws UP sojourns from ``Weibull(shape, scale)``, rounded up to ≥ 1
    slot.  Used for model-mismatch experiments.

    Args:
        shape: Weibull shape parameter ``k`` (``< 1`` → heavy tail).
        scale: Weibull scale parameter ``λ`` in slots.
        mean_reclaimed: mean RECLAIMED sojourn (geometric), slots.
        mean_down: mean DOWN sojourn (geometric), slots.
        p_up_to_reclaimed: probability that an ending UP interval goes to
            RECLAIMED rather than DOWN.
        rng: generator.
    """

    def __init__(
        self,
        *,
        shape: float,
        scale: float,
        mean_reclaimed: float,
        mean_down: float,
        p_up_to_reclaimed: float,
        rng: np.random.Generator,
    ):
        shape = require_positive(shape, "shape")
        scale = require_positive(scale, "scale")
        mean_reclaimed = require_positive(mean_reclaimed, "mean_reclaimed")
        mean_down = require_positive(mean_down, "mean_down")
        if not 0.0 <= p_up_to_reclaimed <= 1.0:
            raise ValueError("p_up_to_reclaimed must lie in [0, 1]")

        def up_sojourn(r: np.random.Generator) -> int:
            return max(1, int(np.ceil(scale * r.weibull(shape))))

        def geometric(mean: float) -> Callable[[np.random.Generator], int]:
            p = min(1.0, 1.0 / mean)

            def sample(r: np.random.Generator) -> int:
                return int(r.geometric(p))

            return sample

        embedded = np.array(
            [
                [0.0, p_up_to_reclaimed, 1.0 - p_up_to_reclaimed],
                [0.9, 0.0, 0.1],  # reclaimed mostly returns to UP
                [1.0, 0.0, 0.0],  # repair always returns to UP
            ]
        )
        super().__init__(
            embedded,
            {
                int(ProcState.UP): up_sojourn,
                int(ProcState.RECLAIMED): geometric(mean_reclaimed),
                int(ProcState.DOWN): geometric(mean_down),
            },
            rng,
        )
