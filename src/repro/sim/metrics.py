"""Simulation outcome metrics.

:class:`SimulationReport` is the value returned by a simulation run.  The
paper's evaluation metric is the *makespan* — the number of slots needed to
complete 10 iterations — but the report also carries the secondary
quantities the paper discusses qualitatively: wasted work (slots of compute
lost to crashes and replica cancellations), communication effort, and
per-iteration completion times, which the examples and ablation benchmarks
surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["SimulationReport"]


@dataclass
class SimulationReport:
    """Outcome of one simulation run.

    Attributes:
        completed_iterations: iterations fully committed before the run
            ended.
        target_iterations: the iteration count requested.
        makespan: slots used to finish ``target_iterations`` (``None`` when
            the run hit its slot budget first — the off-line objective of
            maximising iterations within ``N`` slots uses that mode).
        slots_simulated: total slots actually simulated.
        iteration_end_slots: slot at which each completed iteration ended.
        tasks_committed: total task commits (originals and replicas that
            won their race).
        replicas_launched: replica instances created.
        replicas_cancelled: replica instances cancelled after a sibling
            committed.
        originals_superseded: original instances cancelled because one of
            their replicas committed first.
        instances_lost_to_crash: instances destroyed by DOWN transitions.
        compute_slots_spent: total UP slots spent computing (all instances).
        compute_slots_wasted: compute slots spent on instances that never
            committed (crashes + cancelled replicas + end-of-run leftovers).
        comm_slots_spent: channel-slots spent on transfers.
        comm_slots_wasted: channel-slots spent on transfers whose instance
            never committed, plus lost program transfers.
        scheduler_rounds: number of scheduling rounds executed.
        heuristic_name: the scheduler's registry name (provenance).
    """

    completed_iterations: int = 0
    target_iterations: int = 0
    makespan: Optional[int] = None
    slots_simulated: int = 0
    iteration_end_slots: List[int] = field(default_factory=list)
    tasks_committed: int = 0
    replicas_launched: int = 0
    replicas_cancelled: int = 0
    originals_superseded: int = 0
    instances_lost_to_crash: int = 0
    compute_slots_spent: int = 0
    compute_slots_wasted: int = 0
    comm_slots_spent: int = 0
    comm_slots_wasted: int = 0
    scheduler_rounds: int = 0
    heuristic_name: str = ""

    @property
    def finished(self) -> bool:
        """True when the target iteration count was reached."""
        return self.completed_iterations >= self.target_iterations

    @property
    def iteration_durations(self) -> List[int]:
        """Slots per completed iteration (first iteration counts from 0)."""
        durations: List[int] = []
        previous = -1
        for end in self.iteration_end_slots:
            durations.append(end - previous)
            previous = end
        return durations

    @property
    def waste_fraction(self) -> float:
        """Fraction of compute slots that produced no committed result."""
        if self.compute_slots_spent == 0:
            return 0.0
        return self.compute_slots_wasted / self.compute_slots_spent

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        head = (
            f"{self.heuristic_name or 'run'}: "
            f"{self.completed_iterations}/{self.target_iterations} iterations"
        )
        if self.makespan is not None:
            head += f", makespan {self.makespan} slots"
        else:
            head += f" within {self.slots_simulated} slots"
        return (
            f"{head}; {self.tasks_committed} commits, "
            f"{self.replicas_launched} replicas "
            f"({self.replicas_cancelled} cancelled), "
            f"{self.instances_lost_to_crash} lost to crashes, "
            f"waste {self.waste_fraction:.1%} of {self.compute_slots_spent} "
            f"compute slots, {self.comm_slots_spent} comm slots"
        )
