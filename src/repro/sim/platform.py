"""Platform model: volatile processors behind an always-UP master.

The paper's platform (Section 3.2) is ``p`` processors
:math:`P_1, \\dots, P_p`, each needing :math:`w_q` UP slots per task, whose
availability is an (a priori unknown) state vector over
UP / RECLAIMED / DOWN.  The master is always UP and always knows every
processor's current state (heartbeat assumption).

:class:`Processor` couples the static description (speed, Markov chain used
by the *heuristics* as their belief model) with the dynamic availability
source used by the *simulator* (a state provider, usually a sampled trace).
Keeping the belief model and the ground-truth generator as two distinct
attributes makes model-mismatch experiments possible: heuristics can be
handed a Markov belief while the ground truth comes from, say, a Weibull
trace (see :mod:`repro.sim.availability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from .._validation import require_positive_int
from ..core.markov import MarkovAvailabilityModel
from ..types import ProcState
from .availability import AvailabilitySource, MarkovSource, TraceSource

__all__ = ["Processor", "Platform"]


@dataclass
class Processor:
    """One volatile worker processor.

    Attributes:
        index: position in the platform (0-based; the paper's :math:`P_q`
            is ``platform.processors[q-1]``).
        speed_w: :math:`w_q`, UP slots required to compute one task.
        availability: the ground-truth state source driving the simulation.
        belief: the Markov chain the scheduler *believes* describes this
            processor.  For the paper's experiments this is exactly the
            chain that generated the trace; model-mismatch studies pass a
            different one.  ``None`` for purely offline instances.
    """

    index: int
    speed_w: int
    availability: AvailabilitySource
    belief: Optional[MarkovAvailabilityModel] = None

    def __post_init__(self) -> None:
        require_positive_int(self.speed_w, "speed_w")
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")

    def state_at(self, slot: int) -> ProcState:
        """Ground-truth state at ``slot`` (generates lazily if needed)."""
        return ProcState(self.availability.state_at(slot))

    @classmethod
    def from_markov(
        cls,
        index: int,
        speed_w: int,
        model: MarkovAvailabilityModel,
        rng: np.random.Generator,
        *,
        initial: Optional[int] = None,
    ) -> "Processor":
        """A processor whose truth *and* belief are the same Markov chain."""
        return cls(
            index=index,
            speed_w=speed_w,
            availability=MarkovSource(model, rng, initial=initial),
            belief=model,
        )

    @classmethod
    def from_trace(
        cls,
        index: int,
        speed_w: int,
        trace: Sequence[int],
        *,
        belief: Optional[MarkovAvailabilityModel] = None,
        pad_state: ProcState = ProcState.DOWN,
    ) -> "Processor":
        """A processor replaying a fixed trace (offline instances, tests)."""
        return cls(
            index=index,
            speed_w=speed_w,
            availability=TraceSource(trace, pad_state=pad_state),
            belief=belief,
        )


@dataclass
class Platform:
    """A collection of processors plus the master's bandwidth constraint.

    Attributes:
        processors: the worker processors.
        ncom: maximum number of simultaneous master communications
            (:math:`n_{com} = BW / bw`, Section 3.2).  ``None`` means
            unbounded (the polynomial offline case of Proposition 2).
    """

    processors: list[Processor]
    ncom: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.processors:
            raise ValueError("platform needs at least one processor")
        seen = set()
        for proc in self.processors:
            if proc.index in seen:
                raise ValueError(f"duplicate processor index {proc.index}")
            seen.add(proc.index)
        if sorted(seen) != list(range(len(self.processors))):
            raise ValueError("processor indices must be 0..p-1 without gaps")
        if self.ncom is not None:
            require_positive_int(self.ncom, "ncom")

    def __len__(self) -> int:
        return len(self.processors)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def __getitem__(self, index: int) -> Processor:
        return self.processors[index]

    @property
    def is_homogeneous(self) -> bool:
        """True when all :math:`w_q` are equal (paper Section 3.2)."""
        speeds = {proc.speed_w for proc in self.processors}
        return len(speeds) == 1

    def states_at(self, slot: int) -> np.ndarray:
        """Vector of ground-truth states at ``slot`` (uint8).

        Hot path: reads the raw availability sources directly rather than
        going through the :class:`~repro.types.ProcState` wrapper.
        """
        return np.fromiter(
            (proc.availability.state_at(slot) for proc in self.processors),
            dtype=np.uint8,
            count=len(self.processors),
        )

    def states_block(self, start: int, stop: int) -> np.ndarray:
        """Ground-truth states for slots ``[start, stop)``, all processors.

        The batched companion of :meth:`states_at`: returns a
        ``(stop - start, p)`` ``uint8`` matrix whose row ``t - start``
        equals ``states_at(t)``.  Used by the span/slot oracle tests and
        by analyses that want whole windows without p × span Python
        calls.
        """
        return np.stack(
            [proc.availability.block(start, stop) for proc in self.processors],
            axis=1,
        )

    def next_change_after(self, slot: int, *, limit: Optional[int] = None):
        """First slot ``> slot`` where *any* processor's state changes.

        Returns ``None`` when every processor holds its state through
        ``limit``.  The span-stepped simulator uses finer-grained
        (relevance-filtered, cached) per-source queries; this helper is
        the simple whole-platform form for tools and tests.
        """
        horizon: Optional[int] = None
        for proc in self.processors:
            bound = limit if horizon is None else horizon - 1
            change = proc.availability.next_change_after(slot, limit=bound)
            if change is not None and (horizon is None or change < horizon):
                horizon = change
        return horizon

    def up_indices_at(self, slot: int) -> list[int]:
        """Indices of processors UP at ``slot``, ascending."""
        return [
            proc.index
            for proc in self.processors
            if proc.state_at(slot) == ProcState.UP
        ]
