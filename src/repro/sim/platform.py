"""Platform model: volatile processors behind an always-UP master.

The paper's platform (Section 3.2) is ``p`` processors
:math:`P_1, \\dots, P_p`, each needing :math:`w_q` UP slots per task, whose
availability is an (a priori unknown) state vector over
UP / RECLAIMED / DOWN.  The master is always UP and always knows every
processor's current state (heartbeat assumption).

:class:`Processor` couples the static description (speed, Markov chain used
by the *heuristics* as their belief model) with the dynamic availability
source used by the *simulator* (a state provider, usually a sampled trace).
Keeping the belief model and the ground-truth generator as two distinct
attributes makes model-mismatch experiments possible: heuristics can be
handed a Markov belief while the ground truth comes from, say, a Weibull
trace (see :mod:`repro.sim.availability`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import require_positive_int
from ..core.markov import MarkovAvailabilityModel
from ..types import ProcState
from .availability import (
    AvailabilitySource,
    MarkovSource,
    SemiMarkovSource,
    TraceSource,
)

__all__ = ["Processor", "Platform", "PlatformCalendar"]


def _geometric_sojourn(leave: float):
    """A sojourn sampler drawing ``Geometric(leave)`` run lengths."""

    def sample(rng: np.random.Generator) -> int:
        return int(rng.geometric(leave))

    return sample


@dataclass
class Processor:
    """One volatile worker processor.

    Attributes:
        index: position in the platform (0-based; the paper's :math:`P_q`
            is ``platform.processors[q-1]``).
        speed_w: :math:`w_q`, UP slots required to compute one task.
        availability: the ground-truth state source driving the simulation.
        belief: the Markov chain the scheduler *believes* describes this
            processor.  For the paper's experiments this is exactly the
            chain that generated the trace; model-mismatch studies pass a
            different one.  ``None`` for purely offline instances.
    """

    index: int
    speed_w: int
    availability: AvailabilitySource
    belief: Optional[MarkovAvailabilityModel] = None

    def __post_init__(self) -> None:
        require_positive_int(self.speed_w, "speed_w")
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")

    def state_at(self, slot: int) -> ProcState:
        """Ground-truth state at ``slot`` (generates lazily if needed)."""
        return ProcState(self.availability.state_at(slot))

    @classmethod
    def from_markov(
        cls,
        index: int,
        speed_w: int,
        model: MarkovAvailabilityModel,
        rng: np.random.Generator,
        *,
        initial: Optional[int] = None,
    ) -> "Processor":
        """A processor whose truth *and* belief are the same Markov chain."""
        return cls(
            index=index,
            speed_w=speed_w,
            availability=MarkovSource(model, rng, initial=initial),
            belief=model,
        )

    @classmethod
    def from_semi_markov(
        cls,
        index: int,
        speed_w: int,
        model: MarkovAvailabilityModel,
        rng: np.random.Generator,
        *,
        initial: Optional[int] = None,
    ) -> "Processor":
        """A processor whose truth is the run-length form of ``model``.

        A Markov chain's sojourn in state ``i`` is geometric with
        parameter :math:`1 - P_{ii}`, and on leaving it jumps to ``j``
        with probability :math:`P_{ij} / (1 - P_{ii})`.  Sampling those
        two directly (:class:`~repro.sim.availability.SemiMarkovSource`)
        yields the *same process* as the slot-by-slot walk of
        :meth:`from_markov` — but generated in O(runs) instead of
        O(slots), which is what the large-p benchmarks need (DESIGN.md
        §12: a 10k-worker platform must not pay Θ(p · horizon) just to
        *materialise* its ground truth).  The belief handed to the
        heuristics is still ``model`` itself.

        The draw protocol differs from :meth:`from_markov` (run lengths
        vs per-slot uniforms), so the two are distributionally equal,
        not bit-identical, for the same ``rng`` stream.
        """
        matrix = model.matrix
        embedded = np.zeros((3, 3))
        samplers = {}
        for s in range(3):
            leave = 1.0 - float(matrix[s, s])
            if leave <= 0.0:
                raise ValueError(
                    f"state {s} is absorbing (self-loop 1); the run-length "
                    "form needs a positive leave probability"
                )
            embedded[s] = matrix[s] / leave
            embedded[s, s] = 0.0
            samplers[s] = _geometric_sojourn(leave)
        start = int(ProcState.UP) if initial is None else int(initial)
        return cls(
            index=index,
            speed_w=speed_w,
            availability=SemiMarkovSource(
                embedded, samplers, rng, initial=start
            ),
            belief=model,
        )

    @classmethod
    def from_trace(
        cls,
        index: int,
        speed_w: int,
        trace: Sequence[int],
        *,
        belief: Optional[MarkovAvailabilityModel] = None,
        pad_state: ProcState = ProcState.DOWN,
    ) -> "Processor":
        """A processor replaying a fixed trace (offline instances, tests)."""
        return cls(
            index=index,
            speed_w=speed_w,
            availability=TraceSource(trace, pad_state=pad_state),
            belief=belief,
        )


@dataclass
class Platform:
    """A collection of processors plus the master's bandwidth constraint.

    Attributes:
        processors: the worker processors.
        ncom: maximum number of simultaneous master communications
            (:math:`n_{com} = BW / bw`, Section 3.2).  ``None`` means
            unbounded (the polynomial offline case of Proposition 2).
    """

    processors: list[Processor]
    ncom: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.processors:
            raise ValueError("platform needs at least one processor")
        seen = set()
        for proc in self.processors:
            if proc.index in seen:
                raise ValueError(f"duplicate processor index {proc.index}")
            seen.add(proc.index)
        if sorted(seen) != list(range(len(self.processors))):
            raise ValueError("processor indices must be 0..p-1 without gaps")
        if self.ncom is not None:
            require_positive_int(self.ncom, "ncom")

    def __len__(self) -> int:
        return len(self.processors)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def __getitem__(self, index: int) -> Processor:
        return self.processors[index]

    @property
    def is_homogeneous(self) -> bool:
        """True when all :math:`w_q` are equal (paper Section 3.2)."""
        speeds = {proc.speed_w for proc in self.processors}
        return len(speeds) == 1

    def states_at(self, slot: int) -> np.ndarray:
        """Vector of ground-truth states at ``slot`` (uint8).

        Hot path: reads the raw availability sources directly rather than
        going through the :class:`~repro.types.ProcState` wrapper.
        """
        return np.fromiter(
            (proc.availability.state_at(slot) for proc in self.processors),
            dtype=np.uint8,
            count=len(self.processors),
        )

    def states_block(self, start: int, stop: int) -> np.ndarray:
        """Ground-truth states for slots ``[start, stop)``, all processors.

        The batched companion of :meth:`states_at`: returns a
        ``(stop - start, p)`` ``uint8`` matrix whose row ``t - start``
        equals ``states_at(t)``.  Used by the span/slot oracle tests and
        by analyses that want whole windows without p × span Python
        calls.
        """
        return np.stack(
            [proc.availability.block(start, stop) for proc in self.processors],
            axis=1,
        )

    def next_change_after(self, slot: int, *, limit: Optional[int] = None):
        """First slot ``> slot`` where *any* processor's state changes.

        Returns ``None`` when every processor holds its state through
        ``limit``.  The span-stepped simulator uses finer-grained
        (relevance-filtered, cached) per-source queries; this helper is
        the simple whole-platform form for tools and tests.
        """
        horizon: Optional[int] = None
        for proc in self.processors:
            bound = limit if horizon is None else horizon - 1
            change = proc.availability.next_change_after(slot, limit=bound)
            if change is not None and (horizon is None or change < horizon):
                horizon = change
        return horizon

    def up_indices_at(self, slot: int) -> list[int]:
        """Indices of processors UP at ``slot``, ascending."""
        return [
            proc.index
            for proc in self.processors
            if proc.state_at(slot) == ProcState.UP
        ]


class PlatformCalendar:
    """Platform-wide event calendar over the availability sources.

    The large-p engine (DESIGN.md §12).  A lazy min-heap holds exactly one
    entry per processor: ``(next_transition_slot, q)``, fed by the RLE run
    cursors of :mod:`repro.sim.availability`.  Advancing from one span
    boundary to the next pops only the processors whose current run ended
    in between — O(churned · log p) — instead of re-reading all ``p``
    states and re-deriving all ``p`` next-transition minima (the O(p)
    sweep the ``platform_index="sweep"`` oracle performs per boundary).

    Maintained invariants, relied on by the simulator:

    * ``states`` (plain list) and ``states_np`` (zero-copy ``uint8`` view
      of the same buffer) always hold the state vector of the last
      ``advance``-d slot;
    * each processor has exactly one heap entry, whose slot is the first
      transition strictly after the last slot it was popped at (or the
      sentinel ``last + 1`` when it holds its state through the budget),
      so ``peek()`` is the platform-wide next-transition slot and the
      heap never empties;
    * ``up_count`` equals ``states.count(UP)``;
    * ``advance`` returns the *net* per-processor changes since the
      previous boundary — exactly what a snapshot diff of the two
      boundary state vectors yields — in ascending processor order.

    ``pops``/``last_pops`` count heap pops (total / last advance): the
    per-boundary touched-worker metric behind the O(churn) claim.
    """

    def __init__(self, sources: Sequence[AvailabilitySource]) -> None:
        self.sources = list(sources)
        self.states: List[int] = []
        self._buf = bytearray(len(self.sources))
        #: Zero-copy writable uint8 view of the state buffer (bytearray
        #: buffers are writable through ``np.frombuffer``).
        self.states_np = np.frombuffer(self._buf, dtype=np.uint8)
        self._heap: List[Tuple[int, int]] = []
        self._last = 0
        self.up_count = 0
        self.pops = 0
        self.last_pops = 0
        self.started = False

    def start(self, slot: int, last: int) -> None:
        """Full O(p) build at the first boundary of a run.

        ``last`` is the final in-budget slot; a processor holding its
        state through it gets the sentinel ``last + 1`` (strictly beyond
        every boundary, so its entry is never popped).
        """
        self._last = last
        up = int(ProcState.UP)
        buf = self._buf
        states: List[int] = []
        heap: List[Tuple[int, int]] = []
        up_count = 0
        for q, source in enumerate(self.sources):
            state = source.state_at(slot)
            states.append(state)
            buf[q] = state
            if state == up:
                up_count += 1
            change = source.next_change_after(slot, limit=last)
            heap.append((change if change is not None else last + 1, q))
        heapq.heapify(heap)
        self.states = states
        self._heap = heap
        self.up_count = up_count
        self.started = True

    def peek(self) -> int:
        """The earliest next-transition slot platform-wide (O(1)).

        Strictly greater than the last ``advance``-d slot; ``last + 1``
        when every processor holds its state through the budget.
        """
        return self._heap[0][0]

    def advance(self, slot: int) -> List[Tuple[int, int, int]]:
        """Catch the calendar up to ``slot``; return the net changes.

        Pops every processor whose next transition is ``<= slot``,
        re-reads its state once (one RLE cursor hop regardless of how
        many runs the span glided over) and re-arms its heap entry with
        the first transition after ``slot``.  Returns ``(q, old, new)``
        triples — net changes only, ascending ``q`` — matching what the
        sweep path's boundary snapshot diff reports.
        """
        heap = self._heap
        states = self.states
        buf = self._buf
        sources = self.sources
        last = self._last
        up = int(ProcState.UP)
        records: List[Tuple[int, int, int]] = []
        pops = 0
        while heap[0][0] <= slot:
            _, q = heapq.heappop(heap)
            pops += 1
            source = sources[q]
            new = source.state_at(slot)
            change = source.next_change_after(slot, limit=last)
            heapq.heappush(heap, (change if change is not None else last + 1, q))
            old = states[q]
            if new != old:
                states[q] = new
                buf[q] = new
                if old == up:
                    self.up_count -= 1
                if new == up:
                    self.up_count += 1
                records.append((q, old, new))
        self.pops += pops
        self.last_pops = pops
        if len(records) > 1:
            records.sort()
        return records
