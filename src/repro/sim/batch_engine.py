"""Batched multi-run campaign engine (DESIGN.md §11).

The unit of production work is never one simulation but thousands —
scenario × trial × heuristic sweeps feeding Tables 2/3 and Figure 2 of
the paper.  PRs 3–5 moved all *per-run* hot state into numpy columns;
this module applies the same amortisation *across* runs:
:class:`BatchCampaignRunner` advances R independent simulations
cohort-synchronised, fusing the work that is identical or shareable
between them while every run keeps its own slot clock, event stream and
RNG order.

What the cohort fuses
=====================

* **Ground-truth traces.**  Runs of one (scenario, trial) share one base
  platform: the availability randomness is keyed ``(root_seed, key,
  trial, q)`` — independent of the heuristic — so every cohort member of
  a trial reads the *identical* trace.  Each run gets a zero-copy
  :class:`~repro.sim.availability.TraceView` (own monotone-access
  cursor, shared run storage), and the cohort loop pre-extends the base
  sources to the sweep horizon through one
  :func:`~repro.sim.availability.extend_markov_sources` call — R chains
  continued per model via :meth:`~repro.core.markov.
  MarkovAvailabilityModel.sample_trace_batch`, each source drawing from
  its own generator in slot order, so traces stay bit-identical to
  per-run growth (the documented growth-schedule independence).
* **Per-boundary state rows.**  The master's ``states_provider`` seam
  lets the trial group memoise the ``slot -> [state per processor]``
  list once per boundary per *trial* instead of per run.
* **Belief-derived columns.**  ``p_uu``/``p_plus``/``pi_u``/``e_up``/
  ``ud_*`` are pure functions of the immutable belief chains, identical
  across every run of a scenario: the first admitted run's
  :class:`~repro.core.heuristics.round_state.RoundState` donates its
  lazy column cache to all others
  (:meth:`~repro.core.heuristics.round_state.RoundState.
  adopt_belief_cache`), so each column is computed once per scenario
  rather than once per run.
* **Score rows across rounds.**  The master stamps every worker-column
  rewrite (:attr:`RoundState.col_stamp`), so the CT-family schedulers
  keep their ``n_q = 0`` score rows alive across rounds and re-score
  only stamped-out processors — see ``GreedyScheduler._row0_stamped``.

What deliberately stays per-run
===============================

Event logs, network audit trails, scheduler RNG draws, the placement
heap and its tie-breaks, and the slot clock: anything that defines a
run's *identity*.  Reports, event logs and audit trails are
bit-identical to the per-run oracle regardless of cohort composition or
R (asserted in ``tests/test_batch_engine.py`` and by the benchmark
gates).

Cohort membership and demotion
==============================

Runs join the cohort only on the default array/array span-stepped
configuration; a run needing the slot-mode oracle stepping
(``step_mode="slot"`` or ``replan_every_slot``), audit mode, or a
legacy store/API is *statically demoted* — executed on the untouched
per-run path (``MasterSimulator.run``).  A cohort member that diverges
mid-flight (a shared hook raises :class:`CohortDivergence`) is
*dynamically demoted*: its shared hooks are stripped and the run
finishes standalone on its own views — the result is identical either
way, demotion only changes who pays for the boundary work.

Completed runs leave the cohort and release their row in the runner's
row table (free-list reuse, like the
:class:`~repro.sim.instance_table.InstanceTable`); with a ``width``
bound the freed rows are immediately re-used to admit pending specs, so
arbitrarily large campaigns run in bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .._validation import require_positive_int
from ..core.heuristics.registry import make_scheduler
from ..workload.scenarios import Scenario
from .availability import (
    MarkovSource,
    TraceView,
    _RleTraceSource,
    extend_markov_sources,
)
from .events import EventLog
from .master import MasterSimulator, SimulatorOptions
from .metrics import SimulationReport
from .platform import Platform, Processor

__all__ = [
    "BatchCampaignRunner",
    "BatchRunSpec",
    "CohortDivergence",
    "run_unit_cohort",
]

#: Boundaries memoised per trial group before the state-row memo is
#: dropped wholesale (it is a cache: a miss just re-reads the views).
_MEMO_LIMIT = 1 << 17


class CohortDivergence(RuntimeError):
    """A cohort-shared hook can no longer honour the fused fast path.

    Raised from inside a shared seam (e.g. the states provider) while a
    cohort member steps; the runner catches it, strips that run's shared
    hooks and finishes the run on the per-run path.  Never raised by the
    production hooks — it is the contract for extensions (and tests) to
    trigger mid-cohort demotion without poisoning the rest of the
    cohort.
    """


@dataclass(frozen=True)
class BatchRunSpec:
    """One run of a cohort: a ``CampaignUnit``-compatible (scenario,
    trial, heuristic) instance plus its simulator configuration.

    ``max_slots`` is the run's slot budget; under the paper's makespan
    objective the run ends when its iterations complete, under the
    Section 3.4 fixed-budget objective the budget *is* the objective
    horizon and ``report.completed_iterations`` carries the result — the
    engine machinery is identical (as it is for
    :meth:`~repro.sim.master.MasterSimulator.run` vs ``run_slots``).
    """

    scenario: Scenario
    trial: int
    heuristic: str
    max_slots: int = 500_000
    options: SimulatorOptions = field(default_factory=SimulatorOptions)

    def __post_init__(self) -> None:
        require_positive_int(self.max_slots, "max_slots")
        if self.trial < 0:
            raise ValueError(f"trial must be >= 0, got {self.trial}")


class _TrialGroup:
    """Shared resources of one (scenario, trial): the base ground-truth
    platform, its batch-extendable Markov sources, and the per-boundary
    state-row memo."""

    def __init__(self, scenario: Scenario, trial: int):
        self.base = scenario.build_platform(trial)
        self.markov: List[MarkovSource] = [
            proc.availability
            for proc in self.base
            if isinstance(proc.availability, MarkovSource)
        ]
        self.memo: Dict[int, list] = {}

    def make_platform(self) -> Platform:
        """A per-run platform reading the shared traces through views."""
        processors = []
        for proc in self.base:
            source = proc.availability
            availability = (
                TraceView(source)
                if isinstance(source, _RleTraceSource)
                else source  # cursor-free sources (TraceSource) share directly
            )
            processors.append(
                Processor(
                    index=proc.index,
                    speed_w=proc.speed_w,
                    availability=availability,
                    belief=proc.belief,
                )
            )
        return Platform(processors, ncom=self.base.ncom)

    def provider_for(self, views: Sequence) -> Callable[[int], list]:
        """A states provider memoising boundary rows across the group.

        The returned lists are exactly ``[view.state_at(slot) for view
        in views]`` — every run of the trial reads the identical trace,
        so the first run to touch a boundary fills the row for all.
        The master treats the lists as immutable (documented at the
        seam), so sharing them is safe.
        """
        memo = self.memo

        def provider(slot: int) -> list:
            row = memo.get(slot)
            if row is None:
                row = [view.state_at(slot) for view in views]
                memo[slot] = row
            return row

        return provider


@dataclass
class _CohortRun:
    """A live cohort member."""

    index: int  # position in the runner's spec list
    spec: BatchRunSpec
    sim: MasterSimulator
    group: _TrialGroup
    row: int  # row in the runner's cohort table


class BatchCampaignRunner:
    """Advance R run specs cohort-synchronised (DESIGN.md §11).

    Args:
        specs: the runs, in result order.  Specs sharing a (scenario,
            trial) share ground-truth traces and state rows; specs
            sharing a scenario share belief columns; everything else is
            per-run.
        width: maximum concurrently live cohort rows (``None`` =
            unbounded).  Completed runs free their row for the next
            pending spec, so memory is O(width), not O(R).
        start_horizon: first sweep horizon in slots; doubles per sweep
            (geometric, like the sources' own growth policy).
        log_factory: optional ``(index, spec) -> EventLog`` giving runs
            event logs (bit-identity tests compare them against the
            per-run oracle's).

    Attributes:
        demotions: runs executed on the per-run path (static
            ineligibility + mid-cohort divergence).
    """

    def __init__(
        self,
        specs: Sequence[BatchRunSpec],
        *,
        width: Optional[int] = None,
        start_horizon: int = 2048,
        log_factory: Optional[Callable[[int, BatchRunSpec], EventLog]] = None,
    ):
        self._specs = list(specs)
        if width is not None:
            require_positive_int(width, "width")
        self._width = width
        self._start_horizon = require_positive_int(start_horizon, "start_horizon")
        self._log_factory = log_factory
        # Cohort row table: per-row slot clock and liveness, rows reused
        # through a free list as runs complete.
        self._row_clock = np.zeros(0, dtype=np.int64)
        self._row_live = np.zeros(0, dtype=bool)
        self._free: List[int] = []
        self.demotions = 0

    # ------------------------------------------------------------------ #
    # Eligibility and admission.                                           #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _eligible(spec: BatchRunSpec) -> bool:
        """Cohort membership: the default array/array span configuration.

        Everything else — the slot-mode oracle stepping, audit mode, the
        legacy instance store or scheduler API — runs per-run, where
        those configurations are already the validated oracles.
        """
        options = spec.options
        return (
            not options.audit
            and options.step_mode == "span"
            and not options.replan_every_slot
            and options.instance_store == "array"
            and options.scheduler_api == "array"
        )

    def _new_row(self) -> int:
        row = int(self._row_clock.size)
        self._row_clock = np.append(self._row_clock, 0)
        self._row_live = np.append(self._row_live, False)
        return row

    def _admit(
        self,
        index: int,
        spec: BatchRunSpec,
        groups: Dict[tuple, _TrialGroup],
        belief_donors: Dict[int, object],
    ) -> _CohortRun:
        key = (id(spec.scenario), spec.trial)
        group = groups.get(key)
        if group is None:
            group = groups[key] = _TrialGroup(spec.scenario, spec.trial)
        platform = group.make_platform()
        scheduler = make_scheduler(spec.heuristic, platform=platform)
        log = (
            self._log_factory(index, spec)
            if self._log_factory is not None
            else None
        )
        sim = MasterSimulator(
            platform,
            spec.scenario.app,
            scheduler,
            options=spec.options,
            rng=spec.scenario.scheduler_rng(spec.trial, spec.heuristic),
            log=log,
        )
        sim.states_provider = group.provider_for(
            [proc.availability for proc in platform]
        )
        donor = belief_donors.get(id(spec.scenario))
        if donor is None:
            belief_donors[id(spec.scenario)] = sim.round_state
        else:
            sim.round_state.adopt_belief_cache(donor)
        sim.begin_run(spec.max_slots)
        row = self._free.pop() if self._free else self._new_row()
        self._row_clock[row] = 0
        self._row_live[row] = True
        return _CohortRun(index=index, spec=spec, sim=sim, group=group, row=row)

    def _release(self, run: _CohortRun) -> None:
        self._row_live[run.row] = False
        self._free.append(run.row)

    # ------------------------------------------------------------------ #
    # Per-run oracle paths.                                                #
    # ------------------------------------------------------------------ #
    def _run_standalone(self, index: int, spec: BatchRunSpec) -> SimulationReport:
        """Execute one spec on the untouched per-run path."""
        platform = spec.scenario.build_platform(spec.trial)
        scheduler = make_scheduler(spec.heuristic, platform=platform)
        log = (
            self._log_factory(index, spec)
            if self._log_factory is not None
            else None
        )
        sim = MasterSimulator(
            platform,
            spec.scenario.app,
            scheduler,
            options=spec.options,
            rng=spec.scenario.scheduler_rng(spec.trial, spec.heuristic),
            log=log,
        )
        return sim.run(max_slots=spec.max_slots)

    def _demote(self, run: _CohortRun) -> SimulationReport:
        """Finish a diverged cohort member standalone (its views stay
        valid — they delegate growth to the base — only the shared
        boundary hooks are stripped)."""
        self.demotions += 1
        run.sim.states_provider = None
        run.sim.advance_until(run.spec.max_slots)
        return run.sim.finish_run()

    # ------------------------------------------------------------------ #
    # The cohort loop.                                                     #
    # ------------------------------------------------------------------ #
    def run(self) -> List[SimulationReport]:
        """Execute all specs; reports in spec order."""
        reports: List[Optional[SimulationReport]] = [None] * len(self._specs)
        pending: List[tuple] = []
        for index, spec in enumerate(self._specs):
            if self._eligible(spec):
                pending.append((index, spec))
            else:
                self.demotions += 1
                reports[index] = self._run_standalone(index, spec)
        pending.reverse()  # pop() admits in spec order

        groups: Dict[tuple, _TrialGroup] = {}
        belief_donors: Dict[int, object] = {}
        live: List[_CohortRun] = []
        horizon = self._start_horizon
        while pending or live:
            while pending and (
                self._width is None or len(live) < self._width
            ):
                index, spec = pending.pop()
                live.append(self._admit(index, spec, groups, belief_donors))
            # Fused availability extension: every live group's Markov
            # sources reach the sweep horizon in one batched continuation
            # per distinct chain (per-source draws stay in slot order).
            seen: Dict[int, _TrialGroup] = {}
            for run in live:
                seen.setdefault(id(run.group), run.group)
            lagging: List[MarkovSource] = []
            for group in seen.values():
                lagging.extend(
                    source
                    for source in group.markov
                    if source.slots_materialized < horizon
                )
                if len(group.memo) > _MEMO_LIMIT:
                    group.memo.clear()
            if lagging:
                extend_markov_sources(lagging, horizon)
            # Advance each member to the horizon on its own clock.
            still_live: List[_CohortRun] = []
            for run in live:
                try:
                    over = run.sim.advance_until(horizon)
                except CohortDivergence:
                    reports[run.index] = self._demote(run)
                    self._release(run)
                    continue
                self._row_clock[run.row] = run.sim.report.slots_simulated
                if over:
                    reports[run.index] = run.sim.finish_run()
                    self._release(run)
                else:
                    still_live.append(run)
            live = still_live
            horizon *= 2
        return reports  # type: ignore[return-value]


def run_unit_cohort(scenario: Scenario, unit) -> "CampaignUnitResult":
    """Execute a :class:`~repro.experiments.harness.CampaignUnit` as one
    cohort: the unit's heuristics share the trial's platform, traces and
    belief columns.  Returns the same
    :class:`~repro.experiments.harness.CampaignUnitResult` (bit-identical
    makespans) the per-run engine produces.
    """
    from ..experiments.harness import CampaignUnitResult  # harness imports us

    specs = [
        BatchRunSpec(
            scenario=scenario,
            trial=unit.trial,
            heuristic=heuristic,
            max_slots=unit.max_slots,
            options=unit.options,
        )
        for heuristic in unit.heuristics
    ]
    reports = BatchCampaignRunner(specs).run()
    makespans: Dict[str, float] = {}
    truncated: List[str] = []
    for heuristic, report in zip(unit.heuristics, reports):
        makespan = float(
            report.makespan if report.makespan is not None else unit.max_slots
        )
        if makespan >= unit.max_slots:
            truncated.append(heuristic)
        makespans[heuristic] = makespan
    return CampaignUnitResult(makespans=makespans, truncated=tuple(truncated))
