"""Batched multi-run campaign engine (DESIGN.md §11).

The unit of production work is never one simulation but thousands —
scenario × trial × heuristic sweeps feeding Tables 2/3 and Figure 2 of
the paper.  PRs 3–5 moved all *per-run* hot state into numpy columns;
this module applies the same amortisation *across* runs:
:class:`BatchCampaignRunner` advances R independent simulations
cohort-synchronised, fusing the work that is identical or shareable
between them while every run keeps its own slot clock, event stream and
RNG order.

What the cohort fuses
=====================

* **Ground-truth traces.**  Runs of one (scenario, trial) share one base
  platform: the availability randomness is keyed ``(root_seed, key,
  trial, q)`` — independent of the heuristic — so every cohort member of
  a trial reads the *identical* trace.  Each run gets a zero-copy
  :class:`~repro.sim.availability.TraceView` (own monotone-access
  cursor, shared run storage), and the cohort loop pre-extends the base
  sources to the sweep horizon through one
  :func:`~repro.sim.availability.extend_markov_sources` call — R chains
  continued per model via :meth:`~repro.core.markov.
  MarkovAvailabilityModel.sample_trace_batch`, each source drawing from
  its own generator in slot order, so traces stay bit-identical to
  per-run growth (the documented growth-schedule independence).
* **Per-boundary state rows.**  The master's ``states_provider`` seam
  lets the trial group memoise the ``slot -> [state per processor]``
  list once per boundary per *trial* instead of per run.
* **Belief-derived columns.**  ``p_uu``/``p_plus``/``pi_u``/``e_up``/
  ``ud_*`` are pure functions of the immutable belief chains, identical
  across every run of a scenario: the first admitted run's
  :class:`~repro.core.heuristics.round_state.RoundState` donates its
  lazy column cache to all others
  (:meth:`~repro.core.heuristics.round_state.RoundState.
  adopt_belief_cache`), so each column is computed once per scenario
  rather than once per run.
* **Score rows across rounds.**  The master stamps every worker-column
  rewrite (:attr:`RoundState.col_stamp`), so the CT-family schedulers
  keep their ``n_q = 0`` score rows alive across rounds and re-score
  only stamped-out processors — see ``GreedyScheduler._row0_stamped``.

What deliberately stays per-run
===============================

Event logs, network audit trails, scheduler RNG draws, the placement
heap and its tie-breaks, and the slot clock: anything that defines a
run's *identity*.  Reports, event logs and audit trails are
bit-identical to the per-run oracle regardless of cohort composition or
R (asserted in ``tests/test_batch_engine.py`` and by the benchmark
gates).

Cohort membership and demotion
==============================

Runs join the cohort only on the default array/array span-stepped
configuration; a run needing the slot-mode oracle stepping
(``step_mode="slot"`` or ``replan_every_slot``), audit mode, or a
legacy store/API is *statically demoted* — executed on the untouched
per-run path (``MasterSimulator.run``).  A cohort member that diverges
mid-flight (a shared hook raises :class:`CohortDivergence`) is
*dynamically demoted*: its shared hooks are stripped and the run
finishes standalone on its own views — the result is identical either
way, demotion only changes who pays for the boundary work.

Completed runs leave the cohort and release their row in the runner's
row table (free-list reuse, like the
:class:`~repro.sim.instance_table.InstanceTable`); with a ``width``
bound the freed rows are immediately re-used to admit pending specs, so
arbitrarily large campaigns run in bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .._validation import require_positive_int
from ..core.heuristics.registry import make_scheduler
from ..core.heuristics.round_state import StackedRoundState
from ..workload.scenarios import Scenario
from .availability import (
    MarkovSource,
    TraceView,
    _RleTraceSource,
    extend_markov_sources,
)
from .events import EventLog
from .master import MasterSimulator, SimulatorOptions
from .metrics import SimulationReport
from .platform import Platform, Processor

__all__ = [
    "BatchCampaignRunner",
    "BatchRunSpec",
    "CohortDivergence",
    "run_unit_cohort",
]

#: Boundaries memoised per trial group before the state-row memo is
#: dropped wholesale (it is a cache: a miss just re-reads the views).
_MEMO_LIMIT = 1 << 17


class CohortDivergence(RuntimeError):
    """A cohort-shared hook can no longer honour the fused fast path.

    Raised from inside a shared seam (e.g. the states provider) while a
    cohort member steps; the runner catches it, strips that run's shared
    hooks and finishes the run on the per-run path.  Never raised by the
    production hooks — it is the contract for extensions (and tests) to
    trigger mid-cohort demotion without poisoning the rest of the
    cohort.
    """


@dataclass(frozen=True)
class BatchRunSpec:
    """One run of a cohort: a ``CampaignUnit``-compatible (scenario,
    trial, heuristic) instance plus its simulator configuration.

    ``max_slots`` is the run's slot budget; under the paper's makespan
    objective the run ends when its iterations complete, under the
    Section 3.4 fixed-budget objective the budget *is* the objective
    horizon and ``report.completed_iterations`` carries the result — the
    engine machinery is identical (as it is for
    :meth:`~repro.sim.master.MasterSimulator.run` vs ``run_slots``).
    """

    scenario: Scenario
    trial: int
    heuristic: str
    max_slots: int = 500_000
    options: SimulatorOptions = field(default_factory=SimulatorOptions)

    def __post_init__(self) -> None:
        require_positive_int(self.max_slots, "max_slots")
        if self.trial < 0:
            raise ValueError(f"trial must be >= 0, got {self.trial}")


class _TrialGroup:
    """Shared resources of one (scenario, trial): the base ground-truth
    platform, its batch-extendable Markov sources, and the per-boundary
    state-row memo."""

    def __init__(self, scenario: Scenario, trial: int):
        self.base = scenario.build_platform(trial)
        self.markov: List[MarkovSource] = [
            proc.availability
            for proc in self.base
            if isinstance(proc.availability, MarkovSource)
        ]
        self.memo: Dict[int, list] = {}

    def make_platform(self) -> Platform:
        """A per-run platform reading the shared traces through views."""
        processors = []
        for proc in self.base:
            source = proc.availability
            availability = (
                TraceView(source)
                if isinstance(source, _RleTraceSource)
                else source  # cursor-free sources (TraceSource) share directly
            )
            processors.append(
                Processor(
                    index=proc.index,
                    speed_w=proc.speed_w,
                    availability=availability,
                    belief=proc.belief,
                )
            )
        return Platform(processors, ncom=self.base.ncom)

    def provider_for(self, views: Sequence) -> Callable[[int], list]:
        """A states provider memoising boundary rows across the group.

        The returned lists are exactly ``[view.state_at(slot) for view
        in views]`` — every run of the trial reads the identical trace,
        so the first run to touch a boundary fills the row for all.
        The master treats the lists as immutable (documented at the
        seam), so sharing them is safe.
        """
        memo = self.memo

        def provider(slot: int) -> list:
            row = memo.get(slot)
            if row is None:
                row = [view.state_at(slot) for view in views]
                memo[slot] = row
            return row

        return provider


@dataclass
class _CohortRun:
    """A live cohort member."""

    index: int  # position in the runner's spec list
    spec: BatchRunSpec
    sim: MasterSimulator
    group: _TrialGroup
    row: int  # row in the runner's cohort table
    #: Stacked-member context ``(scheduler, rs, sim, contended,
    #: stacked_row, group_key)`` hoisted once at admission (None for
    #: non-stacked and demoted members — the driver skips those).
    sctx: Optional[tuple] = None


class BatchCampaignRunner:
    """Advance R run specs cohort-synchronised (DESIGN.md §11).

    Args:
        specs: the runs, in result order.  Specs sharing a (scenario,
            trial) share ground-truth traces and state rows; specs
            sharing a scenario share belief columns; everything else is
            per-run.
        width: maximum concurrently live cohort rows (``None`` =
            unbounded).  Completed runs free their row for the next
            pending spec, so memory is O(width), not O(R).
        start_horizon: first sweep horizon in slots; doubles per sweep
            (geometric, like the sources' own growth policy).
        log_factory: optional ``(index, spec) -> EventLog`` giving runs
            event logs (bit-identity tests compare them against the
            per-run oracle's).
        stack_rounds: enable the stacked-round engine (DESIGN.md §14):
            members whose scheduler implements the CT-row hooks run with
            ``MasterSimulator.stack_rounds`` — their scheduling rounds
            pause at the prepare/execute seam, the driver scores all
            paused members' ``n_q = 0`` rows against the cohort's
            :class:`StackedRoundState` (R, p) matrices in one pass,
            pre-computes the uniform-factor greedy placements, and
            resumes each round bit-identically.  Stacked members run
            *without* the states-provider memo so the event-calendar
            platform index stays active (the provider disables it);
            non-capable members keep the memo path unchanged.  Off by
            default: the stacked pass is bit-identical but measures
            ~0.92× the per-run cohort path on the benchmark grid — the
            per-round incremental caches (§10/§12) already absorb the
            scoring work stacking targets, and the pause seam taxes
            every round (the measured decomposition is in DESIGN.md
            §14).  ``benchmarks/bench_sim.py --stacked`` tracks the
            honest ratio.

    Attributes:
        demotions: runs executed on the per-run path (static
            ineligibility + mid-cohort divergence).
        rows_scored_stacked: ``n_q = 0`` score-row entries produced by
            stacked cohort passes (benchmark instrumentation).
    """

    def __init__(
        self,
        specs: Sequence[BatchRunSpec],
        *,
        width: Optional[int] = None,
        start_horizon: int = 2048,
        log_factory: Optional[Callable[[int, BatchRunSpec], EventLog]] = None,
        stack_rounds: bool = False,
    ):
        self._specs = list(specs)
        if width is not None:
            require_positive_int(width, "width")
        self._width = width
        self._start_horizon = require_positive_int(start_horizon, "start_horizon")
        self._log_factory = log_factory
        self.stack_rounds = bool(stack_rounds)
        # Per-p stacked column matrices shared by all stacked members.
        self._stacks: Dict[int, StackedRoundState] = {}
        # Cohort row table: per-row slot clock and liveness, rows reused
        # through a free list as runs complete.
        self._row_clock = np.zeros(0, dtype=np.int64)
        self._row_live = np.zeros(0, dtype=bool)
        self._free: List[int] = []
        self.demotions = 0
        self.rows_scored_stacked = 0

    # ------------------------------------------------------------------ #
    # Eligibility and admission.                                           #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _eligible(spec: BatchRunSpec) -> bool:
        """Cohort membership: the default array/array span configuration.

        Everything else — the slot-mode oracle stepping, audit mode, the
        legacy instance store or scheduler API — runs per-run, where
        those configurations are already the validated oracles.
        """
        options = spec.options
        return (
            not options.audit
            and options.step_mode == "span"
            and not options.replan_every_slot
            and options.instance_store == "array"
            and options.scheduler_api == "array"
        )

    def _new_row(self) -> int:
        row = int(self._row_clock.size)
        self._row_clock = np.append(self._row_clock, 0)
        self._row_live = np.append(self._row_live, False)
        return row

    def _admit(
        self,
        index: int,
        spec: BatchRunSpec,
        groups: Dict[tuple, _TrialGroup],
        belief_donors: Dict[int, object],
    ) -> _CohortRun:
        key = (id(spec.scenario), spec.trial)
        group = groups.get(key)
        if group is None:
            group = groups[key] = _TrialGroup(spec.scenario, spec.trial)
        platform = group.make_platform()
        scheduler = make_scheduler(spec.heuristic, platform=platform)
        log = (
            self._log_factory(index, spec)
            if self._log_factory is not None
            else None
        )
        sim = MasterSimulator(
            platform,
            spec.scenario.app,
            scheduler,
            options=spec.options,
            rng=spec.scenario.scheduler_rng(spec.trial, spec.heuristic),
            log=log,
        )
        if self._stacked_capable(scheduler):
            # Stacked member: no states-provider memo — its absence keeps
            # the event-calendar platform index active (DESIGN.md §13),
            # which measures within noise of the memo here and keeps the
            # §13 boundary structures warm; the round work fuses through
            # the stacked pass instead.
            sim.stack_rounds = True
        else:
            sim.states_provider = group.provider_for(
                [proc.availability for proc in platform]
            )
        donor = belief_donors.get(id(spec.scenario))
        if donor is None:
            belief_donors[id(spec.scenario)] = sim.round_state
        else:
            sim.round_state.adopt_belief_cache(donor)
        sim.begin_run(spec.max_slots)
        sctx = None
        if sim.stack_rounds:
            rs = sim.round_state
            p = len(rs)
            stacked = self._stacks.get(p)
            if stacked is None:
                stacked = self._stacks[p] = StackedRoundState(p)
            stacked.attach(rs)
            contended = (
                bool(getattr(scheduler, "use_contention_factor", False))
                and rs.ncom is not None
            )
            sctx = (
                scheduler,
                rs,
                sim,
                contended,
                stacked.row_of(rs),
                (type(scheduler), p),
            )
        row = self._free.pop() if self._free else self._new_row()
        self._row_clock[row] = 0
        self._row_live[row] = True
        return _CohortRun(
            index=index, spec=spec, sim=sim, group=group, row=row, sctx=sctx
        )

    def _stacked_capable(self, scheduler) -> bool:
        """Whether ``scheduler`` can take the stacked-round path.

        The stacked pass drives the CT-row hook contract: batch scoring
        plus the scalar ``_score_ct_one`` twin (the MCT/EMCT/LW/UD
        families; the exact-UD ablations and the random/passive/trace
        schedulers keep the per-run path, where they are already the
        validated oracles).
        """
        return (
            self.stack_rounds
            and getattr(scheduler, "batch_scoring", False)
            and getattr(scheduler, "_score_ct_one", None) is not None
        )

    def _release(self, run: _CohortRun) -> None:
        self._row_live[run.row] = False
        self._free.append(run.row)

    # ------------------------------------------------------------------ #
    # Per-run oracle paths.                                                #
    # ------------------------------------------------------------------ #
    def _run_standalone(self, index: int, spec: BatchRunSpec) -> SimulationReport:
        """Execute one spec on the untouched per-run path."""
        platform = spec.scenario.build_platform(spec.trial)
        scheduler = make_scheduler(spec.heuristic, platform=platform)
        log = (
            self._log_factory(index, spec)
            if self._log_factory is not None
            else None
        )
        sim = MasterSimulator(
            platform,
            spec.scenario.app,
            scheduler,
            options=spec.options,
            rng=spec.scenario.scheduler_rng(spec.trial, spec.heuristic),
            log=log,
        )
        return sim.run(max_slots=spec.max_slots)

    def _detach(self, run: _CohortRun) -> None:
        """Release a stacked member's matrix row (no-op if not attached)."""
        stacked = self._stacks.get(len(run.sim.round_state))
        if stacked is not None:
            stacked.detach(run.sim.round_state)

    def _demote(self, run: _CohortRun) -> SimulationReport:
        """Finish a diverged cohort member standalone (its views stay
        valid — they delegate growth to the base — only the shared
        boundary hooks are stripped).

        A stacked member additionally leaves the cohort matrices first
        (columns copied back to private arrays, bit for bit) and, if it
        diverged between prepare and execute, finishes the paused round
        on the per-run path — :meth:`MasterSimulator.resume_round` is
        exactly that path once ``stack_rounds`` is off.
        """
        self.demotions += 1
        sim = run.sim
        sim.states_provider = None
        sim.stack_rounds = False
        run.sctx = None
        self._detach(run)
        if sim.round_pending:
            sim.resume_round()
        sim.advance_until(run.spec.max_slots)
        return sim.finish_run()

    # ------------------------------------------------------------------ #
    # The cohort loop.                                                     #
    # ------------------------------------------------------------------ #
    def run(self) -> List[SimulationReport]:
        """Execute all specs; reports in spec order."""
        reports: List[Optional[SimulationReport]] = [None] * len(self._specs)
        pending: List[tuple] = []
        for index, spec in enumerate(self._specs):
            if self._eligible(spec):
                pending.append((index, spec))
            else:
                self.demotions += 1
                reports[index] = self._run_standalone(index, spec)
        pending.reverse()  # pop() admits in spec order

        groups: Dict[tuple, _TrialGroup] = {}
        belief_donors: Dict[int, object] = {}
        live: List[_CohortRun] = []
        horizon = self._start_horizon
        while pending or live:
            while pending and (
                self._width is None or len(live) < self._width
            ):
                index, spec = pending.pop()
                live.append(self._admit(index, spec, groups, belief_donors))
            # Fused availability extension: every live group's Markov
            # sources reach the sweep horizon in one batched continuation
            # per distinct chain (per-source draws stay in slot order).
            seen: Dict[int, _TrialGroup] = {}
            for run in live:
                seen.setdefault(id(run.group), run.group)
            lagging: List[MarkovSource] = []
            for group in seen.values():
                lagging.extend(
                    source
                    for source in group.markov
                    if source.slots_materialized < horizon
                )
                if len(group.memo) > _MEMO_LIMIT:
                    group.memo.clear()
            if lagging:
                extend_markov_sources(lagging, horizon)
            # Advance each member to the horizon on its own clock.  A
            # stacked member returns early whenever a scheduling round
            # pauses at the prepare/execute seam; the lockstep inner loop
            # collects every paused member, runs one cohort-wide stacked
            # round over their (R, p) matrices, resumes each, and keeps
            # sweeping until all members reached the horizon (or ended).
            still_live: List[_CohortRun] = []
            paused: List[_CohortRun] = []
            for run in live:
                try:
                    over = run.sim.advance_until(horizon)
                except CohortDivergence:
                    reports[run.index] = self._demote(run)
                    self._release(run)
                    continue
                if run.sim.round_pending:
                    paused.append(run)
                    continue
                self._row_clock[run.row] = run.sim.report.slots_simulated
                if over:
                    self._detach(run)
                    reports[run.index] = run.sim.finish_run()
                    self._release(run)
                else:
                    still_live.append(run)
            while paused:
                self._stacked_round(paused)
                next_paused: List[_CohortRun] = []
                for run in paused:
                    try:
                        # One call resumes the round AND keeps stepping to
                        # the horizon (or the next pause) — the driver pays
                        # a single Python re-entry per scheduling round.
                        over = run.sim.resume_round(advance_to=horizon)
                    except CohortDivergence:
                        reports[run.index] = self._demote(run)
                        self._release(run)
                        continue
                    if run.sim.round_pending:
                        next_paused.append(run)
                        continue
                    self._row_clock[run.row] = run.sim.report.slots_simulated
                    if over:
                        self._detach(run)
                        reports[run.index] = run.sim.finish_run()
                        self._release(run)
                    else:
                        still_live.append(run)
                paused = next_paused
            live = still_live
            horizon *= 2
        return reports  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # The stacked round (DESIGN.md §14).                                   #
    # ------------------------------------------------------------------ #
    def _stacked_round(self, paused: List[_CohortRun]) -> None:
        """Score and pre-place every paused member's round cohort-wide.

        Each paused member sits between ``_round_prepare`` and
        ``_round_execute``: its :class:`RoundState` columns are current
        and nothing of the round has executed.  Members group by
        (scheduler kind, p); per group one full-width integer CT matrix
        feeds the scheduler's ``score_batch_stacked`` kernel, whose rows
        install into each member's per-round cache — the member's own
        ``place_array`` then finds its ``n_q = 0`` row (and, when the
        uniform-factor placement could be pre-run, the whole placement
        list) already computed, bit-identically.  Members the stacked
        pass cannot serve — empty UP set, nothing to place, a genuinely
        mixed contention factor, NaN scores (missing beliefs), or a
        kernel-less scheduler — are simply left alone: ``resume_round``
        computes everything on the per-run path, so skipping is always
        correct, never wrong.
        """
        groups: Dict[tuple, List[tuple]] = {}
        for run in paused:
            sctx = run.sctx
            if sctx is None:
                continue
            scheduler, rs, sim, contended, row, key = sctx
            originals = sim._round_pending[2][0]
            n_tasks = len(originals)
            if n_tasks == 0:
                continue
            plan = scheduler._stacked_plan
            if plan is not None and plan[0] == rs.version and plan[1] == n_tasks:
                # The persistent plan from an earlier wave still matches
                # the columns (elision-heavy regime): nothing to redo.
                continue
            cache = scheduler._round_setup(rs)
            up_list = cache["up_list"]
            k = len(up_list)
            if k == 0:
                continue
            # Replicate ``place_array``'s up-front factor resolution: the
            # stacked pass only serves rounds whose contention factor is
            # provably constant (the overwhelming case); a straddling
            # round keeps its exact mixed-factor scoring per run.
            if not contended:
                factor = 1
            else:
                no_pinned = sum(cache["pinned_zero"])
                n_active = k - no_pinned
                growth = no_pinned if no_pinned < n_tasks else n_tasks
                upper = n_active + growth + 1
                if upper > k:
                    upper = k
                ncom = rs.ncom
                factor = max(1, -(-n_active // ncom))
                if factor != max(1, -(-upper // ncom)):
                    continue
            entry = (scheduler, rs, cache, factor, n_tasks, row)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [entry]
            else:
                bucket.append(entry)
        for (_kind, _p), entries in groups.items():
            stacked = self._stacks[_p]
            ready: List[tuple] = []
            to_score: List[tuple] = []
            for entry in entries:
                # The persistent delta cache may have carried the row
                # across rounds already — then there is nothing to score.
                if entry[3] in entry[2]["row0"]:
                    ready.append(entry)
                else:
                    to_score.append(entry)
            if to_score:
                rows = [entry[5] for entry in to_score]
                factors = [entry[3] for entry in to_score]
                members = [(entry[1], entry[2]) for entry in to_score]
                index = np.array(rows, dtype=np.intp)
                effs = np.array(
                    [entry[3] * entry[1].t_data for entry in to_score],
                    dtype=np.int64,
                )
                # Full-width CT at n_q = 0: Delay + factor·t_data + w,
                # exact int64 — element-for-element the per-run CT base.
                ct0 = stacked.delay[index] + effs[:, None] + stacked.speed_w[index]
                scored = to_score[0][0].score_batch_stacked(
                    stacked, rows, factors, ct0, members
                )
                if scored is not None:
                    for entry, row0 in zip(to_score, scored):
                        self.rows_scored_stacked += len(row0)
                        entry[2]["row0"][entry[3]] = row0
                        ready.append(entry)
            if ready:
                self._stacked_place(ready)

    def _stacked_place(self, ready: List[tuple]) -> None:
        """Pre-run the uniform-factor greedy placements cohort-wide.

        One placement is one argmin over the working key row — and
        ``argmin``'s first-occurrence rule equals the placement heap's
        ``(key, cand, j)`` lexicographic minimum because the candidate
        list ascends with ``j`` (the §12 precedent) — so the cohort's
        placement loops fuse into one (K, max_up) matrix: each step is
        a single vectorised argmin plus one scalar re-score per member
        (the exact ``_score_ct_one`` call ``place_array`` would make).
        The result installs as the member's ``_stacked_plan``, consumed
        version-guarded by its next unrestricted ``place_array`` call.
        Members whose key row holds NaN are skipped — ``place_array``
        owns the missing-belief error semantics and must see them.
        """
        prepped: List[tuple] = []
        key_rows: List[list] = []
        max_up = 0
        max_tasks = 0
        for scheduler, rs, cache, factor, n_tasks, _row in ready:
            keys = scheduler._row0_keys_list(rs, cache, factor)
            if any(key != key for key in keys):
                continue
            base, step = scheduler._ct_bases(rs, cache, factor)
            scorer = scheduler._stacked_scorer(rs, cache, factor)
            prepped.append(
                (
                    scheduler,
                    rs,
                    n_tasks,
                    cache["up_list"],
                    base,
                    step,
                    scorer,
                    -1.0 if scheduler.maximize else 1.0,
                    [0] * len(keys),
                )
            )
            key_rows.append(keys)
            if len(keys) > max_up:
                max_up = len(keys)
            if n_tasks > max_tasks:
                max_tasks = n_tasks
        if not prepped:
            return
        working = np.full((len(prepped), max_up), np.inf, dtype=np.float64)
        for k, keys in enumerate(key_rows):
            working[k, : len(keys)] = keys
        placements: List[List[int]] = [[] for _ in prepped]
        for step_no in range(max_tasks):
            js = working.argmin(axis=1).tolist()
            for k, entry in enumerate(prepped):
                if step_no >= entry[2]:
                    continue
                j = js[k]
                _sched, _rs, _nt, up_list, base, step, scorer, sign, nq = entry
                placements[k].append(up_list[j])
                count = nq[j] + 1
                nq[j] = count
                working[k, j] = sign * scorer(base[j] + count * step[j], j)
        for k, entry in enumerate(prepped):
            entry[0]._stacked_plan = (entry[1].version, entry[2], placements[k])


def run_unit_cohort(scenario: Scenario, unit) -> "CampaignUnitResult":
    """Execute a :class:`~repro.experiments.harness.CampaignUnit` as one
    cohort: the unit's heuristics share the trial's platform, traces and
    belief columns.  Returns the same
    :class:`~repro.experiments.harness.CampaignUnitResult` (bit-identical
    makespans) the per-run engine produces.
    """
    from ..experiments.harness import CampaignUnitResult  # harness imports us

    specs = [
        BatchRunSpec(
            scenario=scenario,
            trial=unit.trial,
            heuristic=heuristic,
            max_slots=unit.max_slots,
            options=unit.options,
        )
        for heuristic in unit.heuristics
    ]
    reports = BatchCampaignRunner(specs).run()
    makespans: Dict[str, float] = {}
    truncated: List[str] = []
    for heuristic, report in zip(unit.heuristics, reports):
        makespan = float(
            report.makespan if report.makespan is not None else unit.max_slots
        )
        if makespan >= unit.max_slots:
            truncated.append(heuristic)
        makespans[heuristic] = makespan
    return CampaignUnitResult(makespans=makespans, truncated=tuple(truncated))
