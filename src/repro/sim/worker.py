"""Worker-side pipeline state (paper Sections 3.2–3.3).

Each enrolled worker runs a three-stage pipeline:

1. **program stage** — receive the application program (``t_prog`` slots of
   channel service); required once per DOWN-free lifetime of the worker;
2. **data stage** — receive the input data of the next task instance
   (``t_data`` slots); at most *one* instance beyond the currently
   computing one may hold (possibly partial) data — the paper's prefetch
   bound (Section 3.3);
3. **compute stage** — accumulate ``w_q`` UP slots on the instance whose
   data is complete; tasks execute sequentially, never in parallel.

Computation and communication overlap freely (they use different
resources), but a given task's computation only starts on the slot *after*
its data transfer completed, and any computation requires the program to
have completed on an earlier slot.

State-transition effects:

* RECLAIMED — everything freezes; progress resumes untouched on return to UP.
* DOWN — program, task data and partial results are all lost
  (:meth:`WorkerRuntime.crash`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["TaskInstance", "WorkerRuntime", "reset_instance"]


def reset_instance(inst: "TaskInstance") -> None:
    """Erase all progress on ``inst`` (after a crash or cancellation)."""
    inst.data_received = 0
    inst.compute_done = 0
    inst.compute_needed = 0
    inst.computing = False
    inst.worker = None

_instance_counter = itertools.count()


@dataclass(eq=False)
class TaskInstance:
    """One attempt at executing one task of the current iteration.

    A *task* (identified by ``(iteration, task_id)``) may have up to three
    live instances — the original and at most two replicas (Section 6.1).
    Instances are identity-compared; ``uid`` makes logs unambiguous.

    Attributes:
        iteration: iteration index the task belongs to.
        task_id: task index within the iteration, ``0 <= task_id < m``.
        replica_id: 0 for the original, 1 or 2 for replicas.
        data_needed: slots of data transfer required (``t_data``).
        data_received: slots of data transfer completed so far.
        compute_needed: UP slots of computation required (worker's ``w_q``);
            set when the instance is placed on a worker.
        compute_done: UP compute slots accumulated so far.
        worker: index of the worker currently hosting the instance, or
            ``None`` while unplaced.
        computing: True once computation has begun.
        row: the master's store slot — the instance's row in the
            structure-of-arrays :class:`~repro.sim.instance_table.
            InstanceTable`, or its position in the legacy instance list
            (enabling O(1) swap-remove); -1 while unregistered.
            Maintained by the owning store, never by the instance.
    """

    iteration: int
    task_id: int
    replica_id: int
    data_needed: int
    data_received: int = 0
    compute_needed: int = 0
    compute_done: int = 0
    worker: Optional[int] = None
    computing: bool = False
    row: int = -1
    uid: int = field(default_factory=lambda: next(_instance_counter))

    @property
    def is_replica(self) -> bool:
        """True for replicas (``replica_id > 0``)."""
        return self.replica_id > 0

    @property
    def data_complete(self) -> bool:
        """True when all input data has been received."""
        return self.data_received >= self.data_needed

    @property
    def data_started(self) -> bool:
        """True once at least one slot of data has been received."""
        return self.data_received > 0

    @property
    def pinned(self) -> bool:
        """True once work for this instance has begun on its worker.

        A pinned instance is never reassigned by the dynamic heuristics
        (Section 6.1: started communications/computations are finished).
        With ``t_data == 0`` there is no communication, so pinning only
        happens when computation starts.
        """
        return self.data_started or self.computing

    @property
    def compute_complete(self) -> bool:
        """True when the instance has accumulated all required compute."""
        return self.computing and self.compute_done >= self.compute_needed

    @property
    def data_remaining(self) -> int:
        """Slots of data transfer still needed."""
        return max(self.data_needed - self.data_received, 0)

    @property
    def compute_remaining(self) -> int:
        """UP compute slots still needed (full ``w`` before placement)."""
        return max(self.compute_needed - self.compute_done, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f"t{self.task_id}" + (f"r{self.replica_id}" if self.is_replica else "")
        return (
            f"TaskInstance({tag}@it{self.iteration}, worker={self.worker}, "
            f"data={self.data_received}/{self.data_needed}, "
            f"comp={self.compute_done}/{self.compute_needed})"
        )


@dataclass
class WorkerRuntime:
    """Mutable per-worker pipeline state maintained by the master.

    Attributes:
        index: processor index.
        speed_w: the worker's ``w_q``.
        t_prog: program transfer length in slots.
        prog_received: slots of program received since last crash.
        queue: task instances placed on this worker, in service order.
            The head instances are typically pinned; the tail is the
            re-plannable backlog the scheduler rewrites each round.
    """

    index: int
    speed_w: int
    t_prog: int
    prog_received: int = 0
    queue: List[TaskInstance] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Program state.                                                       #
    # ------------------------------------------------------------------ #
    @property
    def has_program(self) -> bool:
        """True when the full program is resident."""
        return self.prog_received >= self.t_prog

    @property
    def prog_remaining(self) -> int:
        """Program transfer slots still needed."""
        return max(self.t_prog - self.prog_received, 0)

    # ------------------------------------------------------------------ #
    # Queue inspection.                                                    #
    # ------------------------------------------------------------------ #
    @property
    def computing_instance(self) -> Optional[TaskInstance]:
        """The instance currently computing, if any."""
        for inst in self.queue:
            if inst.computing and not inst.compute_complete:
                return inst
        return None

    @property
    def data_stage_instance(self) -> Optional[TaskInstance]:
        """The instance currently holding/receiving prefetched data.

        This is the unique non-computing instance with data progress — the
        paper allows at most one (asserted by the master's invariant check).
        """
        for inst in self.queue:
            if not inst.computing and inst.data_started:
                return inst
        return None

    def pinned_instances(self) -> List[TaskInstance]:
        """Instances whose work has begun (not re-plannable)."""
        return [inst for inst in self.queue if inst.pinned]

    def planned_instances(self) -> List[TaskInstance]:
        """Instances assigned but not yet started (re-plannable)."""
        return [inst for inst in self.queue if not inst.pinned]

    # ------------------------------------------------------------------ #
    # Pipeline queries used by the slot loop.                              #
    # ------------------------------------------------------------------ #
    def next_data_target(self) -> Optional[TaskInstance]:
        """The instance that should receive data next, or ``None``.

        Honours the prefetch bound: if some non-computing instance already
        has data in flight or buffered, no *other* instance may start
        receiving; if that in-flight instance is incomplete it is the
        target.  Instances with ``data_needed == 0`` never need a channel.
        """
        staged = self.data_stage_instance
        if staged is not None:
            return staged if not staged.data_complete else None
        computing = self.computing_instance
        for inst in self.queue:
            if inst is computing or inst.computing:
                continue
            if inst.data_needed == 0:
                continue  # nothing to transfer
            return inst
        return None

    def next_compute_target(self) -> Optional[TaskInstance]:
        """The instance that should start computing, or ``None``.

        Requires the program to be resident and no instance already
        computing; picks the first queued instance with complete data.
        """
        if not self.has_program:
            return None
        if self.computing_instance is not None:
            return None
        for inst in self.queue:
            if not inst.computing and inst.data_complete:
                return inst
        return None

    def wants_program(self) -> bool:
        """True when a program transfer (or resume) is useful this slot."""
        return not self.has_program and bool(self.queue)

    def slots_to_next_milestone(
        self,
        granted_kind: Optional[str] = None,
        granted_instance: Optional[TaskInstance] = None,
    ) -> Optional[int]:
        """Slots until this worker's pipeline next crosses a threshold.

        Used by the span-stepped master (DESIGN.md §6): while the worker
        stays UP with an unchanged channel grant, its pipeline advances
        purely linearly — the only discrete events are the currently
        computing instance finishing, a granted program transfer
        completing, or a granted data transfer completing.  This returns
        the minimum of those distances (``None`` when the worker has no
        active progress at all), so the master can take the min across
        workers to bound the skip-ahead span.

        Args:
            granted_kind: ``"prog"``/``"data"`` when the network granted
                this worker a channel this slot, else ``None``.
            granted_instance: the instance receiving data for a
                ``"data"`` grant.
        """
        horizons = []
        computing = self.computing_instance
        if computing is not None:
            horizons.append(computing.compute_remaining)
        if granted_kind == "prog":
            horizons.append(self.prog_remaining)
        elif granted_kind == "data":
            if granted_instance is None:
                raise ValueError("data grant needs its receiving instance")
            horizons.append(granted_instance.data_remaining)
        return min(horizons) if horizons else None

    # ------------------------------------------------------------------ #
    # Delay(q) — Section 6.3.1.                                            #
    # ------------------------------------------------------------------ #
    def delay_estimate(
        self, t_data: int, pinned: Optional[List[TaskInstance]] = None
    ) -> int:
        """The paper's ``Delay(q)``: slots before current activities finish.

        Estimated under the paper's simplifying assumptions: the worker
        stays UP and no network contention occurs.  Models the two worker
        timelines (channel and CPU) over the *pinned* instances only —
        planned instances are re-plannable and therefore not "current
        activities":

        * the channel serves remaining program bytes, then each pinned
          instance's remaining data in queue order;
        * the CPU serves each pinned instance for its remaining compute,
          starting no earlier than its data completion.

        Args:
            t_data: the application's data transfer length (unused in the
                estimate itself; kept for signature stability).
            pinned: the result of :meth:`pinned_instances`, when the
                caller already holds it — this runs once per processor
                per scheduling round, so the repeated queue scan shows
                up in profiles.
        """
        comm_free = self.prog_remaining
        cpu_free = 0
        for inst in pinned if pinned is not None else self.pinned_instances():
            if inst.computing:
                # Data already complete; occupies CPU from now.
                cpu_free = max(cpu_free, 0) + inst.compute_remaining
                continue
            comm_free += inst.data_remaining
            start = max(comm_free, cpu_free)
            cpu_free = start + inst.compute_remaining
        return max(comm_free, cpu_free)

    def delay_and_pinned(self, t_data: int) -> tuple:
        """Fused ``(delay_estimate, pinned_count)`` in one queue walk.

        Hot path of the array scheduler API: the incremental
        :class:`~repro.core.heuristics.base.RoundState` refresh recomputes
        both columns for every dirty worker each scheduling round, so this
        fuses the pinned scan into :meth:`delay_estimate`'s timeline walk
        (same integer arithmetic, same result — cross-checked against the
        unfused pair in the master's audit mode) and inlines the
        per-instance properties.

        Args:
            t_data: kept for signature symmetry with
                :meth:`delay_estimate` (unused there too).
        """
        comm_free = self.t_prog - self.prog_received
        if comm_free < 0:
            comm_free = 0
        cpu_free = 0
        pinned_count = 0
        for inst in self.queue:
            if inst.data_received == 0 and not inst.computing:
                continue  # planned, re-plannable: not a current activity
            pinned_count += 1
            compute_remaining = inst.compute_needed - inst.compute_done
            if compute_remaining < 0:
                compute_remaining = 0
            if inst.computing:
                cpu_free += compute_remaining
                continue
            data_remaining = inst.data_needed - inst.data_received
            if data_remaining > 0:
                comm_free += data_remaining
            start = comm_free if comm_free > cpu_free else cpu_free
            cpu_free = start + compute_remaining
        delay = comm_free if comm_free > cpu_free else cpu_free
        return delay, pinned_count

    # ------------------------------------------------------------------ #
    # State-change effects.                                                #
    # ------------------------------------------------------------------ #
    def crash(self) -> List[TaskInstance]:
        """Apply a DOWN transition: lose program, data and partial results.

        Progress fields of the lost instances are left intact so the master
        can account for the wasted work before resetting them with
        :func:`reset_instance`.

        Returns:
            The instances that were queued (now orphaned).
        """
        lost = list(self.queue)
        self.queue.clear()
        self.prog_received = 0
        for inst in lost:
            inst.worker = None
        return lost

    def remove_instance(self, inst: TaskInstance) -> None:
        """Drop ``inst`` from the queue (commit elsewhere / re-plan)."""
        self.queue = [other for other in self.queue if other is not inst]
        inst.worker = None

    def check_invariants(self) -> None:
        """Assert pipeline invariants (used by the master in audit mode)."""
        computing = [i for i in self.queue if i.computing and not i.compute_complete]
        assert len(computing) <= 1, f"worker {self.index}: two instances computing"
        staged = [i for i in self.queue if not i.computing and i.data_started]
        assert len(staged) <= 1, (
            f"worker {self.index}: prefetch bound violated ({len(staged)} staged)"
        )
        if computing and not self.has_program:
            raise AssertionError(f"worker {self.index}: computing without program")
        for inst in self.queue:
            assert inst.worker == self.index, (
                f"instance {inst} queued on worker {self.index} "
                f"but records worker {inst.worker}"
            )
