"""The volatile master–worker simulator and its substrates."""

from .availability import (
    AvailabilitySource,
    MarkovSource,
    SemiMarkovSource,
    TraceSource,
    WeibullSource,
)
from .engine import Environment, Event, Interrupt, Process, Timeout
from .events import EventKind, EventLog, SimEvent
from .instance_table import InstanceTable
from .master import MasterSimulator, SimulatorOptions, simulate
from .metrics import SimulationReport
from .network import BoundedMultiportNetwork, TransferRequest
from .platform import Platform, Processor
from .relevance import ReplanPolicy, parse_replan_policy
from .timeline import Activity, TimelineRecorder
from .worker import TaskInstance, WorkerRuntime

__all__ = [
    "MarkovSource",
    "TraceSource",
    "SemiMarkovSource",
    "WeibullSource",
    "AvailabilitySource",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "EventLog",
    "EventKind",
    "SimEvent",
    "InstanceTable",
    "MasterSimulator",
    "SimulatorOptions",
    "ReplanPolicy",
    "parse_replan_policy",
    "simulate",
    "SimulationReport",
    "BoundedMultiportNetwork",
    "TransferRequest",
    "Platform",
    "Processor",
    "TaskInstance",
    "WorkerRuntime",
    "TimelineRecorder",
    "Activity",
]
