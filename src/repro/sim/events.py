"""Structured observability records emitted by the simulator.

The simulator can log a compact, typed event stream (off by default — the
experiment harness runs with logging disabled for speed).  Events make the
slot-level behaviour auditable: tests replay tiny scenarios and assert the
exact sequence; the examples pretty-print them as an execution trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["EventKind", "SimEvent", "EventLog"]


class EventKind(enum.Enum):
    """Event taxonomy for the simulation trace."""

    PROC_STATE_CHANGE = "proc_state_change"
    PROGRAM_TRANSFER_START = "program_transfer_start"
    PROGRAM_TRANSFER_DONE = "program_transfer_done"
    DATA_TRANSFER_START = "data_transfer_start"
    DATA_TRANSFER_DONE = "data_transfer_done"
    COMPUTE_START = "compute_start"
    TASK_COMMIT = "task_commit"
    REPLICA_CANCELLED = "replica_cancelled"
    INSTANCE_LOST = "instance_lost"
    ITERATION_DONE = "iteration_done"
    RUN_DONE = "run_done"


@dataclass(frozen=True)
class SimEvent:
    """One structured event.

    Attributes:
        slot: the slot during which the event happened.
        kind: the event kind.
        worker: processor index, where applicable.
        iteration: iteration index, where applicable.
        task_id: task index within the iteration, where applicable.
        replica_id: replica index of the instance, where applicable.
        detail: free-form extra information (e.g. old/new state).
    """

    slot: int
    kind: EventKind
    worker: Optional[int] = None
    iteration: Optional[int] = None
    task_id: Optional[int] = None
    replica_id: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        parts = [f"[{self.slot:>5}] {self.kind.value}"]
        if self.worker is not None:
            parts.append(f"P{self.worker}")
        if self.iteration is not None:
            parts.append(f"it{self.iteration}")
        if self.task_id is not None:
            tag = f"task{self.task_id}"
            if self.replica_id:
                tag += f"/r{self.replica_id}"
            parts.append(tag)
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class EventLog:
    """An append-only event sink with simple query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._events: List[SimEvent] = []

    def emit(self, event: SimEvent) -> None:
        """Record ``event`` if logging is enabled."""
        if self.enabled:
            self._events.append(event)

    @property
    def events(self) -> List[SimEvent]:
        """All recorded events in emission order."""
        return list(self._events)

    def of_kind(self, kind: EventKind) -> List[SimEvent]:
        """Events of one kind, in order."""
        return [event for event in self._events if event.kind == kind]

    def for_worker(self, worker: int) -> List[SimEvent]:
        """Events touching one worker, in order."""
        return [event for event in self._events if event.worker == worker]

    def render(self) -> str:
        """Human-readable multi-line trace."""
        return "\n".join(str(event) for event in self._events)
