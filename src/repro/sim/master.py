"""The volatile master–worker simulator (paper Sections 3 and 6).

:class:`MasterSimulator` executes an :class:`~repro.workload.application.
IterativeApplication` on a :class:`~repro.sim.platform.Platform` under a
chosen scheduling heuristic, realising the model of Section 3:

* time advances in slots; processor states are read from each processor's
  ground-truth availability source;
* the master's outgoing bandwidth is a hard per-slot budget of ``ncom``
  channels (:class:`~repro.sim.network.BoundedMultiportNetwork`);
* workers run the program/data/compute pipeline of
  :class:`~repro.sim.worker.WorkerRuntime`, suspending while RECLAIMED and
  losing everything on DOWN;
* the scheduler re-plans the unpinned remainder of the current iteration at
  every *event* (state change, transfer completion, commit, crash,
  iteration boundary) — between events a re-plan would see the same inputs
  shifted by idle slots, so skipping it changes nothing for the paper's
  heuristics while keeping runs fast;
* tasks are replicated (up to :attr:`SimulatorOptions.max_replicas` extra
  copies) whenever UP processors outnumber uncommitted tasks, originals
  taking priority (Section 6.1).

**Normative slot order** (also documented in DESIGN.md §3): states & crash
handling → scheduling round → compute step → transfer step → commit and
iteration bookkeeping.  Compute precedes transfers so that a task whose
data finished in slot *t* starts computing in slot *t+1*, matching the
paper's sequential ``T_prog → T_data → w`` timing (verified against the
Section 4 worked example, whose optimal makespan of 9 slots this simulator
reproduces).

Two run modes mirror the paper's two objective formulations:

* :meth:`MasterSimulator.run` — complete a target number of iterations,
  report the makespan (the evaluation protocol of Section 7);
* :meth:`MasterSimulator.run_slots` — simulate exactly ``N`` slots, report
  completed iterations (the Section 3.4 objective).

**Stepping modes** (DESIGN.md §6).  The paper's chains have self-loop
probabilities in ``[0.90, 0.99]`` (Section 7), so for tens of slots at a
stretch nothing observable changes: states hold, transfers and
computations tick linearly, and no scheduling decision can differ.  The
default ``step_mode="span"`` exploits this by computing, after each fully
simulated slot, the next slot at which *anything* can change — the
earliest relevant availability transition, granted-transfer completion,
compute completion, or pending re-plan — and advancing all counters
arithmetically across the quiet gap in O(p) instead of O(p·span).  Slot
semantics are preserved exactly: ``step_mode="slot"`` keeps the original
one-slot-at-a-time loop as the oracle, and the two modes produce
bit-identical reports, event logs, and audit trails (enforced by
``tests/test_span_equivalence.py``).

**Instance stores** (DESIGN.md §9).  The default
``instance_store="array"`` keeps the live instances in the
structure-of-arrays :class:`~repro.sim.instance_table.InstanceTable` —
incrementally maintained aggregates turn the body's per-boundary and
per-round scans (crash sweep, round triviality, glide analysis,
replication bookkeeping, sibling lookups) into O(1) reads or short
candidate loops over a once-per-boundary state list.
``instance_store="legacy"`` preserves the original Python-list store as
the oracle; the two stores are bit-identical (enforced by
``tests/test_instance_table.py``).

**Round-relevance gating** (DESIGN.md §10).  When and whether those
re-plans run is gated on two tiers: the *exact* tier
(``round_relevance="exact"``, default) proves — via the scheduler's
:meth:`~repro.core.heuristics.base.Scheduler.would_replan` hook and
master-side queue/replica rules — that a round would reproduce the
current plan, and skips its whole mutation phase bit-identically
(``tests/test_replan_gating.py``); the *relaxed* tier
(``replan_policy``) changes the replan-trigger semantics themselves
(``sticky``, ``debounce:k``, ``relevant-up``) and is validated against
the paper's shape targets by ``experiments/replan_study.py`` instead of
by bit-identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .._validation import require_nonnegative_int, require_positive_int
from ..core.heuristics.base import (
    ProcessorView,
    ReplanProbe,
    RoundState,
    Scheduler,
    SchedulingContext,
)
from ..rng import DEFAULT_SCHEDULER_SEED, default_scheduler_rng
from ..types import ProcState
from ..workload.application import IterativeApplication
from .events import EventKind, EventLog, SimEvent
from .instance_table import InstanceTable
from .metrics import SimulationReport
from .network import BoundedMultiportNetwork, TransferRequest
from .platform import Platform, PlatformCalendar
from .relevance import ReplanPolicy, parse_replan_policy
from .worker import TaskInstance, WorkerRuntime, reset_instance

__all__ = [
    "DEFAULT_SCHEDULER_SEED",
    "ReplanPolicy",
    "SimulatorOptions",
    "MasterSimulator",
    "simulate",
]


@dataclass(frozen=True)
class SimulatorOptions:
    """Tunables for the simulator.

    Attributes:
        replication: enable task replication (Section 6.1; the paper's
            experiments always replicate — disable only for ablations).
        max_replicas: extra copies per task beyond the original.  The paper
            uses 2 ("we limit the number of additional replicas of a task
            to two").
        replan_every_slot: force a scheduling round every slot instead of
            on events only (ablation; slower, same results for the paper's
            heuristics up to Delay-shift ties).  Alias of
            ``replan_policy="every-slot"``; the two fields are kept in
            sync by ``__post_init__``.
        replan_policy: when the master re-plans (DESIGN.md §10;
            :mod:`repro.sim.relevance`).  ``"event"`` (default) is the
            paper's semantics — replan at every UP-set change, crash,
            commit, program completion and iteration boundary.
            ``"every-slot"`` is the ablation arm (alias of
            ``replan_every_slot``).  The *relaxed* policies change the
            trigger semantics and therefore the results — they are
            validated against the paper's shape targets by
            ``experiments/replan_study.py``, not by bit-identity:
            ``"sticky"`` ignores pure UP-set churn entirely,
            ``"debounce:k"`` rate-limits churn-triggered rounds to one
            per ``k`` slots (leading edge), and ``"relevant-up"`` ignores
            exits of empty processors.
        round_relevance: the exact elision tier (DESIGN.md §10).
            ``"exact"`` (default) asks the scheduler's ``would_replan``
            hook, before any queue is touched, whether the round would
            provably reproduce the current plan, and skips the round's
            mutation phase when it would — **bit-identical** results
            (same reports, event logs and network audit trails; enforced
            by ``tests/test_replan_gating.py``), with ``rounds_elided``
            counting the skips.  ``"off"`` always executes the round (the
            oracle arm for the elision benchmark).  Elision is active on
            the array scheduler API + array instance store (the default
            configuration); other configurations always execute rounds —
            which is invisible in the results, precisely because elision
            is exact.  In audit mode proofs are validated instead of
            used: the round runs and the post-state is asserted equal to
            the elision prediction.
        proactive: enable the paper's *proactive* heuristic class (Section
            6.1, described but not evaluated by the authors): during the
            end-of-iteration regime (UP processors ≥ remaining tasks), a
            pinned original stalled on a RECLAIMED worker is aggressively
            terminated — its partial data and computation are discarded,
            per the un-enrolment rule — and returned to the pool so an UP
            processor can take it over.
        audit: run per-slot invariant checks and network auditing.  Cheap
            enough for tests and examples; the harness disables it.  In
            span mode each boundary slot is checked and every quiet span
            additionally re-verifies grant stability and milestone bounds.
        max_slots: hard safety bound on simulated slots.
        step_mode: ``"span"`` (default) skips ahead between events in
            O(p) per span; ``"slot"`` is the original slot-at-a-time
            oracle loop.  Bit-identical results either way (module
            docstring; DESIGN.md §6).  ``replan_every_slot`` forces slot
            stepping, since it demands per-slot work.  An attached
            timeline recorder no longer does: quiet spans fill the
            recorder in batch (every quiet slot repeats the boundary
            activity row), at the cost of treating every availability
            transition as a span boundary — the recorder observes them.
        scheduler_api: ``"array"`` (default) maintains the structure-of-
            arrays :class:`~repro.core.heuristics.base.RoundState`
            incrementally across rounds and calls the scheduler's batch
            entry point (:meth:`Scheduler.place_array`); ``"legacy"``
            rebuilds the eager per-round ``ProcessorView`` snapshot and
            calls the scalar :meth:`Scheduler.place`.  Bit-identical
            placements either way (DESIGN.md §8, enforced by
            ``tests/test_scheduler_api_equivalence.py``); the legacy path
            is kept as the oracle for that suite and the benchmark
            baseline.
        instance_store: ``"array"`` (default) keeps the live instances in
            the structure-of-arrays
            :class:`~repro.sim.instance_table.InstanceTable` —
            vectorised body scans, O(1) triviality/saturation checks,
            free-list slot reuse (DESIGN.md §9); ``"legacy"`` keeps the
            original Python-list store.  Bit-identical reports, event
            logs and audit trails either way (enforced by
            ``tests/test_instance_table.py``); the legacy store is the
            oracle for that suite and the benchmark baseline.
        platform_index: ``"calendar"`` (default) tracks the platform's
            availability through the event-calendar engine
            (:class:`~repro.sim.platform.PlatformCalendar`, DESIGN.md
            §12): a min-heap of per-processor next-transition slots fed
            by the RLE run cursors, so each span boundary touches only
            the processors whose run actually ended (O(churn · log p))
            instead of re-reading all ``p`` states and re-deriving all
            ``p`` span minima.  ``"sweep"`` preserves the original O(p)
            per-boundary sweeps as the oracle.  Bit-identical reports,
            event logs and audit trails either way (enforced by
            ``tests/test_platform_index.py``).  The calendar engages on
            the array instance store without a timeline recorder or a
            cohort states provider; other configurations fall back to
            the sweep — which is invisible in the results, precisely
            because the two are bit-identical.
    """

    replication: bool = True
    max_replicas: int = 2
    replan_every_slot: bool = False
    proactive: bool = False
    audit: bool = False
    max_slots: int = 10_000_000
    step_mode: str = "span"
    scheduler_api: str = "array"
    instance_store: str = "array"
    replan_policy: str = "event"
    round_relevance: str = "exact"
    platform_index: str = "calendar"

    def __post_init__(self) -> None:
        require_nonnegative_int(self.max_replicas, "max_replicas")
        require_positive_int(self.max_slots, "max_slots")
        if self.step_mode not in ("span", "slot"):
            raise ValueError(
                f"step_mode must be 'span' or 'slot', got {self.step_mode!r}"
            )
        if self.round_relevance not in ("exact", "off"):
            raise ValueError(
                "round_relevance must be 'exact' or 'off', "
                f"got {self.round_relevance!r}"
            )
        policy = parse_replan_policy(self.replan_policy)  # validates
        # Keep the legacy ``replan_every_slot`` flag and the policy field
        # in sync: either spelling selects the every-slot ablation arm.
        if self.replan_every_slot:
            if policy.name == "event":
                object.__setattr__(self, "replan_policy", "every-slot")
            elif policy.name != "every-slot":
                raise ValueError(
                    "replan_every_slot=True conflicts with "
                    f"replan_policy={self.replan_policy!r}"
                )
        elif policy.name == "every-slot":
            object.__setattr__(self, "replan_every_slot", True)
        if self.scheduler_api not in ("array", "legacy"):
            raise ValueError(
                "scheduler_api must be 'array' or 'legacy', "
                f"got {self.scheduler_api!r}"
            )
        if self.instance_store not in ("array", "legacy"):
            raise ValueError(
                "instance_store must be 'array' or 'legacy', "
                f"got {self.instance_store!r}"
            )
        if self.platform_index not in ("calendar", "sweep"):
            raise ValueError(
                "platform_index must be 'calendar' or 'sweep', "
                f"got {self.platform_index!r}"
            )


class MasterSimulator:
    """One application execution on one platform under one heuristic.

    Args:
        platform: the volatile processors and the channel budget.
        app: the iterative application.
        scheduler: the heuristic deciding task placement.
        options: simulator tunables.
        rng: RNG stream for scheduler randomness (the random heuristic
            family); availability randomness lives in the platform's
            sources and is *not* drawn from this stream, so heuristic
            choice does not perturb availability (paired comparisons).
            When omitted, a generator seeded from
            :data:`DEFAULT_SCHEDULER_SEED` is used so that runs without
            an explicit stream are still reproducible — pass your own
            stream whenever two simulations must not share randomness.
        log: optional event log (a disabled one is created by default).
        timeline: optional per-slot activity recorder (see
            :class:`~repro.sim.timeline.TimelineRecorder`); costs one byte
            row per slot, so enable for debugging/examples only.
    """

    def __init__(
        self,
        platform: Platform,
        app: IterativeApplication,
        scheduler: Scheduler,
        *,
        options: Optional[SimulatorOptions] = None,
        rng: Optional[np.random.Generator] = None,
        log: Optional[EventLog] = None,
        timeline=None,
    ):
        self.platform = platform
        self.app = app
        self.scheduler = scheduler
        self.options = options or SimulatorOptions()
        if rng is None:
            # Deterministic fallback: an unseeded default_rng() would make
            # randomised heuristics unreproducible run-to-run.
            rng = default_scheduler_rng()
        self.rng = rng
        self.log = log if log is not None else EventLog(enabled=False)
        self.timeline = timeline
        self.network = BoundedMultiportNetwork(
            platform.ncom, audit=self.options.audit
        )

        self.workers: List[WorkerRuntime] = [
            WorkerRuntime(index=proc.index, speed_w=proc.speed_w, t_prog=app.t_prog)
            for proc in platform
        ]
        self.report = SimulationReport(
            target_iterations=app.iterations, heuristic_name=scheduler.name
        )

        # Iteration state.  The live-instance store is either the
        # structure-of-arrays InstanceTable (DESIGN.md §9, the default) or
        # the legacy Python list kept as the bit-identical oracle; exactly
        # one of ``_tbl``/``_instances`` is in use.
        self.iteration = 0
        self._tbl: Optional[InstanceTable] = None
        if self.options.instance_store == "array":
            self._tbl = InstanceTable(
                app.tasks_per_iteration,
                len(self.workers),
                1 + self.options.max_replicas,
            )
            #: Mirrors ``prog_received > 0`` per worker (crash-sweep filter).
            self._prog_started = [False] * len(self.workers)
            #: Per-worker reuse cache for frozen TransferRequest objects,
            #: keyed by (kind, started, is_replica) — see _gather_requests.
            self._request_cache: List[dict] = [{} for _ in self.workers]
        self._instances: List[TaskInstance] = []  # legacy store only
        self._committed: set[int] = set()  # committed task_ids, this iteration
        self._start_iteration(0)

        self._prev_states: Optional[np.ndarray] = None
        # Array-store body fast path: the state vector converted once per
        # boundary to a plain Python list (``states.tolist()`` is ~0.2µs;
        # after that, int loops beat per-element numpy reads ~2× at the
        # paper's p = 20 — DESIGN.md §9).  ``None`` on the legacy store.
        self._states_list: Optional[list] = None
        self._prev_states_list: Optional[list] = None
        self._avail = [proc.availability for proc in platform]
        self._need_replan = True

        # Round-relevance gating (DESIGN.md §10).  The parsed replan
        # policy decides which events set ``_need_replan``; the exact
        # elision tier is active on the default array/array configuration
        # only (it reads the InstanceTable aggregates and the batch
        # scheduler's placement proof) — other configurations simply
        # execute every round, which is invisible in the results.
        self._policy = parse_replan_policy(self.options.replan_policy)
        self._policy_churn_always = self._policy.churn_always
        self._relevance = (
            self.options.round_relevance == "exact"
            and self.options.scheduler_api == "array"
            and self._tbl is not None
            and not self.options.proactive
            # Schedulers that keep the conservative would_replan default
            # can never prove anything: skip even the probe construction.
            and type(scheduler).would_replan is not Scheduler.would_replan
        )
        #: Rounds skipped by the exact elision tier (diagnostic, not part
        #: of the report — elided rounds still count in
        #: ``report.scheduler_rounds``, since the oracle executes them).
        self.rounds_elided = 0
        #: Slot of the last *executed* (non-trivial) scheduling round;
        #: anchors the ``debounce:k`` cooldown window.  Trivial rounds do
        #: not move it, so the debounce clock is invisible at glided
        #: slots (span/slot bit-identity).
        self._last_round_slot = -(1 << 60)
        #: Audit-mode elision validation: the predicted post-round queue
        #: contents recorded when a proof fires under audit (the round
        #: then runs for real and the prediction is asserted).
        self._elision_prediction = None

        #: Fully simulated slots (diagnostic, not part of the report): in
        #: slot mode this equals ``report.slots_simulated``; in span mode
        #: it counts boundaries, so ``slots_simulated / steps_executed``
        #: is the run's mean span length.
        self.steps_executed = 0

        # Span-stepping state (DESIGN.md §6): the grants of the last fully
        # simulated slot (reused verbatim across the quiet span), whether
        # that slot changed the pipeline shape (a data transfer finishing
        # re-opens the allocation problem), and per-processor caches of
        # the next availability transition.
        self._pipeline_changed = False
        self._span_refined = False
        self._grants: List[tuple] = []
        self._grant_index: Dict[int, tuple] = {}
        self._grant_counts = (0, 0, 0)
        self._next_change_cache: List[Optional[int]] = [None] * len(self.workers)
        self._next_up_cache: List[Optional[int]] = [None] * len(self.workers)
        self._next_down_cache: List[Optional[int]] = [None] * len(self.workers)

        # Large-p platform engine (DESIGN.md §12).  The event calendar is
        # built lazily at the first boundary of a run once the budget is
        # known (``_cal_last``); it stays ``None`` on the sweep oracle and
        # on configurations the calendar does not cover (legacy store,
        # timeline recorder, cohort states provider).
        self._cal: Optional[PlatformCalendar] = None
        self._cal_last: Optional[int] = None
        #: Net state changes of the current boundary, ``(q, old, new)``
        #: ascending — ``None`` when this step must take the sweep path
        #: (no calendar, or the calendar's first boundary).
        self._cal_records = None
        #: Workers with a partial or resident program (mirrors
        #: ``prog_received > 0``): together with the queue hosts these are
        #: the only workers a calendar-mode span search must visit.
        self._prog_holders: set = set()

        # Sparse companion of the RoundState dirty flags (layer 2 of the
        # large-p engine): the indices flagged since the last refresh, so
        # `_refresh_round_state` walks O(dirty) candidates instead of all
        # p flags.  Guarded appends (only on a 0 -> 1 edge) keep it
        # duplicate-free up to `_freshen_worker_columns` clears.
        self._rs_dirty_hint: List[int] = list(range(len(self.workers)))

        #: Operation-count instrumentation (diagnostics; ``op_counts``
        #: bundles them).  Touched workers: per-boundary state reads —
        #: p on the sweep path, heap pops on the calendar path.  Span
        #: scans: workers visited by the quiet-span search.  Refreshes:
        #: RoundState columns recomputed at executed rounds.
        self.op_boundaries = 0
        self.op_boundary_workers_touched = 0
        self.op_calendar_pops = 0
        self.op_span_scan_workers = 0
        self.op_round_refreshed = 0

        # Array-backed scheduler state (DESIGN.md §8): the structure-of-
        # arrays RoundState the schedulers consume, maintained
        # *incrementally* — every mutation that can move a per-processor
        # column (pin/unpin, transfer progress, program completion, crash,
        # commit, quiet-span fast-forward) flags the processor in
        # `_rs_dirty`, and `_refresh_round_state` recomputes only the
        # flagged columns at the next scheduling round.
        self._rs = RoundState(
            speed_w=[proc.speed_w for proc in platform],
            beliefs=[proc.belief for proc in platform],
            t_prog=app.t_prog,
            t_data=app.t_data,
            ncom=platform.ncom,
            rng=self.rng,
            pipeline_provider=self._pinned_pipeline_of,
        )
        self._rs.freshen = self._freshen_worker_columns
        # The master refreshes columns only through _refresh_round_state /
        # _freshen_worker_columns, both of which stamp — so schedulers may
        # keep score rows alive across rounds (DESIGN.md §11).
        self._rs.stamped = True
        #: Local alias of the RoundState's dirty flags (same bytearray):
        #: the flags live on the state object (DESIGN.md §8), the master
        #: writes them at every mutating touch point.
        self._rs_dirty = self._rs.dirty

        #: Batch-engine seam (DESIGN.md §11): when set, _step obtains the
        #: per-boundary state list from this callable instead of reading
        #: the availability sources directly — cohorts of one trial share
        #: a memoised ``slot -> list`` so the p state_at calls are paid
        #: once per boundary per *trial* rather than per run.  The
        #: callable must return exactly ``[source.state_at(slot) for
        #: source in self._avail]`` (the lists may be shared: the master
        #: never mutates them).  ``None`` (the default, and the per-run
        #: oracle) keeps the direct reads.
        self.states_provider: Optional[Callable[[int], list]] = None
        # Resumable-run state (begin_run/advance_until/finish_run).
        self._resume_budget: Optional[int] = None
        self._resume_slot = 0
        self._run_over = False
        self._resume_span = False
        #: Stacked-round cohort seam (DESIGN.md §14): when set, a step
        #: whose scheduling round survives the triviality check *pauses*
        #: after the round's read-only prepare phase instead of executing
        #: it — :meth:`advance_until` returns with :attr:`round_pending`
        #: True, the cohort driver scores the whole cohort's rounds in
        #: one stacked pass, and :meth:`resume_round` executes the round
        #: and finishes the interrupted step.  Off (the default) the
        #: round runs inline exactly as before.
        self.stack_rounds = False
        self._round_pending: Optional[tuple] = None

    @property
    def round_state(self) -> RoundState:
        """The incrementally maintained scheduler :class:`RoundState`.

        Exposed for cohort drivers (the batch engine shares belief-column
        caches across same-scenario runs through it); treat it as
        read-only — the master owns every column.
        """
        return self._rs

    # ------------------------------------------------------------------ #
    # Iteration lifecycle.                                                 #
    # ------------------------------------------------------------------ #
    def _start_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self._committed = set()
        originals = [
            TaskInstance(
                iteration=iteration,
                task_id=task_id,
                replica_id=0,
                data_needed=self.app.t_data,
            )
            for task_id in range(self.app.tasks_per_iteration)
        ]
        if self._tbl is not None:
            self._tbl.reset()
            for inst in originals:
                self._tbl.add(inst)
        else:
            self._instances = originals
            for position, inst in enumerate(originals):
                inst.row = position
        self._need_replan = True

    def _live_instances_of(self, task_id: int) -> List[TaskInstance]:
        return [inst for inst in self._instances if inst.task_id == task_id]

    def _list_remove(self, inst: TaskInstance) -> None:
        """Legacy-store removal: O(1) swap-remove by the instance's
        tracked list position (order is never observable — the commit and
        proactive paths iterate in canonical creation/task order)."""
        instances = self._instances
        position = inst.row
        last = instances.pop()
        if last is not inst:
            instances[position] = last
            last.row = position
        inst.row = -1

    def _uncommitted_task_ids(self) -> List[int]:
        return [
            task_id
            for task_id in range(self.app.tasks_per_iteration)
            if task_id not in self._committed
        ]

    @property
    def instance_ops(self) -> int:
        """Structural instance-store mutations so far (benchmark metric;
        0 on the legacy store, which does not count them)."""
        return self._tbl.ops if self._tbl is not None else 0

    @property
    def op_counts(self) -> Dict[str, int]:
        """Operation-count instrumentation (DESIGN.md §12).

        ``boundaries``: fully simulated slots; ``boundary_workers_
        touched``: per-boundary state reads summed over the run (p per
        boundary on the sweep path, heap pops on the calendar path);
        ``calendar_pops``: total heap pops (0 on the sweep path);
        ``span_scan_workers``: workers visited by the quiet-span search;
        ``round_refreshed``: RoundState columns recomputed at executed
        rounds (the sparse dirty-hint walk); ``rows_scored`` /
        ``rows_reused``: candidate-set scoring counters from the
        scheduler's persistent score-row store (score evaluations run
        vs. stamped rows reused verbatim — 0/0 for schedulers without
        the store).  The O(churn) claims of the large-p engine are
        asserted on these in ``tests/test_platform_index.py``, not just
        benchmarked.
        """
        return {
            "boundaries": self.op_boundaries,
            "boundary_workers_touched": self.op_boundary_workers_touched,
            "calendar_pops": self.op_calendar_pops,
            "span_scan_workers": self.op_span_scan_workers,
            "round_refreshed": self.op_round_refreshed,
            "rows_scored": getattr(self.scheduler, "rows_scored", 0),
            "rows_reused": getattr(self.scheduler, "rows_reused", 0),
        }

    def _calendar_active(self) -> bool:
        """Whether this run uses the event-calendar platform index.

        Requires the array instance store (the body fast paths the
        calendar plugs into), no timeline recorder (a recorder observes
        every slot's full state vector), no cohort states provider (the
        cohort memo *is* the state gather) and a known slot budget
        (``_cal_last`` — heap sentinels are budget-relative).
        """
        return (
            self.options.platform_index == "calendar"
            and self._tbl is not None
            and self.timeline is None
            and self.states_provider is None
            and self._cal_last is not None
        )

    def _queue_hosts(self) -> set:
        """Workers currently holding at least one queued instance.

        Derived from the instance table's live rows — O(live instances),
        independent of p — for the calendar path's busy-worker loops.
        Invariant (audited): a worker appears here iff its queue is
        non-empty, since every live instance with ``worker is not None``
        sits in exactly that worker's queue and every detach
        (``reset_instance``/``crash``/``remove_instance``) clears the
        instance's ``worker`` field in the same step.
        """
        tbl = self._tbl
        objects = tbl.objects
        hosts = set()
        for row in tbl.live_rows().tolist():
            worker = objects[row].worker
            if worker is not None:
                hosts.add(worker)
        return hosts

    # ------------------------------------------------------------------ #
    # Crash / state handling.                                              #
    # ------------------------------------------------------------------ #
    def _handle_states(self, slot: int, states: np.ndarray) -> None:
        prev = self._prev_states
        records = self._cal_records
        if records is not None:
            # Calendar path: the records ARE the boundary snapshot diff
            # (net per-processor changes, ascending) — same re-plan
            # trigger, same events, no O(p) pass.  ``prev`` is never None
            # here: the calendar's first boundary takes the sweep path.
            slist = self._states_list
            if records:
                up = int(ProcState.UP)
                # Dirty workers re-entering the UP set rejoin the sparse
                # refresh hint here (their hint entry was dropped while
                # they were out of the scoring candidate set).
                dirty = self._rs_dirty
                hint = self._rs_dirty_hint
                for q, _old, new in records:
                    if new == up and dirty[q]:
                        hint.append(q)
                churned = [
                    q for q, old, new in records if (new == up) != (old == up)
                ]
                if churned:
                    if self._policy_churn_always:
                        self._need_replan = True
                    else:
                        self._churn_replan(slot, churned, slist)
                if self.log.enabled:
                    for q, old, new in records:
                        self.log.emit(
                            SimEvent(
                                slot,
                                EventKind.PROC_STATE_CHANGE,
                                worker=q,
                                detail=(
                                    f"{ProcState(old).code}"
                                    f"->{ProcState(new).code}"
                                ),
                            )
                        )
            # Only a net transition *into* DOWN can crash: DOWN workers
            # cannot gain work (placements refuse DOWN, transfers need
            # UP), and a busy worker's DOWN entry always breaks the span
            # (kind 0/2 in the span search), so its record is fresh.
            down = int(ProcState.DOWN)
            prog_started = self._prog_started
            workers = self.workers
            candidates = [
                q
                for q, _old, new in records
                if new == down and (prog_started[q] or workers[q].queue)
            ]
            self._crash(slot, candidates)
            return
        if prev is not None and self._tbl is not None:
            # Fused change detection (array store): one pass over the
            # plain-list state vectors feeds the re-plan trigger and the
            # log loop — same trigger, same events (ascending worker
            # order) as the legacy double ``array_equal``.
            slist = self._states_list
            prev_list = self._prev_states_list
            changed = [
                q for q in range(len(slist)) if slist[q] != prev_list[q]
            ]
            if changed:
                up = int(ProcState.UP)
                # Dirty workers re-entering the UP set rejoin the sparse
                # refresh hint (entries dropped while non-UP).
                dirty = self._rs_dirty
                hint = self._rs_dirty_hint
                for q in changed:
                    if slist[q] == up and dirty[q]:
                        hint.append(q)
                # Re-plan only when the UP set changed: transitions among
                # RECLAIMED/DOWN of unused processors alter neither the
                # candidate set nor any Delay estimate.
                if any(
                    (slist[q] == up) != (prev_list[q] == up) for q in changed
                ):
                    if self._policy_churn_always:
                        self._need_replan = True
                    else:
                        self._churn_replan(
                            slot,
                            [
                                q
                                for q in changed
                                if (slist[q] == up) != (prev_list[q] == up)
                            ],
                            slist,
                        )
                if self.log.enabled:
                    for q in changed:
                        self.log.emit(
                            SimEvent(
                                slot,
                                EventKind.PROC_STATE_CHANGE,
                                worker=q,
                                detail=(
                                    f"{ProcState(prev_list[q]).code}"
                                    f"->{ProcState(slist[q]).code}"
                                ),
                            )
                        )
        elif prev is not None and not np.array_equal(states, prev):
            up_state = int(ProcState.UP)
            dirty = self._rs_dirty
            hint = self._rs_dirty_hint
            for q in np.nonzero(states != prev)[0].tolist():
                if states[q] == up_state and dirty[q]:
                    hint.append(q)
            churn = (states == int(ProcState.UP)) != (prev == int(ProcState.UP))
            if churn.any():
                if self._policy_churn_always:
                    self._need_replan = True
                else:
                    self._churn_replan(
                        slot, np.nonzero(churn)[0].tolist(), states
                    )
            if self.log.enabled:
                for q in range(len(states)):
                    if states[q] != prev[q]:
                        self.log.emit(
                            SimEvent(
                                slot,
                                EventKind.PROC_STATE_CHANGE,
                                worker=q,
                                detail=(
                                    f"{ProcState(int(prev[q])).code}"
                                    f"->{ProcState(int(states[q])).code}"
                                ),
                            )
                        )
        tbl = self._tbl
        down = int(ProcState.DOWN)
        if tbl is not None:
            # Only workers carrying progress can crash; the filters mirror
            # ``prog_received > 0`` / non-empty queues exactly, so this is
            # the same sweep the legacy loop does, minus the idle workers.
            slist = self._states_list
            prog_started = self._prog_started
            workers = self.workers
            candidates = [
                q
                for q in range(len(slist))
                if slist[q] == down and (prog_started[q] or workers[q].queue)
            ]
        else:
            candidates = [
                q
                for q in range(len(self.workers))
                if states[q] == down
                and (self.workers[q].prog_received or self.workers[q].queue)
            ]
        self._crash(slot, candidates)

    def _crash(self, slot: int, candidates: List[int]) -> None:
        """Crash each candidate worker (DOWN while carrying progress)."""
        tbl = self._tbl
        dirty = self._rs_dirty
        hint = self._rs_dirty_hint
        for q in candidates:
            worker = self.workers[q]
            # Account wasted effort before wiping progress.
            self.report.comm_slots_wasted += worker.prog_received
            if not dirty[q]:  # program + pipeline wiped
                dirty[q] = 1
                hint.append(q)
            lost = worker.crash()
            if tbl is not None:
                tbl.on_crash(q)
                self._prog_started[q] = False
                self._prog_holders.discard(q)
            for inst in lost:
                self.report.comm_slots_wasted += inst.data_received
                self.report.compute_slots_wasted += inst.compute_done
                self.report.instances_lost_to_crash += 1
                if inst.is_replica:
                    self._destroy_instance(inst)
                elif tbl is not None:
                    reset_instance(inst)  # original returns to the pool
                    tbl.release(inst)
                else:
                    reset_instance(inst)
                self.log.emit(
                    SimEvent(
                        slot,
                        EventKind.INSTANCE_LOST,
                        worker=worker.index,
                        iteration=inst.iteration,
                        task_id=inst.task_id,
                        replica_id=inst.replica_id,
                        detail="crash",
                    )
                )
            self._need_replan = True

    def _destroy_instance(self, inst: TaskInstance) -> None:
        if self._tbl is not None:
            # Before the queue detach below: destroy reads ``inst.worker``
            # for the computing-row rollback.
            self._tbl.destroy(inst)
        if inst.worker is not None:
            # Destroying a pinned instance moves the worker's delay and
            # pinned count; marking unconditionally is cheap and idempotent.
            if not self._rs_dirty[inst.worker]:
                self._rs_dirty[inst.worker] = 1
                self._rs_dirty_hint.append(inst.worker)
            self.workers[inst.worker].remove_instance(inst)
        reset_instance(inst)
        if self._tbl is None:
            self._list_remove(inst)

    def _churn_replan(self, slot: int, churned, states) -> None:
        """Apply the relaxed replan policy to an UP-set change.

        Called only for non-default policies (the ``event``/``every-slot``
        fast path sets ``_need_replan`` inline).  ``churned`` lists the
        processors whose UP-membership flipped this slot; ``states`` is
        the current state vector (plain list on the array store, ndarray
        on the legacy store).
        """
        policy = self._policy
        if policy.ignores_churn:
            return  # sticky: pure churn never replans
        if policy.ignores_empty_exits:
            # relevant-up: entries always replan; exits only when the
            # departing processor carries work (queue or partial program).
            up = int(ProcState.UP)
            workers = self.workers
            for q in churned:
                if states[q] == up:  # an entry: new candidate, replan
                    self._need_replan = True
                    return
                worker = workers[q]
                if worker.queue or worker.prog_received > 0:
                    self._need_replan = True
                    return
            return  # only empty processors left the UP set: ignore
        # debounce:k (leading edge): at most one churn-triggered round per
        # k slots, anchored at the last executed round; suppressed churn
        # is dropped, not deferred.
        if slot >= self._last_round_slot + policy.debounce:
            self._need_replan = True

    # ------------------------------------------------------------------ #
    # Scheduling round.                                                    #
    # ------------------------------------------------------------------ #
    _STATE_TABLE = (ProcState.UP, ProcState.RECLAIMED, ProcState.DOWN)

    def _pinned_pipeline_of(self, q: int) -> tuple:
        """The worker's pinned pipeline, for lazy ``ProcessorView`` shims."""
        return tuple(
            (inst.data_remaining, inst.compute_remaining, inst.computing)
            for inst in self.workers[q].pinned_instances()
        )

    def _refresh_round_state(
        self, slot: int, states: np.ndarray, remaining: int
    ) -> RoundState:
        """Bring the incrementally maintained RoundState up to this round.

        O(changed processors): the state column is the (already computed)
        state vector, and the worker-derived columns — ``delay``,
        ``pinned_count``, ``has_program``, ``prog_remaining`` — are
        recomputed only for processors flagged dirty since the last round.
        The per-worker recompute is the same ``delay_estimate`` the eager
        legacy snapshot calls, so refreshed columns are bit-identical to a
        from-scratch rebuild (cross-checked in audit mode).
        """
        rs = self._rs
        rs.slot = slot
        rs.state = states
        dirty = self._rs_dirty
        t_data = self.app.t_data
        workers = self.workers
        up = int(ProcState.UP)
        eager_all = self.options.audit  # the audit cross-check reads all p
        # Plain-list state reads where the array store maintains the list.
        slist = self._states_list if self._tbl is not None else states
        changed: List[int] = []
        delays: List[int] = []
        pinned_counts: List[int] = []
        prog_remainings: List[int] = []
        if eager_all:
            # Audit mode refreshes every dirty worker (the cross-check
            # reads all p columns) and verifies the sparse hint list
            # covers every set flag of a *scoring candidate* (dirty non-UP
            # workers legitimately leave the hint; they rejoin on their
            # next observed transition to UP) before resetting it.
            hint_set = set(self._rs_dirty_hint)
            assert all(
                q in hint_set
                for q in range(len(dirty))
                if dirty[q] and slist[q] == up
            ), "dirty UP flag set outside the sparse hint list"
            candidates = range(len(dirty))
        else:
            # Sparse walk (DESIGN.md §12): only the indices flagged since
            # the last refresh — O(dirty), never O(p).  Flags cleared by
            # the freshen shim skip.  Non-UP workers stay flagged but are
            # *dropped* from the hint (their columns are only readable
            # through the RoundState.freshen shim while non-UP);
            # `_handle_states` re-appends them the moment a boundary
            # observes their transition back to UP, so the walk stays
            # O(dirty candidates) instead of carrying every dirty non-UP
            # worker round after round.
            candidates = self._rs_dirty_hint
        for q in candidates:
            if not dirty[q]:
                continue
            if not eager_all and slist[q] != up:
                continue
            worker = workers[q]
            delay, pinned_count = worker.delay_and_pinned(t_data)
            changed.append(q)
            delays.append(delay)
            pinned_counts.append(pinned_count)
            prog_remaining = worker.t_prog - worker.prog_received
            prog_remainings.append(prog_remaining if prog_remaining > 0 else 0)
            dirty[q] = 0
        # In-place clear: mutation sites may hold a live alias of the
        # hint list; rebinding would strand their appends on a dead list.
        del self._rs_dirty_hint[:]
        self.op_round_refreshed += len(changed)
        if changed:
            # One vectorised scatter per column beats per-element numpy
            # assignments by an order of magnitude at p ≈ 20.
            index = np.array(changed, dtype=np.intp)
            rs.delay[index] = delays
            rs.pinned_count[index] = pinned_counts
            prog = np.array(prog_remainings, dtype=np.int64)
            rs.prog_remaining[index] = prog
            rs.has_program[index] = prog == 0
            rs.stamp_changed(changed)
        rs.remaining_tasks = remaining
        rs.invalidate()
        if self.options.audit:
            self._audit_round_state()
        return rs

    def _freshen_worker_columns(self, q: int) -> None:
        """RoundState.freshen hook: bring one worker's columns current.

        Called when the compatibility shim materialises a
        :class:`ProcessorView` for a processor the incremental refresh
        skipped (non-UP workers are outside every scoring path).
        """
        dirty = self._rs_dirty
        if not dirty[q]:
            return
        rs = self._rs
        worker = self.workers[q]
        delay, pinned_count = worker.delay_and_pinned(self.app.t_data)
        rs.delay[q] = delay
        rs.pinned_count[q] = pinned_count
        prog_remaining = worker.prog_remaining
        rs.prog_remaining[q] = prog_remaining
        rs.has_program[q] = prog_remaining == 0
        rs.stamp_changed((q,))
        dirty[q] = 0

    def _audit_round_state(self) -> None:
        """Audit-mode cross-check: incremental columns == full rebuild."""
        rs = self._rs
        t_data = self.app.t_data
        for q, worker in enumerate(self.workers):
            pinned = worker.pinned_instances()
            assert rs.delay[q] == worker.delay_estimate(t_data, pinned), (
                f"worker {q}: incremental delay {int(rs.delay[q])} != "
                f"rebuilt {worker.delay_estimate(t_data, pinned)}"
            )
            assert rs.pinned_count[q] == len(pinned), (
                f"worker {q}: incremental pinned_count drifted"
            )
            assert bool(rs.has_program[q]) == worker.has_program, (
                f"worker {q}: incremental has_program drifted"
            )
            assert rs.prog_remaining[q] == worker.prog_remaining, (
                f"worker {q}: incremental prog_remaining drifted"
            )

    def _build_context(self, slot: int, states: np.ndarray) -> SchedulingContext:
        views = []
        state_table = self._STATE_TABLE
        for proc, worker in zip(self.platform, self.workers):
            pinned = worker.pinned_instances()
            views.append(
                ProcessorView(
                    index=proc.index,
                    speed_w=proc.speed_w,
                    state=state_table[states[proc.index]],
                    belief=proc.belief,
                    has_program=worker.has_program,
                    delay=worker.delay_estimate(self.app.t_data, pinned),
                    pinned_count=len(pinned),
                    prog_remaining=worker.prog_remaining,
                    pinned_pipeline=tuple(
                        (inst.data_remaining, inst.compute_remaining, inst.computing)
                        for inst in pinned
                    ),
                )
            )
        tbl = self._tbl
        if tbl is not None:
            remaining = int(
                np.count_nonzero(tbl.alive & ~tbl.pinned & (tbl.replica_id == 0))
            )
        else:
            remaining = sum(
                1
                for inst in self._instances
                if not inst.is_replica and not inst.pinned
            )
        return SchedulingContext(
            slot=slot,
            t_prog=self.app.t_prog,
            t_data=self.app.t_data,
            ncom=self.platform.ncom,
            processors=views,
            remaining_tasks=remaining,
            rng=self.rng,
        )

    def _round_is_trivial(self, states: np.ndarray) -> bool:
        """True when a scheduling round could not change anything.

        A round matters only if there is an unpinned original to (re)place,
        an unpinned replica to reconsider, or the replication trigger can
        fire.  Checking this first keeps event-dense runs cheap.  With the
        array store the unpinned and saturation checks read incrementally
        maintained counters (O(1)) instead of scanning the instances.
        """
        tbl = self._tbl
        if tbl is not None:
            if tbl.n_unpinned:
                return False  # something to place or reconsider
        else:
            for inst in self._instances:
                if not inst.pinned:
                    return False
        if self.options.proactive and self._proactive_candidates(states):
            return False
        if not self.options.replication or self.options.max_replicas == 0:
            return True
        up_state = int(ProcState.UP)
        cal = self._cal
        if cal is not None:
            # Calendar path: the UP count is maintained incrementally and
            # an idle UP worker exists iff the UP set is larger than the
            # UP slice of the queue-host set — O(live), never O(p).
            n_uncommitted = tbl.n_uncommitted
            if cal.up_count <= n_uncommitted:
                return True  # replication trigger cannot fire
            slist = self._states_list
            busy_up = sum(
                1 for q in self._queue_hosts() if slist[q] == up_state
            )
            idle = cal.up_count > busy_up
        elif tbl is not None:
            n_uncommitted = tbl.n_uncommitted
            slist = self._states_list
            if slist.count(up_state) <= n_uncommitted:
                return True  # replication trigger cannot fire
            workers = self.workers
            idle = any(
                slist[q] == up_state and not workers[q].queue
                for q in range(len(slist))
            )
        else:
            n_uncommitted = self.app.tasks_per_iteration - len(self._committed)
            up = int(np.count_nonzero(states == up_state))
            if up <= n_uncommitted:
                return True  # replication trigger cannot fire
            idle = any(
                not self.workers[q].queue
                for q in range(len(self.workers))
                if states[q] == up_state
            )
        if not idle:
            return True
        return self._replication_saturated()

    def _replication_saturated(self) -> bool:
        """True when every uncommitted task already carries the maximum
        ``1 + max_replicas`` live instances, so the replication trigger
        has no capacity left regardless of the UP set.  Shared by the
        per-round triviality check and the span glide condition
        (:meth:`_round_glidable`), which must agree on it.  O(1) on the
        array store (the incrementally maintained replication deficit)."""
        if self._tbl is not None:
            return self._tbl.replication_saturated
        max_instances = 1 + self.options.max_replicas
        counts: Dict[int, int] = {}
        for inst in self._instances:
            counts[inst.task_id] = counts.get(inst.task_id, 0) + 1
        for task_id in range(self.app.tasks_per_iteration):
            if (
                task_id not in self._committed
                and counts.get(task_id, 0) < max_instances
            ):
                return False
        return True

    def _proactive_candidates(self, states: np.ndarray) -> List[TaskInstance]:
        """Pinned originals worth terminating under the proactive policy.

        Conditions (conservative, to avoid thrashing): the end-of-iteration
        regime holds (at least as many UP processors as uncommitted tasks),
        the instance's worker is RECLAIMED, and the instance has not
        accumulated the majority of its computation (killing a nearly-done
        task is rarely worth the resent data).  Candidates are returned in
        ascending task order (canonical on both stores: originals are
        unique per task).
        """
        uncommitted = self.app.tasks_per_iteration - len(self._committed)
        tbl = self._tbl
        if self._cal is not None:
            up = self._cal.up_count
        elif tbl is not None:
            up = self._states_list.count(int(ProcState.UP))
        else:
            up = int(np.count_nonzero(states == int(ProcState.UP)))
        if up < uncommitted or up == 0:
            return []
        candidates = []
        reclaimed = int(ProcState.RECLAIMED)
        if tbl is not None:
            slist = self._states_list
            for task_id in tbl.uncommitted_tasks().tolist():
                row = int(tbl.original_row[task_id])
                if row < 0 or not tbl.pinned[row]:
                    continue
                inst = tbl.objects[row]
                host = inst.worker
                if host is None or slist[host] != reclaimed:
                    continue
                if (
                    inst.compute_needed
                    and inst.compute_done * 2 > inst.compute_needed
                ):
                    continue
                candidates.append(inst)
            return candidates
        for inst in self._instances:
            if inst.is_replica or not inst.pinned or inst.worker is None:
                continue
            if states[inst.worker] != reclaimed:
                continue
            if inst.compute_needed and inst.compute_done * 2 > inst.compute_needed:
                continue
            candidates.append(inst)
        candidates.sort(key=lambda inst: inst.task_id)
        return candidates

    def _proactive_round(self, slot: int, states: np.ndarray) -> None:
        for inst in self._proactive_candidates(states):
            self.report.comm_slots_wasted += inst.data_received
            self.report.compute_slots_wasted += inst.compute_done
            if not self._rs_dirty[inst.worker]:  # pinned work discarded
                self._rs_dirty[inst.worker] = 1
                self._rs_dirty_hint.append(inst.worker)
            if self._tbl is not None:
                self._tbl.release(inst)  # reads inst.worker: before detach
            self.workers[inst.worker].remove_instance(inst)
            reset_instance(inst)  # back to the pool, progress discarded
            self.log.emit(
                SimEvent(
                    slot,
                    EventKind.INSTANCE_LOST,
                    worker=None,
                    iteration=inst.iteration,
                    task_id=inst.task_id,
                    replica_id=inst.replica_id,
                    detail="proactive-termination",
                )
            )

    def _scheduling_round(self, slot: int, states: np.ndarray) -> None:
        pend = self._round_prepare(slot, states)
        if pend is not None:
            self._round_execute(slot, states, pend)

    def _round_prepare(self, slot: int, states: np.ndarray) -> Optional[tuple]:
        """The read-only first half of a scheduling round.

        Runs the triviality check, the proactive pre-pass and the round
        counters, collects the unpinned instances and (on the array API)
        refreshes the :class:`RoundState` — everything a round does
        *before* any scoring.  Returns ``None`` when the round was
        trivial (nothing further to do), else the pending-round tuple
        ``(originals, replicas, dirty_mask, rs)`` that
        :meth:`_round_execute` consumes.  The split is the stacked-round
        pause point (DESIGN.md §14): between prepare and execute the
        simulation is untouched, so a cohort driver may score many runs'
        rounds in one stacked pass and resume each bit-identically.
        """
        if self._round_is_trivial(states):
            return None
        if self.options.proactive:
            self._proactive_round(slot, states)
        self.report.scheduler_rounds += 1
        self._last_round_slot = slot

        # Collect — read-only — the unpinned instances: the originals to
        # (re)place, in ascending task order, and the replicas the round
        # would drop and possibly recreate.  Nothing is mutated yet: the
        # relevance gate below may prove the whole round a no-op and skip
        # the mutation phase entirely (DESIGN.md §10).
        tbl = self._tbl
        originals: List[TaskInstance] = []
        replicas: List[TaskInstance] = []
        if tbl is not None:
            objects = tbl.objects
            for row in tbl.unpinned_rows():
                inst = objects[row]
                (replicas if inst.replica_id else originals).append(inst)
        else:
            for inst in self._instances:
                if not inst.pinned:
                    (replicas if inst.replica_id else originals).append(inst)
        originals.sort(key=lambda inst: inst.task_id)

        if self.options.scheduler_api == "array":
            # With replicas dropped, the unpinned originals are exactly the
            # context's ``m - m'`` remaining tasks.
            dirty_mask = bytes(self._rs_dirty) if self._relevance else b""
            rs = self._refresh_round_state(slot, states, len(originals))
        else:
            dirty_mask = b""
            rs = None
        return (originals, replicas, dirty_mask, rs)

    def _round_execute(self, slot: int, states: np.ndarray, pend: tuple) -> None:
        """Execute a prepared scheduling round (scoring + mutation)."""
        originals, replicas, dirty_mask, rs = pend
        tbl = self._tbl
        placements: Optional[List[Optional[int]]] = None
        decisions: Optional[List[tuple]] = None
        if rs is not None:
            scheduler = self.scheduler

            def place_batch(n: int, allowed=None) -> List[Optional[int]]:
                return scheduler.place_array(rs, n, allowed)

            if self._relevance:
                placements, decisions, elided = self._relevance_gate(
                    rs, dirty_mask, originals, replicas
                )
                if elided:
                    self.rounds_elided += 1
                    return
        else:
            ctx = self._build_context(slot, states)
            scheduler = self.scheduler

            def place_batch(n: int, allowed=None) -> List[Optional[int]]:
                return scheduler.place(ctx, n, allowed)

        if placements is None:
            placements = place_batch(len(originals))

        # Mutation phase.  Drop the unpinned replicas (the replication
        # step below recreates what is still useful — they carry no
        # progress by definition), purge each touched queue once, and
        # apply the placements.  None of this moves a RoundState column:
        # unpinned instances have zero progress, so they appear in
        # neither Delay nor pinned_count.  On the array store the dropped
        # rows go back to the free list instead of forcing a rebuild.
        touched_hosts: set = set()
        for inst in replicas:
            if inst.worker is not None:
                touched_hosts.add(inst.worker)
                inst.worker = None
            reset_instance(inst)
            if tbl is not None:
                tbl.destroy(inst)
            else:
                self._list_remove(inst)
        for inst in originals:
            if inst.worker is not None:
                touched_hosts.add(inst.worker)
                inst.worker = None
        for host in touched_hosts:
            worker = self.workers[host]
            worker.queue = [other for other in worker.queue if other.pinned]

        for inst, choice in zip(originals, placements):
            self._place(inst, choice, states)

        if self.options.replication and self.options.max_replicas > 0:
            if decisions is not None:
                self._apply_replication_decisions(decisions, states)
            else:
                self._replication_round(place_batch, states)

        if self._elision_prediction is not None:
            self._audit_elision()

    # ------------------------------------------------------------------ #
    # Round-relevance gating (exact tier, DESIGN.md §10).                  #
    # ------------------------------------------------------------------ #
    def _relevance_gate(
        self,
        rs: RoundState,
        dirty_mask: bytes,
        originals: List[TaskInstance],
        replicas: List[TaskInstance],
    ) -> tuple:
        """Exact-tier elision attempt; returns ``(placements, decisions,
        elided)``.

        Asks the scheduler's :meth:`~repro.core.heuristics.base.Scheduler.
        would_replan` proof hook whether re-placing the unpinned originals
        reproduces their current hosts.  When it does, the replication
        dry-run (:meth:`_replication_decisions`) and the in-place plan
        check (:meth:`_plan_in_place`) extend the proof to the whole
        round; a complete proof applies the round's counter effects (the
        oracle's executed round launches the recreated replicas) and
        elides everything else.  Every intermediate result is returned
        for reuse, so a failed proof never scores anything twice: the
        computed placements seed the mutation phase and the dry-run
        decisions replay through :meth:`_apply_replication_decisions`.
        """
        probe = ReplanProbe(
            n_tasks=len(originals),
            hosts=[inst.worker for inst in originals],
            dirty_mask=dirty_mask,
        )
        if self.scheduler.would_replan(rs, probe):
            return probe.placements, None, False
        # A False answer asserts the re-placement reproduces the current
        # hosts; schedulers with a cheaper proof than re-placing (the
        # contract allows it) may leave ``placements`` unset, in which
        # case the hosts themselves are the proven placement list.
        placements = probe.placements
        if placements is None:
            placements = list(probe.hosts)
        # Cheap structural pre-checks before the replication dry-run: when
        # one fails the round must run anyway, and its real replication
        # loop scores its own decisions — nothing is computed twice.
        if not self._plan_in_place(originals, placements, replicas):
            return placements, None, False
        decisions = self._replication_decisions(replicas)
        if len(decisions) != len(replicas) or (
            replicas
            and {
                (inst.task_id, inst.replica_id, inst.worker)
                for inst in replicas
            }
            != set(decisions)
        ):
            # Replication would reshape the replica set: run the round,
            # replaying the already-computed decisions.
            return placements, decisions, False
        if self.options.audit:
            # Audit mode validates proofs instead of using them: record
            # the predicted (no-op) outcome, run the round for real, and
            # assert the prediction afterwards (:meth:`_audit_elision`).
            self._elision_prediction = self._queue_snapshot()
            return placements, decisions, False
        if decisions:
            # The oracle's round re-launches exactly these replicas.
            self.report.replicas_launched += len(decisions)
        return placements, decisions, True

    def _plan_in_place(
        self,
        originals: List[TaskInstance],
        placements: List[Optional[int]],
        replicas: List[TaskInstance],
    ) -> bool:
        """True when applying ``placements`` — and recreating exactly the
        current replicas — would leave every queue and every
        commit-relevant sibling order exactly as it already is.

        This is the structural half of the no-op proof; whether
        replication really would recreate exactly the current replicas is
        the dry-run's half (:meth:`_replication_decisions`).
        """
        tbl = self._tbl
        workers = self.workers
        for inst in replicas:
            # The oracle re-appends each recreated replica at the end of
            # its task's creation-order row list and at the end of its
            # host's queue; an elided replica keeps its position, so it
            # must already be the youngest sibling and the queue tail —
            # otherwise commit-time cancellation events would reorder.
            if inst.worker is None or tbl.rows_of[inst.task_id][-1] != inst.row:
                return False
            if workers[inst.worker].queue[-1] is not inst:
                return False
        # Each host's queue must already read ``[pinned…, its planned
        # originals in ascending task order]`` — the exact shape the
        # purge + re-place sequence rebuilds.
        expected: Dict[int, List[TaskInstance]] = {}
        for inst, choice in zip(originals, placements):
            if choice is not None:
                expected.setdefault(choice, []).append(inst)
            elif inst.worker is not None:  # pragma: no cover - host match
                return False  # guaranteed by placements == hosts
        for host, planned in expected.items():
            queue = workers[host].queue
            offset = len(queue) - len(planned)
            if offset < 0:
                return False
            for position in range(offset):
                if not queue[position].pinned:
                    return False
            for position, inst in enumerate(planned):
                if queue[offset + position] is not inst:
                    return False
        return True

    def _replication_decisions(self, dropped: List[TaskInstance]) -> List[tuple]:
        """Dry-run of :meth:`_replication_round` against the hypothetical
        post-round state: ``dropped`` unpinned replicas destroyed, every
        unpinned original re-placed on its current host.

        Returns the creation decisions ``[(task_id, replica_id, host)…]``
        the real loop would take (possibly empty).  Only called on the
        array store after the placement proof succeeded, so the
        hypothetical reads below mirror exactly the state the mutation
        phase would produce — which also makes the decisions valid for
        replay by :meth:`_apply_replication_decisions` when the round
        runs after all; a failed elision never scores replication twice.
        The scoring calls are the same ``place_array(rs, 1, allowed)``
        calls the real loop performs, against the same round-state
        version, so the chosen hosts are bit-identical.
        """
        options = self.options
        tbl = self._tbl
        if not options.replication or options.max_replicas == 0:
            return []
        n_uncommitted = tbl.n_uncommitted
        if n_uncommitted <= 0:
            return []
        if not dropped and tbl.repl_deficit == 0:
            return []  # saturated, nothing dropped: nothing to recreate
        up_state = int(ProcState.UP)
        cal = self._cal
        slist = self._states_list
        if cal is not None:
            if cal.up_count <= n_uncommitted:
                return []  # paper's trigger: more UP than remaining tasks
        elif slist.count(up_state) <= n_uncommitted:
            return []  # paper's trigger: more UP than remaining tasks
        workers = self.workers
        # Hypothetically idle: UP workers whose queue would be empty after
        # the purge — i.e. currently empty or holding only dropped
        # replicas (every unpinned replica is dropped by definition).
        idle_mask = None
        idle = None
        if cal is not None:
            # Calendar path: only queue hosts can be non-idle, so mask
            # the (few) busy workers out of the UP vector instead of
            # walking all p queues — and keep the mask so the candidate
            # loops below build allowed sets with numpy ops.
            idle_mask = cal.states_np == up_state
            for q in self._queue_hosts():
                if not dropped:
                    idle_mask[q] = False
                    continue
                for inst in workers[q].queue:
                    if inst.replica_id == 0 or inst.pinned:
                        idle_mask[q] = False  # keeps an original or pinned
                        break
        elif dropped:
            idle = []
            for q in range(len(slist)):
                if slist[q] != up_state:
                    continue
                for inst in workers[q].queue:
                    if inst.replica_id == 0 or inst.pinned:
                        break  # keeps a planned original or pinned work
                else:
                    idle.append(q)
        else:
            idle = [
                q
                for q in range(len(slist))
                if slist[q] == up_state and not workers[q].queue
            ]
        if idle_mask is not None:
            n_idle = int(np.count_nonzero(idle_mask))
            if n_idle == 0:
                return []
        elif not idle:
            return []
        max_instances = 1 + options.max_replicas
        live_count = tbl.live_count
        scheduler = self.scheduler
        rs = self._rs
        decisions: List[tuple] = []

        def allowed_for(task_hosts):
            # Shared allowed-set builder: on the calendar path the
            # eligibility mask itself is handed to the scheduler (the
            # array paths consume boolean masks directly), list scan
            # otherwise.  Returns None when no idle worker is eligible.
            if idle_mask is not None:
                blocked = [q for q in task_hosts if idle_mask[q]]
                if blocked:
                    if len(blocked) == n_idle:
                        return None
                    amask = idle_mask.copy()
                    amask[blocked] = False
                    return amask
                return idle_mask
            allowed = [q for q in idle if q not in task_hosts]
            return allowed if allowed else None

        def consume(choice):
            nonlocal n_idle
            if idle_mask is not None:
                idle_mask[choice] = False
                n_idle -= 1
            else:
                idle.remove(choice)

        if not dropped:
            # Fast path (the dominant mid-iteration shape, no replica
            # churn): the hypothetical post-round state IS the current
            # state, so this is the real loop's read side verbatim.
            candidates = sorted(
                tbl.uncommitted_tasks().tolist(),
                key=lambda task_id: (int(live_count[task_id]), task_id),
            )
            for task_id in candidates:
                exhausted = (
                    (n_idle == 0) if idle_mask is not None else not idle
                )
                if exhausted:
                    break
                if live_count[task_id] >= max_instances:
                    continue
                allowed = allowed_for(tbl.hosts_of_task(task_id))
                if allowed is None:
                    continue
                choice = scheduler.place_array(rs, 1, allowed)[0]
                if choice is None:  # pragma: no cover - allowed is all-UP
                    continue
                decisions.append(
                    (task_id, tbl.free_replica_id(task_id), choice)
                )
                consume(choice)
            return decisions
        live_list = live_count.tolist()
        live_hyp: Dict[int, int] = {}
        mask_hyp: Dict[int, int] = {}
        for inst in dropped:
            task_id = inst.task_id
            live_hyp[task_id] = live_hyp.get(task_id, live_list[task_id]) - 1
            mask_hyp[task_id] = mask_hyp.get(
                task_id, int(tbl.replica_mask[task_id])
            ) & ~(1 << inst.replica_id)
        for task_id, live in live_hyp.items():
            live_list[task_id] = live
        candidates = sorted(
            tbl.uncommitted_tasks().tolist(),
            key=lambda task_id: (live_list[task_id], task_id),
        )
        objects = tbl.objects
        for task_id in candidates:
            exhausted = (n_idle == 0) if idle_mask is not None else not idle
            if exhausted:
                break
            if live_list[task_id] >= max_instances:
                continue
            hosts = set()
            for row in tbl.rows_of[task_id]:
                inst = objects[row]
                if inst.replica_id and not inst.pinned:
                    continue  # an unpinned replica: hypothetically dropped
                if inst.worker is not None:
                    hosts.add(inst.worker)
            allowed = allowed_for(hosts)
            if allowed is None:
                continue
            choice = scheduler.place_array(rs, 1, allowed)[0]
            if choice is None:  # pragma: no cover - allowed is all-UP
                continue
            mask = mask_hyp.get(task_id, int(tbl.replica_mask[task_id]))
            replica_id = 1
            while mask >> replica_id & 1:
                replica_id += 1
            decisions.append((task_id, replica_id, choice))
            consume(choice)
        return decisions

    def _apply_replication_decisions(
        self, decisions: List[tuple], states: np.ndarray
    ) -> None:
        """Replay dry-run replication decisions (array store only).

        The decisions were computed against exactly the post-mutation
        state the round has now produced (placements applied as computed),
        so each creation replays without re-scoring.
        """
        tbl = self._tbl
        for task_id, replica_id, choice in decisions:
            replica = TaskInstance(
                iteration=self.iteration,
                task_id=task_id,
                replica_id=replica_id,
                data_needed=self.app.t_data,
            )
            tbl.add(replica)
            self._place(replica, choice, states)
            self.report.replicas_launched += 1

    def _queue_snapshot(self) -> List[list]:
        """Identity-free queue contents, for audit-mode proof validation."""
        return [
            [
                (
                    inst.task_id,
                    inst.replica_id,
                    inst.pinned,
                    inst.data_received,
                    inst.compute_done,
                    inst.compute_needed,
                )
                for inst in worker.queue
            ]
            for worker in self.workers
        ]

    def _audit_elision(self) -> None:
        """Audit-mode cross-check: a fired elision proof must describe a
        round that really was a no-op (the round ran; compare)."""
        predicted = self._elision_prediction
        self._elision_prediction = None
        assert self._queue_snapshot() == predicted, (
            "round-relevance proof fired but the executed round changed a "
            "queue: elision would have diverged"
        )

    def _place(
        self, inst: TaskInstance, choice: Optional[int], states: np.ndarray
    ) -> None:
        if choice is None:
            return
        if not 0 <= choice < len(self.workers):
            raise ValueError(
                f"scheduler {self.scheduler.name!r} placed a task on unknown "
                f"processor {choice}"
            )
        slist = self._states_list if self._tbl is not None else states
        if slist[choice] == int(ProcState.DOWN):
            # Refuse placements on DOWN processors (passive schedulers may
            # remember stale choices); leave the instance unplaced.
            return
        worker = self.workers[choice]
        inst.worker = choice
        inst.compute_needed = worker.speed_w
        worker.queue.append(inst)

    def _replication_round(self, place_batch, states: np.ndarray) -> None:
        # Cheap count-based exits before any list is built: mid-iteration
        # rounds leave here on the paper's trigger nearly every time.
        tbl = self._tbl
        if tbl is not None:
            n_uncommitted = tbl.n_uncommitted
        else:
            n_uncommitted = self.app.tasks_per_iteration - len(self._committed)
        if n_uncommitted <= 0:
            return
        up_state = int(ProcState.UP)
        cal = self._cal
        idle_mask = None
        idle = None
        if cal is not None:
            if cal.up_count <= n_uncommitted:
                return  # paper's trigger: more UP than remaining tasks
            # Only queue hosts can be non-idle: mask the (few) busy
            # workers out of the UP vector, and keep the *mask* — the
            # candidate loop below then builds each task's allowed set
            # with O(p) numpy ops instead of O(idle) Python list scans.
            idle_mask = cal.states_np == up_state
            for q in self._queue_hosts():
                idle_mask[q] = False
        elif tbl is not None:
            slist = self._states_list
            if slist.count(up_state) <= n_uncommitted:
                return  # paper's trigger: more UP than remaining tasks
            workers = self.workers
            idle = [
                q
                for q in range(len(slist))
                if slist[q] == up_state and not workers[q].queue
            ]
        elif int(np.count_nonzero(states == up_state)) <= n_uncommitted:
            return  # paper's trigger: more UP processors than remaining tasks
        else:
            idle = [
                q
                for q in range(len(states))
                if states[q] == up_state and not self.workers[q].queue
            ]
        if idle_mask is not None:
            n_idle = int(np.count_nonzero(idle_mask))
            if n_idle == 0:
                return
        elif not idle:
            return
        max_instances = 1 + self.options.max_replicas
        if tbl is not None:
            # The per-task aggregates are maintained incrementally, so no
            # pass over the live instances is needed at all.  Reading them
            # per visited candidate is exact: the loop below only ever
            # *adds* replicas for the task it is visiting, and it never
            # revisits a task.
            live_count = tbl.live_count
            candidates = sorted(
                tbl.uncommitted_tasks().tolist(),
                key=lambda task_id: (int(live_count[task_id]), task_id),
            )
            for task_id in candidates:
                exhausted = (n_idle == 0) if idle_mask is not None else not idle
                if exhausted:
                    break
                if live_count[task_id] >= max_instances:
                    continue
                task_hosts = tbl.hosts_of_task(task_id)
                if idle_mask is not None:
                    # Mask arithmetic: the eligibility mask itself is the
                    # allowed form the array schedulers consume (same
                    # candidate set as the legacy ascending list), so no
                    # index materialisation at all per candidate task.
                    blocked = [q for q in task_hosts if idle_mask[q]]
                    if blocked:
                        if len(blocked) == n_idle:
                            continue
                        amask = idle_mask.copy()
                        amask[blocked] = False
                        allowed = amask
                    else:
                        allowed = idle_mask
                else:
                    allowed = [q for q in idle if q not in task_hosts]
                    if not allowed:
                        continue
                choice = place_batch(1, allowed=allowed)[0]
                if choice is None:
                    continue
                replica = TaskInstance(
                    iteration=self.iteration,
                    task_id=task_id,
                    replica_id=tbl.free_replica_id(task_id),
                    data_needed=self.app.t_data,
                )
                tbl.add(replica)
                self._place(replica, choice, states)
                if replica.worker is not None:
                    self.report.replicas_launched += 1
                    if idle_mask is not None:
                        idle_mask[choice] = False
                        n_idle -= 1
                    else:
                        idle.remove(choice)
                else:
                    tbl.destroy(replica)
            return
        uncommitted = self._uncommitted_task_ids()
        # One pass over the live instances replaces the per-candidate
        # `_live_instances_of` scans: the loop below only ever *adds*
        # replicas for other task ids, so counts/hosts/replica ids taken
        # before the loop stay exact for every candidate it visits.
        counts: Dict[int, int] = {}
        hosts: Dict[int, set] = {}
        replica_ids_of: Dict[int, set] = {}
        for inst in self._instances:
            task_id = inst.task_id
            counts[task_id] = counts.get(task_id, 0) + 1
            if inst.worker is not None:
                hosts.setdefault(task_id, set()).add(inst.worker)
            replica_ids_of.setdefault(task_id, set()).add(inst.replica_id)
        # Least-replicated tasks first; ties toward the lowest task id.
        candidates = sorted(
            uncommitted, key=lambda task_id: (counts.get(task_id, 0), task_id)
        )
        for task_id in candidates:
            if not idle:
                break
            if counts.get(task_id, 0) >= max_instances:
                continue
            task_hosts = hosts.get(task_id, ())
            allowed = [q for q in idle if q not in task_hosts]
            if not allowed:
                continue
            choice = place_batch(1, allowed=allowed)[0]
            if choice is None:
                continue
            replica_ids = replica_ids_of.get(task_id, set())
            replica_id = next(
                rid for rid in range(1, max_instances + 1) if rid not in replica_ids
            )
            replica = TaskInstance(
                iteration=self.iteration,
                task_id=task_id,
                replica_id=replica_id,
                data_needed=self.app.t_data,
            )
            replica.row = len(self._instances)
            self._instances.append(replica)
            self._place(replica, choice, states)
            if replica.worker is not None:
                self.report.replicas_launched += 1
                idle.remove(choice)
            else:
                self._instances.pop()
                replica.row = -1

    # ------------------------------------------------------------------ #
    # Compute step.                                                        #
    # ------------------------------------------------------------------ #
    def _compute_step(self, slot: int, states: np.ndarray) -> None:
        tbl = self._tbl
        up = int(ProcState.UP)
        dirty = self._rs_dirty
        hint = self._rs_dirty_hint
        if self._cal is not None:
            # Calendar path: a queue implies live hosted instances, so
            # the queue-host set (O(live)) filtered to UP is exactly the
            # sweep's candidate list, in the same ascending order.
            slist = self._states_list
            candidates = [
                q for q in sorted(self._queue_hosts()) if slist[q] == up
            ]
        elif tbl is not None:
            # Only UP workers with a queue can compute; the candidate
            # filter replaces the all-workers sweep (same ascending order).
            slist = self._states_list
            workers = self.workers
            candidates = [
                q
                for q in range(len(slist))
                if slist[q] == up and workers[q].queue
            ]
        else:
            candidates = [
                q for q in range(len(self.workers)) if states[q] == up
            ]
        for q in candidates:
            worker = self.workers[q]
            if tbl is not None:
                row = tbl.computing_row[q]
                current = tbl.objects[row] if row >= 0 else None
            else:
                current = worker.computing_instance
            if current is None:
                current = worker.next_compute_target()
                if current is None:
                    continue
                current.computing = True
                if tbl is not None:
                    tbl.start_computing(current)
                self.log.emit(
                    SimEvent(
                        slot,
                        EventKind.COMPUTE_START,
                        worker=worker.index,
                        iteration=current.iteration,
                        task_id=current.task_id,
                        replica_id=current.replica_id,
                    )
                )
            current.compute_done += 1
            if not dirty[q]:  # delay shrank (or pin began)
                dirty[q] = 1
                hint.append(q)
            self.report.compute_slots_spent += 1
            if self.timeline is not None:
                self.timeline.mark_compute(q)
            if current.compute_complete:
                self._commit(slot, current)

    def _commit(self, slot: int, inst: TaskInstance) -> None:
        self._committed.add(inst.task_id)
        if self._tbl is not None:
            self._tbl.commit_task(inst.task_id)
        self.report.tasks_committed += 1
        self._need_replan = True
        self.log.emit(
            SimEvent(
                slot,
                EventKind.TASK_COMMIT,
                worker=inst.worker,
                iteration=inst.iteration,
                task_id=inst.task_id,
                replica_id=inst.replica_id,
            )
        )
        # Remove the committed instance and cancel all siblings, in
        # creation (uid) order — canonical on both stores: the table's
        # per-task row list appends in creation order, and the legacy
        # list (whose raw order a swap-remove may scramble) sorts.
        if self._tbl is not None:
            siblings = [
                self._tbl.objects[row]
                for row in list(self._tbl.rows_of[inst.task_id])
            ]
        else:
            siblings = sorted(
                self._live_instances_of(inst.task_id),
                key=lambda other: other.uid,
            )
        for sibling in siblings:
            if sibling is inst:
                self._destroy_instance(sibling)
                continue
            self.report.comm_slots_wasted += sibling.data_received
            self.report.compute_slots_wasted += sibling.compute_done
            if sibling.is_replica:
                self.report.replicas_cancelled += 1
            else:
                self.report.originals_superseded += 1
            self.log.emit(
                SimEvent(
                    slot,
                    EventKind.REPLICA_CANCELLED,
                    worker=sibling.worker,
                    iteration=sibling.iteration,
                    task_id=sibling.task_id,
                    replica_id=sibling.replica_id,
                )
            )
            self._destroy_instance(sibling)

    # ------------------------------------------------------------------ #
    # Transfer step.                                                       #
    # ------------------------------------------------------------------ #
    def _gather_requests(
        self, states: np.ndarray
    ) -> tuple[List[TransferRequest], Dict[int, TaskInstance]]:
        """This slot's transfer requests (and data targets) per UP worker."""
        requests: List[TransferRequest] = []
        targets: Dict[int, TaskInstance] = {}
        up = int(ProcState.UP)
        caches = None
        if self._tbl is not None:
            # Both request kinds need a non-empty queue (``wants_program``
            # checks it; a data target comes from it), so the filter is
            # exact — same candidates, same ascending order.  Requests are
            # frozen dataclasses keyed entirely by (worker, kind, started,
            # is_replica), so the per-worker cache reuses them across
            # slots instead of re-validating a fresh object per boundary.
            slist = self._states_list
            all_workers = self.workers
            if self._cal is not None:
                # Calendar path: requests can only come from queue hosts
                # (both request kinds need a non-empty queue) — O(live)
                # candidates in the same ascending order.
                workers = [
                    all_workers[q]
                    for q in sorted(self._queue_hosts())
                    if slist[q] == up
                ]
            else:
                workers = [
                    all_workers[q]
                    for q in range(len(slist))
                    if slist[q] == up and all_workers[q].queue
                ]
            caches = self._request_cache
        else:
            workers = self.workers
        for worker in workers:
            if caches is None and states[worker.index] != up:
                continue  # transfers suspend while RECLAIMED / DOWN
            if worker.wants_program():
                kind = "prog"
                started = worker.prog_received > 0
                is_replica = False
            else:
                target = worker.next_data_target()
                if target is None:
                    continue
                kind = "data"
                started = target.data_started
                is_replica = target.is_replica
                targets[worker.index] = target
            if caches is not None:
                cache = caches[worker.index]
                request = cache.get((kind, started, is_replica))
                if request is None:
                    request = TransferRequest(
                        worker=worker.index,
                        kind=kind,
                        started=started,
                        is_replica=is_replica,
                        key=worker.index,
                    )
                    cache[(kind, started, is_replica)] = request
            else:
                request = TransferRequest(
                    worker=worker.index,
                    kind=kind,
                    started=started,
                    is_replica=is_replica,
                    key=worker.index,
                )
            requests.append(request)
        return requests, targets

    def _transfer_step(self, slot: int, states: np.ndarray) -> None:
        requests, targets = self._gather_requests(states)
        grants: List[tuple] = []
        nprog = 0
        dirty = self._rs_dirty
        hint = self._rs_dirty_hint
        for grant in self.network.allocate(slot, requests):
            worker = self.workers[grant.worker]
            if not dirty[grant.worker]:  # prog/data progress moves delay
                dirty[grant.worker] = 1
                hint.append(grant.worker)
            self.report.comm_slots_spent += 1
            if self.timeline is not None:
                self.timeline.mark_transfer(worker.index, grant.kind)
            if grant.kind == "prog":
                nprog += 1
                grants.append((worker, "prog", None))
                if worker.prog_received == 0:
                    if self._tbl is not None:
                        self._prog_started[worker.index] = True
                        self._prog_holders.add(worker.index)
                    self.log.emit(
                        SimEvent(
                            slot,
                            EventKind.PROGRAM_TRANSFER_START,
                            worker=worker.index,
                        )
                    )
                worker.prog_received += 1
                if worker.has_program:
                    self._need_replan = True
                    self.log.emit(
                        SimEvent(
                            slot, EventKind.PROGRAM_TRANSFER_DONE, worker=worker.index
                        )
                    )
            else:
                inst = targets[grant.worker]
                grants.append((worker, "data", inst))
                if not inst.data_started:
                    if self._tbl is not None:
                        self._tbl.pin(inst)  # first data slot pins
                    self.log.emit(
                        SimEvent(
                            slot,
                            EventKind.DATA_TRANSFER_START,
                            worker=worker.index,
                            iteration=inst.iteration,
                            task_id=inst.task_id,
                            replica_id=inst.replica_id,
                        )
                    )
                inst.data_received += 1
                if inst.data_complete:
                    # No re-plan: a finished data transfer changes no
                    # scheduling input (the freed channel/buffer is used by
                    # the transfer step directly on the next slot).  It
                    # *does* reshape the next slot's requests and compute
                    # targets, so the span logic must treat the next slot
                    # as a boundary.
                    self._pipeline_changed = True
                    self.log.emit(
                        SimEvent(
                            slot,
                            EventKind.DATA_TRANSFER_DONE,
                            worker=worker.index,
                            iteration=inst.iteration,
                            task_id=inst.task_id,
                            replica_id=inst.replica_id,
                        )
                    )
        self._grants = grants
        self._grant_index = {
            worker.index: (kind, inst) for worker, kind, inst in grants
        }
        self._grant_counts = (nprog, len(grants) - nprog, len(requests))

    # ------------------------------------------------------------------ #
    # Main loop.                                                           #
    # ------------------------------------------------------------------ #
    def _step(self, slot: int) -> bool:
        """Simulate one slot; returns True when the whole run finished."""
        cal = self._cal
        if cal is not None:
            # Calendar path (DESIGN.md §12): pop the processors whose run
            # ended since the last boundary — O(churn · log p) — and keep
            # the persistent state list/buffer, instead of p state reads
            # and a fresh vector per boundary.  The net-change records
            # replace the sweep path's snapshot diff in _handle_states.
            self._cal_records = cal.advance(slot)
            self._states_list = cal.states
            states = cal.states_np
            self.op_boundary_workers_touched += cal.last_pops
            self.op_calendar_pops += cal.last_pops
        elif self._tbl is not None:
            if self._calendar_active():
                # First boundary of a calendar run: full O(p) build, then
                # the sweep fallback handles this step (records = None).
                cal = self._cal = PlatformCalendar(self._avail)
                cal.start(slot, self._cal_last)
                self._states_list = cal.states
                states = cal.states_np
            else:
                # Body fast path: gather states into a Python list (one
                # state_at per source, cursor-backed O(1) on the RLE
                # traces) and wrap it zero-copy for the vectorised
                # consumers.  A cohort-installed provider returns the
                # identical list from a shared per-trial memo (§11).
                provider = self.states_provider
                if provider is None:
                    slist = [source.state_at(slot) for source in self._avail]
                else:
                    slist = provider(slot)
                states = np.frombuffer(bytes(slist), dtype=np.uint8)
                self._states_list = slist
            self._cal_records = None
            self.op_boundary_workers_touched += len(self.workers)
        else:
            states = self.platform.states_at(slot)
            self._cal_records = None
            self.op_boundary_workers_touched += len(self.workers)
        # Counted after the gather: a step aborted by a diverging cohort
        # hook (which raises before any mutation) was never executed.
        self.steps_executed += 1
        self.op_boundaries += 1
        self._pipeline_changed = False
        if self.timeline is not None:
            self.timeline.begin_slot(states)
        self._handle_states(slot, states)

        if self._need_replan or self.options.replan_every_slot:
            self._need_replan = False
            if self.stack_rounds:
                # Stacked-round pause (DESIGN.md §14): run the read-only
                # prepare phase, then hand the step back to the cohort
                # driver.  resume_round() executes the round and the
                # remainder of this step; a trivial round needs no
                # stacked scoring, so the step continues inline.
                pend = self._round_prepare(slot, states)
                if pend is not None:
                    self._round_pending = (slot, states, pend)
                    return False
            else:
                self._scheduling_round(slot, states)

        return self._step_tail(slot, states)

    def _step_tail(self, slot: int, states: np.ndarray) -> bool:
        """The post-round remainder of :meth:`_step` (compute, transfer,
        audit, commit bookkeeping); shared verbatim with
        :meth:`resume_round`."""
        self._compute_step(slot, states)
        self._transfer_step(slot, states)

        if self.options.audit:
            for worker in self.workers:
                worker.check_invariants()
            if self._tbl is not None:
                self._audit_instance_table()

        if len(self._committed) >= self.app.tasks_per_iteration:
            self.report.iteration_end_slots.append(slot)
            self.report.completed_iterations += 1
            self.log.emit(
                SimEvent(slot, EventKind.ITERATION_DONE, iteration=self.iteration)
            )
            if self.report.completed_iterations >= self.app.iterations:
                self.report.makespan = slot + 1
                self.log.emit(SimEvent(slot, EventKind.RUN_DONE))
                return True
            self._start_iteration(self.iteration + 1)

        self._prev_states = states
        self._prev_states_list = self._states_list
        return False

    # ------------------------------------------------------------------ #
    # Span-stepped execution (DESIGN.md §6).                               #
    # ------------------------------------------------------------------ #
    def _step_mode_effective(self) -> str:
        """The stepping mode actually used by the run loop.

        ``replan_every_slot`` makes every slot a scheduling boundary, so it
        forces the slot loop — span mode would degenerate to zero-length
        spans anyway.  A timeline recorder no longer does: quiet spans
        fill the recorder in batch (:meth:`TimelineRecorder.
        record_quiet_span`), with every availability transition treated as
        a span boundary so the per-slot rows stay bit-identical to slot
        mode.
        """
        if self.options.step_mode == "slot":
            return "slot"
        if self.options.replan_every_slot:
            return "slot"
        return "span"

    def _next_change(self, q: int, slot: int, last: int) -> Optional[int]:
        """Next slot in ``(slot, last]`` where processor ``q`` changes state.

        Cached per processor: a value computed at an earlier boundary is
        the *first* change after that boundary, so it stays correct for
        any query slot before it (the state is constant in between).  A
        miss up to ``last`` is cached as the sentinel ``last + 1``.
        """
        cached = self._next_change_cache[q]
        if cached is not None and cached > slot:
            return cached if cached <= last else None
        change = self.platform[q].availability.next_change_after(slot, limit=last)
        self._next_change_cache[q] = change if change is not None else last + 1
        return change

    def _next_state_entry(
        self,
        q: int,
        slot: int,
        last: int,
        target: int,
        cache: List[Optional[int]],
    ) -> Optional[int]:
        """Next slot in ``(slot, last]`` where processor ``q`` enters
        ``target``, walking the source's change points.

        Cache validity mirrors :meth:`_next_change`: the cached slot is
        the *first* entry into ``target`` after the boundary that
        computed it, so the processor is never in ``target`` in between
        and the value stays correct for any query slot before it.
        """
        cached = cache[q]
        if cached is not None and cached > slot:
            return cached if cached <= last else None
        source = self.platform[q].availability
        change = source.next_change_after(slot, limit=last)
        while change is not None and source.state_at(change) != target:
            change = source.next_change_after(change, limit=last)
        cache[q] = change if change is not None else last + 1
        return change

    def _next_up_entry(self, q: int, slot: int, last: int) -> Optional[int]:
        """Next UP entry of processor ``q`` in ``(slot, last]``.

        Only consulted for processors currently not UP whose worker holds
        no progress: their RECLAIMED↔DOWN wandering is invisible to the
        simulation (no crash to apply, no UP-set change, and scheduling
        rounds — which do see the full state vector — happen only at
        boundaries), so the span may glide over it.  (Currently-UP empty
        workers always break spans on any change, even under the
        ``relevant-up`` policy: gliding over an exit would mask a
        re-entry inside the same span — see the note in
        :meth:`_quiet_span`.)
        """
        return self._next_state_entry(
            q, slot, last, int(ProcState.UP), self._next_up_cache
        )

    def _next_down_entry(self, q: int, slot: int, last: int) -> Optional[int]:
        """Next DOWN entry of processor ``q`` in ``(slot, last]``.

        Consulted for workers whose only observable transition is the
        DOWN entry that crashes them: program-holding workers with empty
        queues, and — in refined spans — UP workers whose pending
        requests stay outranked and whose compute advances by UP count
        (see :meth:`_quiet_span`).
        """
        return self._next_state_entry(
            q, slot, last, int(ProcState.DOWN), self._next_down_cache
        )

    def _round_glidable(self) -> bool:
        """True when no mid-span scheduling round could change anything,
        *no matter how the UP set evolves*.

        A round only acts through unpinned instances, the proactive
        policy, or the replication trigger.  When none of those can fire
        — every live instance is pinned, proactive is off, and every
        uncommitted task already carries ``1 + max_replicas`` live
        instances (or replication is off) — a round is trivial for every
        possible state vector.  UP-set changes on processors that host no
        active pipeline are then unobservable: slot mode would run a
        trivial round (no report field, no RNG draw, no placement), so
        the span may glide across them.  All of these conditions only
        change at boundaries (pinning via first granted slot, instance
        counts via commits/crashes), so a check at the span start covers
        the whole span.
        """
        if self.options.proactive:
            return False
        tbl = self._tbl
        if tbl is not None:
            # O(1): both conditions are incrementally maintained counters.
            if tbl.n_unpinned:
                return False
        else:
            for inst in self._instances:
                # `pinned` inlined (data_received > 0 or computing): this
                # runs at every span boundary, so property-call overhead
                # matters on the legacy store.
                if inst.data_received == 0 and not inst.computing:
                    return False
        if not self.options.replication or self.options.max_replicas == 0:
            return True
        n_uncommitted = (
            self._tbl.n_uncommitted
            if self._tbl is not None
            else self.app.tasks_per_iteration - len(self._committed)
        )
        if n_uncommitted >= len(self.workers):
            # The replication trigger needs strictly more UP processors
            # than uncommitted tasks; with p <= uncommitted it cannot fire
            # for any UP set, and the uncommitted count only moves at
            # commits — which are span boundaries (DESIGN.md §10).
            return True
        return self._replication_saturated()

    def _quiet_span(self, slot: int, budget: int) -> int:
        """Slots after ``slot`` that provably replay it with shifted counters.

        Returns ``n >= 0`` such that slots ``slot+1 .. slot+n`` change
        nothing discrete: no relevant availability transition, no transfer
        or compute completion, no pending re-plan.  Those slots can then
        be applied arithmetically by :meth:`_advance_quiet`; slot
        ``slot+n+1`` is the next boundary and is simulated in full.
        """
        if self._cal is not None:
            return self._quiet_span_cal(slot, budget)
        last = budget - 1
        if slot >= last:
            return 0
        if self._need_replan or self._pipeline_changed:
            return 0  # next slot re-plans or re-allocates: full step
        states = (
            self._prev_states_list
            if self._tbl is not None
            else self._prev_states
        )
        up = int(ProcState.UP)
        horizon = last + 1  # exclusive sentinel: quiet through the budget
        # 1. Availability: the earliest transition that the simulation can
        #    observe.  With the event log enabled every transition is
        #    observable (it must be logged), and likewise with a timeline
        #    recorder attached (every slot's state lands in a row).
        #    Otherwise observability depends on what the worker carries
        #    and on whether rounds can act (``glide``):
        #
        #    * a granted transfer or a frozen (non-UP) queue: every
        #      transition matters — it changes the channel allocation or
        #      resumes/crashes a pipeline;
        #    * an UP worker with a queue but no grant (``refined``): its
        #      RECLAIMED wandering is invisible — its pending request was
        #      already outranked at the boundary (and stays outranked:
        #      grant priorities only improve; see
        #      BoundedMultiportNetwork.plan) and its compute progress is
        #      exactly its UP-slot count, handled arithmetically below —
        #      so only the DOWN entry that crashes it breaks the span.
        #      Audit mode disables this (the per-slot ``requested`` count
        #      in the usage trail does observe the wandering);
        #    * a resident program with an empty queue: only the DOWN
        #      entry that wipes it (when rounds are glidable);
        #    * an empty worker: only the UP-set changes a scheduling
        #      round could act on — none at all while rounds are
        #      provably trivial.
        #
        #    Scans use the budget-wide ``last`` (not the running horizon):
        #    cached misses are stored as the sentinel ``last + 1``, which
        #    is only sound when ``last`` is constant across boundaries.
        observe_all = self.log.enabled or self.timeline is not None
        # Under the sticky policy pure churn never triggers a round, so
        # the glide conditions hold by construction: empty processors are
        # invisible, program holders matter only through their crashing
        # DOWN entry, and the refined treatment of wandering (UP,
        # ungranted) workers is valid without the round-triviality proof
        # (DESIGN.md §10).  All other round triggers — crashes, commits,
        # program completions — are span boundaries in their own right.
        sticky = self._policy.ignores_churn and not observe_all
        glide = sticky or (not observe_all and self._round_glidable())
        refined = glide and not self.options.audit
        self._span_refined = refined
        # Note on ``relevant-up``: although the policy ignores exits of
        # empty processors, spans must still break on them — a boundary
        # diffs states against the *last boundary*, so gliding over an
        # exit would mask a re-entry inside the same span (UP → … → UP
        # reads as "no change" and the entry — which the policy does
        # consider relevant — would never replan, diverging from slot
        # mode).  The policy's gain is therefore fewer executed rounds at
        # exit boundaries, not longer spans.
        grant_index = self._grant_index
        next_change_cache = self._next_change_cache
        next_up_cache = self._next_up_cache
        next_down_cache = self._next_down_cache
        tbl = self._tbl
        computing_rows = tbl.computing_row if tbl is not None else None
        objects = tbl.objects if tbl is not None else None
        avail = self._avail
        # 2. (fused below) Worker pipelines: the computing instance and
        #    the granted transfer (grants are stable across the span; see
        #    BoundedMultiportNetwork.plan) tick one unit per slot —
        #    except the computing instance of a refined (UP, ungranted)
        #    worker, which ticks once per *UP* slot and therefore
        #    completes at its worker's ``compute_remaining``-th UP slot.
        #    Both the availability and the pipeline bounds for a worker
        #    come from one pass (PR 5 span-search trim: one iteration,
        #    O(1) computing lookup off the table, no per-worker method
        #    calls).
        self.op_span_scan_workers += len(self.workers)
        for q, worker in enumerate(self.workers):
            queue = worker.queue
            state_up = states[q] == up
            # kind: 0 = any change, 1 = next UP entry, 2 = next DOWN
            # entry, None = invisible.  A grant implies a queue, so the
            # index is only consulted for queue holders.
            grant = grant_index.get(q) if queue else None
            if observe_all:
                kind = 0
            elif queue:
                kind = 2 if refined and state_up and grant is None else 0
            elif worker.prog_received > 0:
                kind = 2 if glide else 0
            elif glide:
                kind = None  # empty worker, rounds can't act: invisible
            elif state_up:
                kind = 0
            else:
                kind = 1
            if kind is not None:
                if kind == 0:
                    cache = next_change_cache
                elif kind == 1:
                    cache = next_up_cache
                else:
                    cache = next_down_cache
                cached = cache[q]  # inline cache hit: the common case
                if cached is not None and cached > slot:
                    change = cached if cached <= last else None
                elif kind == 0:
                    change = self._next_change(q, slot, last)
                elif kind == 1:
                    change = self._next_up_entry(q, slot, last)
                else:
                    change = self._next_down_entry(q, slot, last)
                if change is not None and change < horizon:
                    horizon = change
                    if horizon == slot + 1:
                        return 0
            if not queue or not state_up:
                continue  # idle, frozen (RECLAIMED) or wiped: no ticks
            if computing_rows is not None:
                row = computing_rows[q]
                computing = objects[row] if row >= 0 else None
            else:
                computing = worker.computing_instance
            if grant is None:
                if refined:
                    if computing is None:
                        continue
                    milestone_slot = avail[q].nth_up_after(
                        slot,
                        computing.compute_needed - computing.compute_done,
                        limit=last,
                    )
                    if milestone_slot is not None and milestone_slot < horizon:
                        horizon = milestone_slot
                        if horizon == slot + 1:
                            return 0
                    continue
                milestone = None
            else:
                grant_kind, grant_inst = grant
                if grant_kind == "prog":
                    milestone = worker.t_prog - worker.prog_received
                else:
                    milestone = grant_inst.data_needed - grant_inst.data_received
            if computing is not None:
                remaining = computing.compute_needed - computing.compute_done
                if milestone is None or remaining < milestone:
                    milestone = remaining
            if milestone is not None and slot + milestone < horizon:
                horizon = slot + milestone
                if horizon == slot + 1:
                    return 0
        return horizon - slot - 1

    def _quiet_span_cal(self, slot: int, budget: int) -> int:
        """Calendar-mode quiet-span search: O(busy), never O(p).

        Same contract as :meth:`_quiet_span`, visiting only the *busy*
        workers — queue hosts plus program holders (O(live), from the
        table's rows and the ``_prog_holders`` mirror).  The availability
        bound splits by regime:

        * **observe_all** (event log attached; the calendar never engages
          with a timeline): the sweep assigns every worker kind 0, whose
          minimum is exactly the calendar's heap top — identical spans;
        * **non-glide**: busy workers are kind 0 and idle non-UP workers
          kind 1 (their next *UP entry*); bounding both by the heap top
          is conservative — spans never longer than the sweep's, and an
          extra boundary at an idle worker's non-UP→non-UP transition is
          provably a no-op: no UP-set change, no event (the log is off in
          this regime), no crash candidate (idle workers carry nothing),
          and identical grants (same request set; grant priorities are
          stable — see BoundedMultiportNetwork.plan), so the per-slot
          trail matches the sweep's span arithmetic bit for bit;
        * **glide**: idle workers are invisible (kind None) and the heap
          top must NOT bound the span — only the busy workers' kind 0/2
          lookups apply, exactly as in the sweep.

        Milestone bounds (transfer/compute completions) are the sweep's,
        restricted to queue holders — the only workers that can carry
        grants or computing instances.
        """
        last = budget - 1
        if slot >= last:
            return 0
        if self._need_replan or self._pipeline_changed:
            return 0  # next slot re-plans or re-allocates: full step
        states = self._prev_states_list
        up = int(ProcState.UP)
        horizon = last + 1  # exclusive sentinel: quiet through the budget
        observe_all = self.log.enabled
        sticky = self._policy.ignores_churn and not observe_all
        glide = sticky or (not observe_all and self._round_glidable())
        refined = glide and not self.options.audit
        self._span_refined = refined
        if not glide:
            nxt = self._cal.peek()  # platform-wide next transition, O(1)
            if nxt < horizon:
                horizon = nxt
                if horizon == slot + 1:
                    return 0
        grant_index = self._grant_index
        next_change_cache = self._next_change_cache
        next_down_cache = self._next_down_cache
        tbl = self._tbl
        computing_rows = tbl.computing_row
        objects = tbl.objects
        avail = self._avail
        workers = self.workers
        busy = self._queue_hosts()
        busy.update(self._prog_holders)
        self.op_span_scan_workers += len(busy)
        for q in sorted(busy):
            worker = workers[q]
            queue = worker.queue
            state_up = states[q] == up
            grant = grant_index.get(q) if queue else None
            if glide:
                # kind 2 = next DOWN entry, kind 0 = any change — the
                # sweep's glide assignments for busy workers verbatim.
                if queue:
                    kind = 2 if refined and state_up and grant is None else 0
                else:
                    kind = 2  # resident program: only the wiping DOWN
                cache = next_down_cache if kind == 2 else next_change_cache
                cached = cache[q]  # inline cache hit: the common case
                if cached is not None and cached > slot:
                    change = cached if cached <= last else None
                elif kind == 2:
                    change = self._next_down_entry(q, slot, last)
                else:
                    change = self._next_change(q, slot, last)
                if change is not None and change < horizon:
                    horizon = change
                    if horizon == slot + 1:
                        return 0
            if not queue or not state_up:
                continue  # idle, frozen (RECLAIMED) or wiped: no ticks
            row = computing_rows[q]
            computing = objects[row] if row >= 0 else None
            if grant is None:
                if refined:
                    if computing is None:
                        continue
                    milestone_slot = avail[q].nth_up_after(
                        slot,
                        computing.compute_needed - computing.compute_done,
                        limit=last,
                    )
                    if milestone_slot is not None and milestone_slot < horizon:
                        horizon = milestone_slot
                        if horizon == slot + 1:
                            return 0
                    continue
                milestone = None
            else:
                grant_kind, grant_inst = grant
                if grant_kind == "prog":
                    milestone = worker.t_prog - worker.prog_received
                else:
                    milestone = grant_inst.data_needed - grant_inst.data_received
            if computing is not None:
                remaining = computing.compute_needed - computing.compute_done
                if milestone is None or remaining < milestone:
                    milestone = remaining
            if milestone is not None and slot + milestone < horizon:
                horizon = slot + milestone
                if horizon == slot + 1:
                    return 0
        return horizon - slot - 1

    def _advance_quiet(self, start: int, count: int) -> None:
        """Apply ``count`` quiet slots (``start .. start+count-1``) in O(p).

        Every UP worker's computing instance accrues ``count`` compute
        slots and every granted transfer ``count`` channel slots — by
        construction of :meth:`_quiet_span` none of them crosses a
        completion threshold, no state transition is observable, and the
        grant set would be re-derived identically at each skipped slot.
        """
        states = self._prev_states
        up = int(ProcState.UP)
        report = self.report
        refined = self._span_refined
        dirty = self._rs_dirty
        hint = self._rs_dirty_hint
        timeline_compute: Optional[List[int]] = (
            [] if self.timeline is not None else None
        )
        tbl = self._tbl
        if self._cal is not None:
            # Calendar path: a computing row implies a queued instance,
            # so the queue-host set covers every computing worker.
            slist = self._prev_states_list
            computing_row = tbl.computing_row
            computing = [
                (q, tbl.objects[computing_row[q]])
                for q in sorted(self._queue_hosts())
                if slist[q] == up and computing_row[q] >= 0
            ]
        elif tbl is not None:
            slist = self._prev_states_list
            computing_row = tbl.computing_row
            computing = [
                (q, tbl.objects[computing_row[q]])
                for q in range(len(slist))
                if slist[q] == up and computing_row[q] >= 0
            ]
        else:
            computing = []
            for worker in self.workers:
                if states[worker.index] != up:
                    continue
                inst = worker.computing_instance
                if inst is not None:
                    computing.append((worker.index, inst))
        for q, inst in computing:
            if refined and q not in self._grant_index:
                # May freeze and resume inside the span: progress is
                # the worker's UP-slot count over the window.
                ticks = self.platform[q].availability.up_count_in(
                    start, start + count
                )
            else:
                ticks = count  # UP throughout (any transition breaks)
            if ticks:
                inst.compute_done += ticks
                report.compute_slots_spent += ticks
                if not dirty[q]:
                    dirty[q] = 1
                    hint.append(q)
            if timeline_compute is not None:
                # With a recorder attached every transition is a span
                # boundary, so the worker computes on every quiet slot.
                timeline_compute.append(q)
        for worker, kind, inst in self._grants:
            if kind == "prog":
                worker.prog_received += count
            else:
                inst.data_received += count
            report.comm_slots_spent += count
            if not dirty[worker.index]:
                dirty[worker.index] = 1
                hint.append(worker.index)
        nprog, ndata, requested = self._grant_counts
        self.network.record_span(
            start, count, nprog=nprog, ndata=ndata, requested=requested
        )
        if self.timeline is not None:
            # Batched fill (ROADMAP item): every quiet slot repeats the
            # boundary activity pattern — states are constant (the recorder
            # makes every transition observable), the grant set is stable,
            # and no pipeline crosses a completion threshold — so one row
            # serves the whole span.
            self.timeline.record_quiet_span(
                states,
                timeline_compute,
                [(worker.index, kind) for worker, kind, _ in self._grants],
                count,
            )
        if self.options.audit:
            self._audit_quiet_advance()

    def _audit_quiet_advance(self) -> None:
        """Audit-mode cross-checks after a quiet-span fast-forward."""
        states = self._prev_states
        up = int(ProcState.UP)
        requests, _targets = self._gather_requests(states)
        planned = {(g.worker, g.kind) for g in self.network.plan(requests)}
        granted = {(worker.index, kind) for worker, kind, _ in self._grants}
        assert planned == granted, (
            f"grant set drifted mid-span: boundary {sorted(granted)} vs "
            f"replanned {sorted(planned)}"
        )
        for worker, kind, inst in self._grants:
            remaining = (
                worker.prog_remaining if kind == "prog" else inst.data_remaining
            )
            assert remaining >= 1, "granted transfer overshot its completion"
        for worker in self.workers:
            worker.check_invariants()
            if states[worker.index] == up:
                inst = worker.computing_instance
                if inst is not None:
                    assert inst.compute_remaining >= 1, (
                        "computing instance overshot its completion"
                    )

    def _run_loop(self, budget: int) -> None:
        """Advance the simulation up to ``budget`` slots (either mode)."""
        # The calendar's heap sentinels are budget-relative, so the
        # engine can only engage once the budget is known.
        self._cal_last = budget - 1
        if self._step_mode_effective() == "slot":
            for slot in range(budget):
                finished = self._step(slot)
                self.report.slots_simulated = slot + 1
                if finished:
                    return
            return
        self._next_change_cache = [None] * len(self.workers)
        self._next_up_cache = [None] * len(self.workers)
        self._next_down_cache = [None] * len(self.workers)
        slot = 0
        while slot < budget:
            finished = self._step(slot)
            self.report.slots_simulated = slot + 1
            if finished:
                return
            quiet = self._quiet_span(slot, budget)
            if quiet > 0:
                self._advance_quiet(slot + 1, quiet)
                self.report.slots_simulated = slot + 1 + quiet
            slot += 1 + quiet

    def run(self, max_slots: Optional[int] = None) -> SimulationReport:
        """Run until the target iterations complete (or ``max_slots``).

        Returns:
            The populated :class:`~repro.sim.metrics.SimulationReport`;
            ``report.makespan`` is ``None`` if the slot budget ran out.
        """
        budget = max_slots if max_slots is not None else self.options.max_slots
        budget = require_positive_int(budget, "max_slots")
        self._run_loop(budget)
        self._finalize()
        return self.report

    def run_slots(self, n_slots: int) -> SimulationReport:
        """Simulate exactly ``n_slots`` slots (the Section 3.4 objective).

        Returns:
            The report; ``completed_iterations`` is the objective value.
        """
        n_slots = require_positive_int(n_slots, "n_slots")
        self._run_loop(n_slots)
        self._finalize()
        return self.report

    # ------------------------------------------------------------------ #
    # Resumable runs (the batch engine's seam, DESIGN.md §11).             #
    # ------------------------------------------------------------------ #
    def begin_run(self, max_slots: Optional[int] = None) -> None:
        """Start an incremental run.

        ``begin_run`` / :meth:`advance_until` / :meth:`finish_run`
        replay the exact work sequence of :meth:`run` — one budget
        resolution, one span-cache reset, then the same
        ``_step``/``_quiet_span`` loop — but pausable between loop
        iterations, so a cohort driver can interleave several
        simulations over one shared trace horizon.  The pause points
        touch no simulation state; reports, event logs and audit trails
        are bit-identical to a plain :meth:`run` regardless of where (or
        whether) the run is paused.
        """
        budget = max_slots if max_slots is not None else self.options.max_slots
        self._resume_budget = require_positive_int(budget, "max_slots")
        self._cal_last = self._resume_budget - 1
        self._resume_slot = 0
        self._run_over = False
        # The effective mode is fixed for the whole run; resolve it once
        # here instead of per advance_until()/resume_round() call (the
        # stacked cohort driver makes one such call per scheduling round).
        self._resume_span = self._step_mode_effective() != "slot"
        if self._resume_span:
            # Same reset _run_loop performs on entry.
            self._next_change_cache = [None] * len(self.workers)
            self._next_up_cache = [None] * len(self.workers)
            self._next_down_cache = [None] * len(self.workers)

    def advance_until(self, slot_limit: int) -> bool:
        """Advance until the run ends or the clock reaches ``slot_limit``.

        Replicates ``_run_loop``'s stepping exactly; the only addition is
        the pause check against ``slot_limit`` (span-mode steps may
        overshoot the limit by their quiet span, exactly as ``_run_loop``
        overshoots nothing — the next boundary simply lies beyond it).

        Returns:
            True when the run is over (finished its iterations or
            exhausted the budget) — :meth:`finish_run` may then be
            called; False when paused at ``slot_limit``.
        """
        budget = self._resume_budget
        if budget is None:
            raise RuntimeError("advance_until() before begin_run()")
        if self._round_pending is not None:
            raise RuntimeError(
                "advance_until() with a pending round; call resume_round()"
            )
        if self._run_over:
            return True
        slot = self._resume_slot
        # The finally clause persists the loop cursor even when a
        # cohort-shared hook aborts a step by raising (CohortDivergence):
        # ``slot`` still names the aborted step — the states gather at
        # the top of ``_step`` precedes every mutation — so a later
        # advance_until() resumes by re-executing exactly that slot and
        # the run stays bit-identical.
        try:
            if not self._resume_span:
                while slot < budget:
                    finished = self._step(slot)
                    if self._round_pending is not None:
                        # Paused mid-step at a scheduling round: the slot
                        # is not yet simulated — resume_round() finishes
                        # it and owns the cursor/report bookkeeping.
                        return False
                    self.report.slots_simulated = slot + 1
                    slot += 1
                    if finished:
                        self._run_over = True
                        break
                    if slot >= slot_limit:
                        break
            else:
                while slot < budget:
                    finished = self._step(slot)
                    if self._round_pending is not None:
                        return False
                    self.report.slots_simulated = slot + 1
                    if finished:
                        self._run_over = True
                        break
                    quiet = self._quiet_span(slot, budget)
                    if quiet > 0:
                        self._advance_quiet(slot + 1, quiet)
                        self.report.slots_simulated = slot + 1 + quiet
                    slot += 1 + quiet
                    if slot >= slot_limit:
                        break
        finally:
            self._resume_slot = slot
        if slot >= budget:
            self._run_over = True
        return self._run_over

    @property
    def round_pending(self) -> bool:
        """True while a stacked-mode step is paused at its scheduling
        round (between :meth:`advance_until` and :meth:`resume_round`)."""
        return self._round_pending is not None

    def pending_round(self) -> tuple:
        """The paused round's ``(slot, states, (originals, replicas,
        dirty_mask, rs))`` — read-only, for the stacked cohort driver."""
        if self._round_pending is None:
            raise RuntimeError("pending_round() without a pending round")
        return self._round_pending

    def resume_round(self, advance_to: Optional[int] = None) -> bool:
        """Execute the paused scheduling round and finish its step.

        Replays exactly what the inline path would have done from the
        pause point on: the round's scoring + mutation phases, the step
        tail, the report bookkeeping, and (in span mode) the quiet-span
        glide — so a run paused and resumed at every round is
        bit-identical to one never paused.  Returns True when the run is
        over (like :meth:`advance_until`).

        With ``advance_to`` the call continues stepping toward that slot
        limit after the round (exactly :meth:`advance_until`), so a
        cohort driver pays one resume call per round instead of a
        resume + re-entered advance pair; the run may be paused at a new
        round on return (check :attr:`round_pending`).
        """
        pending = self._round_pending
        if pending is None:
            raise RuntimeError("resume_round() without a pending round")
        self._round_pending = None
        slot, states, pend = pending
        self._round_execute(slot, states, pend)
        finished = self._step_tail(slot, states)
        self.report.slots_simulated = slot + 1
        if finished:
            self._run_over = True
            self._resume_slot = slot + 1
            return True
        budget = self._resume_budget
        if self._resume_span:
            quiet = self._quiet_span(slot, budget)
            if quiet > 0:
                self._advance_quiet(slot + 1, quiet)
                self.report.slots_simulated = slot + 1 + quiet
            slot += quiet
        slot += 1
        self._resume_slot = slot
        if slot >= budget:
            self._run_over = True
        if self._run_over or advance_to is None or slot >= advance_to:
            return self._run_over
        return self.advance_until(advance_to)

    def finish_run(self) -> SimulationReport:
        """Finalise an incremental run and return the report."""
        if self._resume_budget is None:
            raise RuntimeError("finish_run() before begin_run()")
        if not self._run_over:
            raise RuntimeError("finish_run() before the run is over")
        self._resume_budget = None
        self._finalize()
        return self.report

    def _finalize(self) -> None:
        # Leftover instances at end-of-run are waste.
        if self._tbl is not None:
            leftovers = [
                self._tbl.objects[row] for row in self._tbl.live_rows().tolist()
            ]
        else:
            leftovers = self._instances
        for inst in leftovers:
            self.report.comm_slots_wasted += inst.data_received
            self.report.compute_slots_wasted += inst.compute_done
        if self.options.audit:
            self.network.verify_invariants()

    def _audit_instance_table(self) -> None:
        """Audit-mode cross-check: incremental InstanceTable columns and
        aggregates == a brute-force rebuild from the live objects and
        worker queues (DESIGN.md §9; mirrors :meth:`_audit_round_state`)."""
        tbl = self._tbl
        live = [tbl.objects[row] for row in tbl.live_rows().tolist()]
        tbl.audit(live, self._committed)
        for q, worker in enumerate(self.workers):
            row = tbl.computing_row[q]
            current = worker.computing_instance
            if current is None:
                assert row == -1, f"worker {q}: stale computing_row {row}"
            else:
                assert row == current.row, (
                    f"worker {q}: computing_row {row} != instance row "
                    f"{current.row}"
                )
            assert bool(self._prog_started[q]) == (worker.prog_received > 0), (
                f"worker {q}: prog_started flag drifted"
            )
        # Calendar-path invariants (DESIGN.md §12), cheap to verify on
        # every store: the busy-worker mirrors behind the O(busy) span
        # search must match the queues exactly.
        hosts = self._queue_hosts()
        for q, worker in enumerate(self.workers):
            assert (q in hosts) == bool(worker.queue), (
                f"worker {q}: queue-host derivation drifted"
            )
            assert (q in self._prog_holders) == (worker.prog_received > 0), (
                f"worker {q}: prog_holders mirror drifted"
            )
        cal = self._cal
        if cal is not None:
            slist = self._states_list
            assert cal.up_count == slist.count(int(ProcState.UP)), (
                "calendar up_count drifted"
            )
            assert list(cal.states_np) == slist, (
                "calendar state buffer drifted from its list"
            )


def simulate(
    platform: Platform,
    app: IterativeApplication,
    scheduler: Scheduler,
    *,
    options: Optional[SimulatorOptions] = None,
    rng: Optional[np.random.Generator] = None,
    log: Optional[EventLog] = None,
    max_slots: Optional[int] = None,
) -> SimulationReport:
    """Convenience one-shot wrapper around :class:`MasterSimulator`."""
    sim = MasterSimulator(
        platform, app, scheduler, options=options, rng=rng, log=log
    )
    return sim.run(max_slots=max_slots)
