"""The volatile master–worker simulator (paper Sections 3 and 6).

:class:`MasterSimulator` executes an :class:`~repro.workload.application.
IterativeApplication` on a :class:`~repro.sim.platform.Platform` under a
chosen scheduling heuristic, realising the model of Section 3:

* time advances in slots; processor states are read from each processor's
  ground-truth availability source;
* the master's outgoing bandwidth is a hard per-slot budget of ``ncom``
  channels (:class:`~repro.sim.network.BoundedMultiportNetwork`);
* workers run the program/data/compute pipeline of
  :class:`~repro.sim.worker.WorkerRuntime`, suspending while RECLAIMED and
  losing everything on DOWN;
* the scheduler re-plans the unpinned remainder of the current iteration at
  every *event* (state change, transfer completion, commit, crash,
  iteration boundary) — between events a re-plan would see the same inputs
  shifted by idle slots, so skipping it changes nothing for the paper's
  heuristics while keeping runs fast;
* tasks are replicated (up to :attr:`SimulatorOptions.max_replicas` extra
  copies) whenever UP processors outnumber uncommitted tasks, originals
  taking priority (Section 6.1).

**Normative slot order** (also documented in DESIGN.md §3): states & crash
handling → scheduling round → compute step → transfer step → commit and
iteration bookkeeping.  Compute precedes transfers so that a task whose
data finished in slot *t* starts computing in slot *t+1*, matching the
paper's sequential ``T_prog → T_data → w`` timing (verified against the
Section 4 worked example, whose optimal makespan of 9 slots this simulator
reproduces).

Two run modes mirror the paper's two objective formulations:

* :meth:`MasterSimulator.run` — complete a target number of iterations,
  report the makespan (the evaluation protocol of Section 7);
* :meth:`MasterSimulator.run_slots` — simulate exactly ``N`` slots, report
  completed iterations (the Section 3.4 objective).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .._validation import require_nonnegative_int, require_positive_int
from ..core.heuristics.base import ProcessorView, Scheduler, SchedulingContext
from ..types import ProcState
from ..workload.application import IterativeApplication
from .events import EventKind, EventLog, SimEvent
from .metrics import SimulationReport
from .network import BoundedMultiportNetwork, TransferRequest
from .platform import Platform
from .worker import TaskInstance, WorkerRuntime, reset_instance

__all__ = ["SimulatorOptions", "MasterSimulator", "simulate"]


@dataclass(frozen=True)
class SimulatorOptions:
    """Tunables for the simulator.

    Attributes:
        replication: enable task replication (Section 6.1; the paper's
            experiments always replicate — disable only for ablations).
        max_replicas: extra copies per task beyond the original.  The paper
            uses 2 ("we limit the number of additional replicas of a task
            to two").
        replan_every_slot: force a scheduling round every slot instead of
            on events only (ablation; slower, same results for the paper's
            heuristics up to Delay-shift ties).
        proactive: enable the paper's *proactive* heuristic class (Section
            6.1, described but not evaluated by the authors): during the
            end-of-iteration regime (UP processors ≥ remaining tasks), a
            pinned original stalled on a RECLAIMED worker is aggressively
            terminated — its partial data and computation are discarded,
            per the un-enrolment rule — and returned to the pool so an UP
            processor can take it over.
        audit: run per-slot invariant checks and network auditing.  Cheap
            enough for tests and examples; the harness disables it.
        max_slots: hard safety bound on simulated slots.
    """

    replication: bool = True
    max_replicas: int = 2
    replan_every_slot: bool = False
    proactive: bool = False
    audit: bool = False
    max_slots: int = 10_000_000

    def __post_init__(self) -> None:
        require_nonnegative_int(self.max_replicas, "max_replicas")
        require_positive_int(self.max_slots, "max_slots")


class MasterSimulator:
    """One application execution on one platform under one heuristic.

    Args:
        platform: the volatile processors and the channel budget.
        app: the iterative application.
        scheduler: the heuristic deciding task placement.
        options: simulator tunables.
        rng: RNG stream for scheduler randomness (the random heuristic
            family); availability randomness lives in the platform's
            sources and is *not* drawn from this stream, so heuristic
            choice does not perturb availability (paired comparisons).
        log: optional event log (a disabled one is created by default).
        timeline: optional per-slot activity recorder (see
            :class:`~repro.sim.timeline.TimelineRecorder`); costs one byte
            row per slot, so enable for debugging/examples only.
    """

    def __init__(
        self,
        platform: Platform,
        app: IterativeApplication,
        scheduler: Scheduler,
        *,
        options: Optional[SimulatorOptions] = None,
        rng: Optional[np.random.Generator] = None,
        log: Optional[EventLog] = None,
        timeline=None,
    ):
        self.platform = platform
        self.app = app
        self.scheduler = scheduler
        self.options = options or SimulatorOptions()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.log = log if log is not None else EventLog(enabled=False)
        self.timeline = timeline
        self.network = BoundedMultiportNetwork(
            platform.ncom, audit=self.options.audit
        )

        self.workers: List[WorkerRuntime] = [
            WorkerRuntime(index=proc.index, speed_w=proc.speed_w, t_prog=app.t_prog)
            for proc in platform
        ]
        self.report = SimulationReport(
            target_iterations=app.iterations, heuristic_name=scheduler.name
        )

        # Iteration state.
        self.iteration = 0
        self._instances: List[TaskInstance] = []  # live instances, this iteration
        self._committed: set[int] = set()  # committed task_ids, this iteration
        self._start_iteration(0)

        self._prev_states: Optional[np.ndarray] = None
        self._need_replan = True

    # ------------------------------------------------------------------ #
    # Iteration lifecycle.                                                 #
    # ------------------------------------------------------------------ #
    def _start_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self._committed = set()
        self._instances = [
            TaskInstance(
                iteration=iteration,
                task_id=task_id,
                replica_id=0,
                data_needed=self.app.t_data,
            )
            for task_id in range(self.app.tasks_per_iteration)
        ]
        self._need_replan = True

    def _live_instances_of(self, task_id: int) -> List[TaskInstance]:
        return [inst for inst in self._instances if inst.task_id == task_id]

    def _uncommitted_task_ids(self) -> List[int]:
        return [
            task_id
            for task_id in range(self.app.tasks_per_iteration)
            if task_id not in self._committed
        ]

    # ------------------------------------------------------------------ #
    # Crash / state handling.                                              #
    # ------------------------------------------------------------------ #
    def _handle_states(self, slot: int, states: np.ndarray) -> None:
        if self._prev_states is not None and not np.array_equal(
            states, self._prev_states
        ):
            # Re-plan only when the UP set changed: transitions among
            # RECLAIMED/DOWN of unused processors alter neither the
            # candidate set nor any Delay estimate.
            if not np.array_equal(
                states == int(ProcState.UP),
                self._prev_states == int(ProcState.UP),
            ):
                self._need_replan = True
            if self.log.enabled:
                for q in range(len(states)):
                    if states[q] != self._prev_states[q]:
                        self.log.emit(
                            SimEvent(
                                slot,
                                EventKind.PROC_STATE_CHANGE,
                                worker=q,
                                detail=(
                                    f"{ProcState(int(self._prev_states[q])).code}"
                                    f"->{ProcState(int(states[q])).code}"
                                ),
                            )
                        )
        for worker in self.workers:
            if states[worker.index] != int(ProcState.DOWN):
                continue
            if worker.prog_received == 0 and not worker.queue:
                continue
            # Account wasted effort before wiping progress.
            self.report.comm_slots_wasted += worker.prog_received
            lost = worker.crash()
            for inst in lost:
                self.report.comm_slots_wasted += inst.data_received
                self.report.compute_slots_wasted += inst.compute_done
                self.report.instances_lost_to_crash += 1
                if inst.is_replica:
                    self._destroy_instance(inst)
                else:
                    reset_instance(inst)  # original returns to the pool
                self.log.emit(
                    SimEvent(
                        slot,
                        EventKind.INSTANCE_LOST,
                        worker=worker.index,
                        iteration=inst.iteration,
                        task_id=inst.task_id,
                        replica_id=inst.replica_id,
                        detail="crash",
                    )
                )
            self._need_replan = True

    def _destroy_instance(self, inst: TaskInstance) -> None:
        if inst.worker is not None:
            self.workers[inst.worker].remove_instance(inst)
        reset_instance(inst)
        self._instances = [other for other in self._instances if other is not inst]

    # ------------------------------------------------------------------ #
    # Scheduling round.                                                    #
    # ------------------------------------------------------------------ #
    _STATE_TABLE = (ProcState.UP, ProcState.RECLAIMED, ProcState.DOWN)

    def _build_context(self, slot: int, states: np.ndarray) -> SchedulingContext:
        views = []
        state_table = self._STATE_TABLE
        for proc, worker in zip(self.platform, self.workers):
            pinned = worker.pinned_instances()
            views.append(
                ProcessorView(
                    index=proc.index,
                    speed_w=proc.speed_w,
                    state=state_table[states[proc.index]],
                    belief=proc.belief,
                    has_program=worker.has_program,
                    delay=worker.delay_estimate(self.app.t_data),
                    pinned_count=len(pinned),
                    prog_remaining=worker.prog_remaining,
                    pinned_pipeline=tuple(
                        (inst.data_remaining, inst.compute_remaining, inst.computing)
                        for inst in pinned
                    ),
                )
            )
        remaining = sum(
            1
            for inst in self._instances
            if not inst.is_replica and not inst.pinned
        )
        return SchedulingContext(
            slot=slot,
            t_prog=self.app.t_prog,
            t_data=self.app.t_data,
            ncom=self.platform.ncom,
            processors=views,
            remaining_tasks=remaining,
            rng=self.rng,
        )

    def _round_is_trivial(self, states: np.ndarray) -> bool:
        """True when a scheduling round could not change anything.

        A round matters only if there is an unpinned original to (re)place,
        an unpinned replica to reconsider, or the replication trigger can
        fire.  Checking this first keeps event-dense runs cheap.
        """
        for inst in self._instances:
            if not inst.pinned:
                return False  # something to place or reconsider
        if self.options.proactive and self._proactive_candidates(states):
            return False
        if not self.options.replication or self.options.max_replicas == 0:
            return True
        n_uncommitted = self.app.tasks_per_iteration - len(self._committed)
        up = int(np.count_nonzero(states == int(ProcState.UP)))
        if up <= n_uncommitted:
            return True  # replication trigger cannot fire
        idle = any(
            not self.workers[q].queue
            for q in range(len(self.workers))
            if states[q] == int(ProcState.UP)
        )
        if not idle:
            return True
        max_instances = 1 + self.options.max_replicas
        counts = {task_id: 0 for task_id in self._uncommitted_task_ids()}
        for inst in self._instances:
            if inst.task_id in counts:
                counts[inst.task_id] += 1
        return all(count >= max_instances for count in counts.values())

    def _proactive_candidates(self, states: np.ndarray) -> List[TaskInstance]:
        """Pinned originals worth terminating under the proactive policy.

        Conditions (conservative, to avoid thrashing): the end-of-iteration
        regime holds (at least as many UP processors as uncommitted tasks),
        the instance's worker is RECLAIMED, and the instance has not
        accumulated the majority of its computation (killing a nearly-done
        task is rarely worth the resent data).
        """
        uncommitted = self.app.tasks_per_iteration - len(self._committed)
        up = int(np.count_nonzero(states == int(ProcState.UP)))
        if up < uncommitted or up == 0:
            return []
        candidates = []
        for inst in self._instances:
            if inst.is_replica or not inst.pinned or inst.worker is None:
                continue
            if states[inst.worker] != int(ProcState.RECLAIMED):
                continue
            if inst.compute_needed and inst.compute_done * 2 > inst.compute_needed:
                continue
            candidates.append(inst)
        return candidates

    def _proactive_round(self, slot: int, states: np.ndarray) -> None:
        for inst in self._proactive_candidates(states):
            self.report.comm_slots_wasted += inst.data_received
            self.report.compute_slots_wasted += inst.compute_done
            self.workers[inst.worker].remove_instance(inst)
            reset_instance(inst)  # back to the pool, progress discarded
            self.log.emit(
                SimEvent(
                    slot,
                    EventKind.INSTANCE_LOST,
                    worker=None,
                    iteration=inst.iteration,
                    task_id=inst.task_id,
                    replica_id=inst.replica_id,
                    detail="proactive-termination",
                )
            )

    def _scheduling_round(self, slot: int, states: np.ndarray) -> None:
        if self._round_is_trivial(states):
            return
        if self.options.proactive:
            self._proactive_round(slot, states)
        self.report.scheduler_rounds += 1

        # Drop unpinned replicas; the replication step below recreates what
        # is still useful.  (They carry no progress by definition.)
        for inst in list(self._instances):
            if inst.is_replica and not inst.pinned:
                self._destroy_instance(inst)

        # Collect the unpinned originals (planned-on-worker and unplaced).
        unpinned: List[TaskInstance] = []
        for inst in self._instances:
            if inst.is_replica or inst.pinned:
                continue
            if inst.worker is not None:
                self.workers[inst.worker].remove_instance(inst)
            unpinned.append(inst)
        unpinned.sort(key=lambda inst: inst.task_id)

        ctx = self._build_context(slot, states)
        placements = self.scheduler.place(ctx, len(unpinned))
        for inst, choice in zip(unpinned, placements):
            self._place(inst, choice, states)

        if self.options.replication and self.options.max_replicas > 0:
            self._replication_round(ctx, states)

    def _place(
        self, inst: TaskInstance, choice: Optional[int], states: np.ndarray
    ) -> None:
        if choice is None:
            return
        if not 0 <= choice < len(self.workers):
            raise ValueError(
                f"scheduler {self.scheduler.name!r} placed a task on unknown "
                f"processor {choice}"
            )
        if states[choice] == int(ProcState.DOWN):
            # Refuse placements on DOWN processors (passive schedulers may
            # remember stale choices); leave the instance unplaced.
            return
        worker = self.workers[choice]
        inst.worker = choice
        inst.compute_needed = worker.speed_w
        worker.queue.append(inst)

    def _replication_round(
        self, ctx: SchedulingContext, states: np.ndarray
    ) -> None:
        uncommitted = self._uncommitted_task_ids()
        if not uncommitted:
            return
        up = [q for q in range(len(states)) if states[q] == int(ProcState.UP)]
        if len(up) <= len(uncommitted):
            return  # paper's trigger: more UP processors than remaining tasks
        idle = [q for q in up if not self.workers[q].queue]
        if not idle:
            return
        max_instances = 1 + self.options.max_replicas
        # Least-replicated tasks first; ties toward the lowest task id.
        candidates = sorted(
            uncommitted,
            key=lambda task_id: (len(self._live_instances_of(task_id)), task_id),
        )
        for task_id in candidates:
            if not idle:
                break
            siblings = self._live_instances_of(task_id)
            if len(siblings) >= max_instances:
                continue
            hosts = {inst.worker for inst in siblings if inst.worker is not None}
            allowed = [q for q in idle if q not in hosts]
            if not allowed:
                continue
            choice = self.scheduler.place(ctx, 1, allowed=allowed)[0]
            if choice is None:
                continue
            replica_ids = {inst.replica_id for inst in siblings}
            replica_id = next(
                rid for rid in range(1, max_instances + 1) if rid not in replica_ids
            )
            replica = TaskInstance(
                iteration=self.iteration,
                task_id=task_id,
                replica_id=replica_id,
                data_needed=self.app.t_data,
            )
            self._instances.append(replica)
            self._place(replica, choice, states)
            if replica.worker is not None:
                self.report.replicas_launched += 1
                idle.remove(choice)
            else:
                self._instances.remove(replica)

    # ------------------------------------------------------------------ #
    # Compute step.                                                        #
    # ------------------------------------------------------------------ #
    def _compute_step(self, slot: int, states: np.ndarray) -> None:
        for worker in self.workers:
            if states[worker.index] != int(ProcState.UP):
                continue
            current = worker.computing_instance
            if current is None:
                current = worker.next_compute_target()
                if current is None:
                    continue
                current.computing = True
                self.log.emit(
                    SimEvent(
                        slot,
                        EventKind.COMPUTE_START,
                        worker=worker.index,
                        iteration=current.iteration,
                        task_id=current.task_id,
                        replica_id=current.replica_id,
                    )
                )
            current.compute_done += 1
            self.report.compute_slots_spent += 1
            if self.timeline is not None:
                self.timeline.mark_compute(worker.index)
            if current.compute_complete:
                self._commit(slot, current)

    def _commit(self, slot: int, inst: TaskInstance) -> None:
        self._committed.add(inst.task_id)
        self.report.tasks_committed += 1
        self._need_replan = True
        self.log.emit(
            SimEvent(
                slot,
                EventKind.TASK_COMMIT,
                worker=inst.worker,
                iteration=inst.iteration,
                task_id=inst.task_id,
                replica_id=inst.replica_id,
            )
        )
        # Remove the committed instance and cancel all siblings.
        for sibling in self._live_instances_of(inst.task_id):
            if sibling is inst:
                self._destroy_instance(sibling)
                continue
            self.report.comm_slots_wasted += sibling.data_received
            self.report.compute_slots_wasted += sibling.compute_done
            if sibling.is_replica:
                self.report.replicas_cancelled += 1
            else:
                self.report.originals_superseded += 1
            self.log.emit(
                SimEvent(
                    slot,
                    EventKind.REPLICA_CANCELLED,
                    worker=sibling.worker,
                    iteration=sibling.iteration,
                    task_id=sibling.task_id,
                    replica_id=sibling.replica_id,
                )
            )
            self._destroy_instance(sibling)

    # ------------------------------------------------------------------ #
    # Transfer step.                                                       #
    # ------------------------------------------------------------------ #
    def _transfer_step(self, slot: int, states: np.ndarray) -> None:
        requests: List[TransferRequest] = []
        targets: Dict[int, TaskInstance] = {}
        for worker in self.workers:
            if states[worker.index] != int(ProcState.UP):
                continue  # transfers suspend while RECLAIMED / DOWN
            if worker.wants_program():
                requests.append(
                    TransferRequest(
                        worker=worker.index,
                        kind="prog",
                        started=worker.prog_received > 0,
                        is_replica=False,
                        key=worker.index,
                    )
                )
                continue
            target = worker.next_data_target()
            if target is not None:
                requests.append(
                    TransferRequest(
                        worker=worker.index,
                        kind="data",
                        started=target.data_started,
                        is_replica=target.is_replica,
                        key=worker.index,
                    )
                )
                targets[worker.index] = target

        for grant in self.network.allocate(slot, requests):
            worker = self.workers[grant.worker]
            self.report.comm_slots_spent += 1
            if self.timeline is not None:
                self.timeline.mark_transfer(worker.index, grant.kind)
            if grant.kind == "prog":
                if worker.prog_received == 0:
                    self.log.emit(
                        SimEvent(
                            slot,
                            EventKind.PROGRAM_TRANSFER_START,
                            worker=worker.index,
                        )
                    )
                worker.prog_received += 1
                if worker.has_program:
                    self._need_replan = True
                    self.log.emit(
                        SimEvent(
                            slot, EventKind.PROGRAM_TRANSFER_DONE, worker=worker.index
                        )
                    )
            else:
                inst = targets[grant.worker]
                if not inst.data_started:
                    self.log.emit(
                        SimEvent(
                            slot,
                            EventKind.DATA_TRANSFER_START,
                            worker=worker.index,
                            iteration=inst.iteration,
                            task_id=inst.task_id,
                            replica_id=inst.replica_id,
                        )
                    )
                inst.data_received += 1
                if inst.data_complete:
                    # No re-plan: a finished data transfer changes no
                    # scheduling input (the freed channel/buffer is used by
                    # the transfer step directly on the next slot).
                    self.log.emit(
                        SimEvent(
                            slot,
                            EventKind.DATA_TRANSFER_DONE,
                            worker=worker.index,
                            iteration=inst.iteration,
                            task_id=inst.task_id,
                            replica_id=inst.replica_id,
                        )
                    )

    # ------------------------------------------------------------------ #
    # Main loop.                                                           #
    # ------------------------------------------------------------------ #
    def _step(self, slot: int) -> bool:
        """Simulate one slot; returns True when the whole run finished."""
        states = self.platform.states_at(slot)
        if self.timeline is not None:
            self.timeline.begin_slot(states)
        self._handle_states(slot, states)

        if self._need_replan or self.options.replan_every_slot:
            self._need_replan = False
            self._scheduling_round(slot, states)

        self._compute_step(slot, states)
        self._transfer_step(slot, states)

        if self.options.audit:
            for worker in self.workers:
                worker.check_invariants()

        if len(self._committed) >= self.app.tasks_per_iteration:
            self.report.iteration_end_slots.append(slot)
            self.report.completed_iterations += 1
            self.log.emit(
                SimEvent(slot, EventKind.ITERATION_DONE, iteration=self.iteration)
            )
            if self.report.completed_iterations >= self.app.iterations:
                self.report.makespan = slot + 1
                self.log.emit(SimEvent(slot, EventKind.RUN_DONE))
                return True
            self._start_iteration(self.iteration + 1)

        self._prev_states = states
        return False

    def run(self, max_slots: Optional[int] = None) -> SimulationReport:
        """Run until the target iterations complete (or ``max_slots``).

        Returns:
            The populated :class:`~repro.sim.metrics.SimulationReport`;
            ``report.makespan`` is ``None`` if the slot budget ran out.
        """
        budget = max_slots if max_slots is not None else self.options.max_slots
        budget = require_positive_int(budget, "max_slots")
        for slot in range(budget):
            finished = self._step(slot)
            self.report.slots_simulated = slot + 1
            if finished:
                break
        self._finalize()
        return self.report

    def run_slots(self, n_slots: int) -> SimulationReport:
        """Simulate exactly ``n_slots`` slots (the Section 3.4 objective).

        Returns:
            The report; ``completed_iterations`` is the objective value.
        """
        n_slots = require_positive_int(n_slots, "n_slots")
        for slot in range(n_slots):
            finished = self._step(slot)
            self.report.slots_simulated = slot + 1
            if finished:
                break
        self._finalize()
        return self.report

    def _finalize(self) -> None:
        # Leftover instances at end-of-run are waste.
        for inst in self._instances:
            self.report.comm_slots_wasted += inst.data_received
            self.report.compute_slots_wasted += inst.compute_done
        if self.options.audit:
            self.network.verify_invariants()


def simulate(
    platform: Platform,
    app: IterativeApplication,
    scheduler: Scheduler,
    *,
    options: Optional[SimulatorOptions] = None,
    rng: Optional[np.random.Generator] = None,
    log: Optional[EventLog] = None,
    max_slots: Optional[int] = None,
) -> SimulationReport:
    """Convenience one-shot wrapper around :class:`MasterSimulator`."""
    sim = MasterSimulator(
        platform, app, scheduler, options=options, rng=rng, log=log
    )
    return sim.run(max_slots=max_slots)
