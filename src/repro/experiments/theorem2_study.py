"""Numerical validation of the paper's analytic core (exp. id ``theorem2``).

The paper's Section 5 derives two closed forms — Lemma 1's :math:`P_+` and
Theorem 2's :math:`E(W)` — and Section 6.3.3 adds the rank-1 approximation
of :math:`P_{UD}(k)`.  The paper itself validates them only implicitly
(through heuristic performance).  This study validates them *directly*:
for a population of chains drawn from the paper's own distribution, it
compares each closed form against a Monte-Carlo estimate on the same
chain and reports worst-case and mean deviations.

This is the quantitative backing for using the closed forms inside the
heuristics' inner loops (they are exact, and ~1000× cheaper than the
estimates they replace; see ``benchmarks/bench_expectation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.plotting import format_table
from ..core.expectation import (
    expected_completion_slots,
    p_no_down_approx,
    p_no_down_exact,
    p_plus,
    simulate_completion_slots,
    simulate_p_no_down,
    simulate_p_plus,
    success_probability,
)
from ..core.markov import paper_random_model

__all__ = ["Theorem2StudyResult", "run_theorem2_study", "render_theorem2_study"]


@dataclass(frozen=True)
class QuantityValidation:
    """Deviation statistics for one closed form vs Monte Carlo."""

    quantity: str
    mean_abs_error: float
    max_abs_error: float
    chains: int


@dataclass
class Theorem2StudyResult:
    """All validated quantities plus run provenance."""

    validations: List[QuantityValidation]
    samples: int
    workload: int


def run_theorem2_study(
    *,
    chains: int = 10,
    samples: int = 20_000,
    workload: int = 8,
    seed: int = 5,
) -> Theorem2StudyResult:
    """Validate Lemma 1 / Theorem 2 / P_UD against Monte Carlo.

    Args:
        chains: number of chains drawn from the paper's distribution.
        samples: Monte-Carlo walks per chain and quantity.
        workload: the ``W`` used for Theorem 2 and the success probability.
        seed: RNG seed for both chain drawing and simulation.
    """
    chain_rng = np.random.default_rng(seed)
    models = [paper_random_model(chain_rng) for _ in range(chains)]

    errors = {
        "P_+ (Lemma 1)": [],
        f"E(W={workload}) (Theorem 2)": [],
        f"success prob (P_+^{{W-1}})": [],
        "P_UD exact (matrix power)": [],
        "P_UD rank-1 approx vs exact": [],
    }
    for index, model in enumerate(models):
        mc_rng = np.random.default_rng(seed * 1000 + index)
        errors["P_+ (Lemma 1)"].append(
            abs(simulate_p_plus(model, mc_rng, samples=samples) - p_plus(model))
        )
        p_success, mean_slots = simulate_completion_slots(
            model, workload, mc_rng, samples=samples
        )
        errors[f"E(W={workload}) (Theorem 2)"].append(
            abs(mean_slots - expected_completion_slots(model, workload))
            / expected_completion_slots(model, workload)
        )
        errors[f"success prob (P_+^{{W-1}})"].append(
            abs(p_success - success_probability(model, workload))
        )
        k = workload + 4
        errors["P_UD exact (matrix power)"].append(
            abs(
                simulate_p_no_down(model, k, mc_rng, samples=samples)
                - p_no_down_exact(model, k)
            )
        )
        errors["P_UD rank-1 approx vs exact"].append(
            abs(p_no_down_approx(model, float(k)) - p_no_down_exact(model, k))
        )

    validations = [
        QuantityValidation(
            quantity=name,
            mean_abs_error=float(np.mean(values)),
            max_abs_error=float(np.max(values)),
            chains=chains,
        )
        for name, values in errors.items()
    ]
    return Theorem2StudyResult(
        validations=validations, samples=samples, workload=workload
    )


def render_theorem2_study(result: Theorem2StudyResult) -> str:
    """Text table of deviations (closed form vs Monte Carlo)."""
    rows = [
        (v.quantity, f"{v.mean_abs_error:.4f}", f"{v.max_abs_error:.4f}")
        for v in result.validations
    ]
    table = format_table(
        ["quantity", "mean |err|", "max |err|"],
        rows,
        title=(
            "Theorem 2 / Lemma 1 validation — closed form vs Monte Carlo "
            f"({result.samples} walks per chain)"
        ),
    )
    return table + (
        "\nnote: the first four rows measure closed form vs simulation "
        "(statistical noise only); the last row measures the paper's "
        "rank-1 P_UD approximation against the exact matrix-power form "
        "(a real modelling gap, by design)."
    )
