"""Experiment harness: run scenario × trial × heuristic campaigns.

The harness realises the paper's evaluation protocol (Section 7): for each
scenario and trial, every heuristic runs against the *same* availability
sample (the trial seed drives the Markov transitions; the heuristic's own
randomness uses a separate stream), the makespan to complete the target
iterations is recorded, and results stream into a
:class:`~repro.experiments.dfb.DfbAccumulator`.

Since the backend refactor (DESIGN.md §4) the harness is split into three
stages so campaigns can run on any
:class:`~repro.experiments.backends.ExecutionBackend`:

1. **work-unit generation** — :func:`iter_work_units` turns the scenario
   population into picklable :class:`CampaignUnit` objects, one per
   (scenario, trial), each carrying a
   :class:`~repro.workload.scenarios.ScenarioSpec` (name+seed, not live
   objects) plus the heuristic names and simulator options;
2. **per-unit execution** — :meth:`CampaignUnit.run` (built on
   :func:`run_instance`) replays identically in any process because every
   RNG stream derives from the spec and trial;
3. **streaming aggregation** — :func:`run_campaign` folds unit results
   into a :class:`CampaignResult` *in unit order* (a reorder buffer
   absorbs out-of-order completion), so dfb statistics are bit-identical
   across backends and job counts.  Partial results also combine
   explicitly via :meth:`CampaignResult.merge`.

Runs that exceed the slot budget (possible only for pathological chains)
are scored with the budget as their makespan and flagged in the campaign
report — silently dropping them would bias dfb toward lucky heuristics.

Interrupted campaigns resume from a checkpoint journal: pass
``checkpoint=path`` to :func:`run_campaign` and completed (scenario,
trial) units are recorded as they finish and skipped on the next run (see
:class:`~repro.experiments.persistence.CampaignCheckpoint`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.heuristics.registry import make_scheduler
from ..sim.master import MasterSimulator, SimulatorOptions
from ..workload.scenarios import Scenario
from .backends import (
    ExecutionBackend,
    ScenarioRef,
    as_scenario_ref,
    make_backend,
    resolve_scenario,
)
from .dfb import DfbAccumulator

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CampaignUnit",
    "CampaignUnitResult",
    "iter_work_units",
    "run_campaign",
    "run_instance",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Execution parameters for a campaign.

    Attributes:
        heuristics: registry names to compare.
        trials: trials per scenario (paper: 10).
        max_slots: per-run slot budget (safety bound; generous by default).
        options: simulator options (replication on, audit off — the
            paper's configuration — unless overridden).
        engine: per-unit execution engine.  ``"per-run"`` runs each
            (trial, heuristic) instance independently (the oracle);
            ``"batch"`` executes each unit as one cohort through
            :class:`~repro.sim.batch_engine.BatchCampaignRunner`,
            sharing traces / state rows / belief columns across the
            unit's heuristics.  Results are bit-identical either way
            (asserted in ``tests/test_batch_engine.py``), so the engine
            is an execution detail, not part of the campaign identity —
            checkpoints written under one engine resume under the other.
    """

    heuristics: Sequence[str]
    trials: int = 10
    max_slots: int = 500_000
    options: SimulatorOptions = field(default_factory=SimulatorOptions)
    engine: str = "per-run"

    def __post_init__(self) -> None:
        if not self.heuristics:
            raise ValueError("campaign needs at least one heuristic")
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")
        if self.max_slots <= 0:
            raise ValueError(f"max_slots must be positive, got {self.max_slots}")
        if self.engine not in ("per-run", "batch"):
            raise ValueError(
                f"engine must be 'per-run' or 'batch', got {self.engine!r}"
            )


@dataclass
class CampaignResult:
    """Aggregated campaign outcome.

    Attributes:
        accumulator: dfb/wins aggregates over all instances.
        per_scenario: per-scenario accumulators keyed by scenario key
            (used by Figure 2's per-``wmin`` averaging).
        truncated_runs: (scenario key, trial, heuristic) triples whose run
            hit the slot budget.
        instances: total problem instances executed.
        records: raw per-instance makespans, ``(instance key, {heuristic:
            makespan})`` in execution order — the ground data everything
            else aggregates, kept so campaigns can be serialised and
            re-analysed (:mod:`repro.experiments.persistence`).
    """

    accumulator: DfbAccumulator = field(default_factory=DfbAccumulator)
    per_scenario: Dict[tuple, DfbAccumulator] = field(default_factory=dict)
    truncated_runs: List[tuple] = field(default_factory=list)
    instances: int = 0
    records: List[tuple] = field(default_factory=list)

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        """Combine two partial campaigns into a new result (non-mutating).

        Associative with :class:`CampaignResult()` as identity, mirroring
        :meth:`DfbAccumulator.merge`: records, truncation flags and
        per-scenario accumulators concatenate in call order, instance
        counts add.  Merging partials in instance order reproduces the
        serial result exactly.
        """
        merged = CampaignResult()
        merged.accumulator = self.accumulator.merge(other.accumulator)
        for source in (self, other):
            for key, acc in source.per_scenario.items():
                existing = merged.per_scenario.get(key)
                merged.per_scenario[key] = (
                    acc if existing is None else existing.merge(acc)
                )
        merged.truncated_runs = self.truncated_runs + other.truncated_runs
        merged.instances = self.instances + other.instances
        merged.records = self.records + other.records
        return merged


@dataclass(frozen=True)
class CampaignUnitResult:
    """Outcome of one work unit: one (scenario, trial), all heuristics.

    Attributes:
        makespans: heuristic → makespan, in the campaign's heuristic
            order.
        truncated: heuristics whose run hit the slot budget (scored at
            the budget), in the same order.
    """

    makespans: Dict[str, float]
    truncated: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CampaignUnit:
    """One picklable work unit: every heuristic on one (scenario, trial).

    All heuristics of an instance stay in one unit because dfb is a
    within-instance metric — the unit result is self-contained, so units
    can execute and complete in any order on any worker.
    """

    scenario_ref: ScenarioRef
    scenario_key: tuple
    trial: int
    heuristics: Tuple[str, ...]
    max_slots: int
    options: SimulatorOptions
    engine: str = "per-run"

    @property
    def instance_key(self) -> tuple:
        """The (scenario key…, trial) identity used by records/checkpoints."""
        return (*self.scenario_key, self.trial)

    def run(self) -> CampaignUnitResult:
        """Execute the unit (identical result in any process)."""
        scenario = resolve_scenario(self.scenario_ref)
        if self.engine == "batch":
            from ..sim.batch_engine import run_unit_cohort

            return run_unit_cohort(scenario, self)
        makespans: Dict[str, float] = {}
        truncated: List[str] = []
        for heuristic in self.heuristics:
            makespan = run_instance(
                scenario,
                self.trial,
                heuristic,
                max_slots=self.max_slots,
                options=self.options,
            )
            if makespan >= self.max_slots:
                truncated.append(heuristic)
            makespans[heuristic] = makespan
        return CampaignUnitResult(
            makespans=makespans, truncated=tuple(truncated)
        )


def run_instance(
    scenario: Scenario,
    trial: int,
    heuristic: str,
    *,
    max_slots: int = 500_000,
    options: Optional[SimulatorOptions] = None,
) -> float:
    """Run one (scenario, trial, heuristic) instance; return the makespan.

    Returns ``max_slots`` when the run did not finish within the budget.
    """
    platform = scenario.build_platform(trial)
    scheduler = make_scheduler(heuristic, platform=platform)
    sim = MasterSimulator(
        platform,
        scenario.app,
        scheduler,
        options=options or SimulatorOptions(),
        rng=scenario.scheduler_rng(trial, heuristic),
    )
    report = sim.run(max_slots=max_slots)
    return float(report.makespan if report.makespan is not None else max_slots)


def iter_work_units(
    scenarios: Iterable[Scenario], config: CampaignConfig
) -> Iterator[CampaignUnit]:
    """Expand a scenario population into campaign work units.

    Units appear in the normative campaign order — scenarios as given,
    trials ascending within each scenario — which is also the order
    aggregation folds them back in.
    """
    heuristics = tuple(config.heuristics)
    for scenario in scenarios:
        ref = as_scenario_ref(scenario)
        for trial in range(config.trials):
            yield CampaignUnit(
                scenario_ref=ref,
                scenario_key=scenario.key,
                trial=trial,
                heuristics=heuristics,
                max_slots=config.max_slots,
                options=config.options,
                engine=config.engine,
            )


def _fold_unit(
    result: CampaignResult, unit: CampaignUnit, outcome: CampaignUnitResult
) -> None:
    """Aggregate one unit outcome (must be called in unit order)."""
    scenario_acc = result.per_scenario.setdefault(
        unit.scenario_key, DfbAccumulator()
    )
    for heuristic in outcome.truncated:
        result.truncated_runs.append(
            (unit.scenario_key, unit.trial, heuristic)
        )
    instance_key = unit.instance_key
    result.accumulator.add_instance(instance_key, outcome.makespans)
    scenario_acc.add_instance(instance_key, outcome.makespans)
    result.records.append((instance_key, dict(outcome.makespans)))
    result.instances += 1


def _campaign_fingerprint(
    units: Sequence[CampaignUnit], config: CampaignConfig
) -> dict:
    """Identity of everything that shapes unit *results* (JSON-safe).

    Restored checkpoint entries are only valid for a campaign that would
    simulate them identically: same scenario seed material, slot budget
    and simulator options.  Heuristics and trial count are deliberately
    absent — they change *which* units exist (handled per entry), not
    what an existing unit's numbers mean.
    """
    roots = sorted(
        {repr(getattr(unit.scenario_ref, "root_seed", None)) for unit in units}
    )
    return {
        "root_seeds": roots,
        "max_slots": config.max_slots,
        "options": asdict(config.options),
    }


def run_campaign(
    scenarios: Iterable[Scenario],
    config: CampaignConfig,
    *,
    backend: Union[None, str, ExecutionBackend] = None,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[int, tuple], None]] = None,
    checkpoint=None,
) -> CampaignResult:
    """Run the full campaign on an execution backend.

    Args:
        scenarios: the scenario population (e.g. from
            :class:`~repro.workload.scenarios.ScenarioGenerator`).
        config: execution parameters.
        backend: ``None``/``"serial"``, ``"thread"``, ``"process"``, or an
            :class:`~repro.experiments.backends.ExecutionBackend`
            instance.  Statistics are bit-identical across backends.
        jobs: worker count when ``backend`` is a name.
        progress: optional callback ``(instances_done, instance_key)``
            invoked in campaign order as instances aggregate.
        checkpoint: optional path to a
            :class:`~repro.experiments.persistence.CampaignCheckpoint`
            journal.  Completed units are appended as they finish; units
            already present are restored without re-simulation, so an
            interrupted campaign resumes where it left off.

    Returns:
        The aggregated :class:`CampaignResult`.
    """
    engine = make_backend(backend, jobs=jobs)
    units = list(iter_work_units(scenarios, config))

    journal = None
    outcomes: Dict[int, CampaignUnitResult] = {}
    pending: List[Tuple[int, CampaignUnit]] = []
    if checkpoint is not None:
        from .persistence import CampaignCheckpoint

        if hasattr(checkpoint, "load") and hasattr(checkpoint, "append"):
            journal = checkpoint  # CampaignCheckpoint or ShardedCheckpoint
        else:
            journal = CampaignCheckpoint(
                checkpoint, meta=_campaign_fingerprint(units, config)
            )
        stored = journal.load()
        for index, unit in enumerate(units):
            entry = stored.get(unit.instance_key)
            if entry is not None and set(entry[0]) == set(unit.heuristics):
                outcomes[index] = CampaignUnitResult(
                    makespans=dict(entry[0]), truncated=tuple(entry[1])
                )
            else:
                pending.append((index, unit))
    else:
        pending = list(enumerate(units))

    result = CampaignResult()
    next_to_fold = 0

    def fold_ready() -> None:
        nonlocal next_to_fold
        while next_to_fold in outcomes:
            unit = units[next_to_fold]
            _fold_unit(result, unit, outcomes.pop(next_to_fold))
            if progress is not None:
                progress(result.instances, unit.instance_key)
            next_to_fold += 1

    fold_ready()
    if pending:
        index_map = [index for index, _unit in pending]
        for local_index, outcome in engine.run(
            [unit for _index, unit in pending]
        ):
            index = index_map[local_index]
            if journal is not None:
                journal.append(
                    units[index].instance_key,
                    outcome.makespans,
                    outcome.truncated,
                )
            outcomes[index] = outcome
            fold_ready()
    if next_to_fold != len(units):  # pragma: no cover - backend contract
        raise RuntimeError(
            f"backend {engine!r} yielded {next_to_fold} of {len(units)} units"
        )
    return result
