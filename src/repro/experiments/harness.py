"""Experiment harness: run scenario × trial × heuristic campaigns.

The harness realises the paper's evaluation protocol (Section 7): for each
scenario and trial, every heuristic runs against the *same* availability
sample (the trial seed drives the Markov transitions; the heuristic's own
randomness uses a separate stream), the makespan to complete the target
iterations is recorded, and results stream into a
:class:`~repro.experiments.dfb.DfbAccumulator`.

Runs that exceed the slot budget (possible only for pathological chains)
are scored with the budget as their makespan and flagged in the campaign
report — silently dropping them would bias dfb toward lucky heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.heuristics.registry import make_scheduler
from ..sim.master import MasterSimulator, SimulatorOptions
from ..workload.scenarios import Scenario
from .dfb import DfbAccumulator

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign", "run_instance"]


@dataclass(frozen=True)
class CampaignConfig:
    """Execution parameters for a campaign.

    Attributes:
        heuristics: registry names to compare.
        trials: trials per scenario (paper: 10).
        max_slots: per-run slot budget (safety bound; generous by default).
        options: simulator options (replication on, audit off — the
            paper's configuration — unless overridden).
    """

    heuristics: Sequence[str]
    trials: int = 10
    max_slots: int = 500_000
    options: SimulatorOptions = field(default_factory=SimulatorOptions)

    def __post_init__(self) -> None:
        if not self.heuristics:
            raise ValueError("campaign needs at least one heuristic")
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")
        if self.max_slots <= 0:
            raise ValueError(f"max_slots must be positive, got {self.max_slots}")


@dataclass
class CampaignResult:
    """Aggregated campaign outcome.

    Attributes:
        accumulator: dfb/wins aggregates over all instances.
        per_scenario: per-scenario accumulators keyed by scenario key
            (used by Figure 2's per-``wmin`` averaging).
        truncated_runs: (scenario key, trial, heuristic) triples whose run
            hit the slot budget.
        instances: total problem instances executed.
        records: raw per-instance makespans, ``(instance key, {heuristic:
            makespan})`` in execution order — the ground data everything
            else aggregates, kept so campaigns can be serialised and
            re-analysed (:mod:`repro.experiments.persistence`).
    """

    accumulator: DfbAccumulator = field(default_factory=DfbAccumulator)
    per_scenario: Dict[tuple, DfbAccumulator] = field(default_factory=dict)
    truncated_runs: List[tuple] = field(default_factory=list)
    instances: int = 0
    records: List[tuple] = field(default_factory=list)


def run_instance(
    scenario: Scenario,
    trial: int,
    heuristic: str,
    *,
    max_slots: int = 500_000,
    options: Optional[SimulatorOptions] = None,
) -> float:
    """Run one (scenario, trial, heuristic) instance; return the makespan.

    Returns ``max_slots`` when the run did not finish within the budget.
    """
    platform = scenario.build_platform(trial)
    scheduler = make_scheduler(heuristic, platform=platform)
    sim = MasterSimulator(
        platform,
        scenario.app,
        scheduler,
        options=options or SimulatorOptions(),
        rng=scenario.scheduler_rng(trial, heuristic),
    )
    report = sim.run(max_slots=max_slots)
    return float(report.makespan if report.makespan is not None else max_slots)


def run_campaign(
    scenarios: Iterable[Scenario],
    config: CampaignConfig,
    *,
    progress: Optional[Callable[[int, tuple], None]] = None,
) -> CampaignResult:
    """Run the full campaign.

    Args:
        scenarios: the scenario population (e.g. from
            :class:`~repro.workload.scenarios.ScenarioGenerator`).
        config: execution parameters.
        progress: optional callback ``(instances_done, instance_key)``
            invoked after each instance (scenario × trial).

    Returns:
        The aggregated :class:`CampaignResult`.
    """
    result = CampaignResult()
    for scenario in scenarios:
        scenario_acc = result.per_scenario.setdefault(
            scenario.key, DfbAccumulator()
        )
        for trial in range(config.trials):
            makespans: Dict[str, float] = {}
            for heuristic in config.heuristics:
                makespan = run_instance(
                    scenario,
                    trial,
                    heuristic,
                    max_slots=config.max_slots,
                    options=config.options,
                )
                if makespan >= config.max_slots:
                    result.truncated_runs.append(
                        (scenario.key, trial, heuristic)
                    )
                makespans[heuristic] = makespan
            instance_key = (*scenario.key, trial)
            result.accumulator.add_instance(instance_key, makespans)
            scenario_acc.add_instance(instance_key, makespans)
            result.records.append((instance_key, dict(makespans)))
            result.instances += 1
            if progress is not None:
                progress(result.instances, instance_key)
    return result
