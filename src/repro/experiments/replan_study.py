"""Relaxed replan-policy validation study (DESIGN.md §10).

The relaxed tiers of the round-relevance gating subsystem
(``SimulatorOptions.replan_policy``: ``sticky``, ``debounce:k``,
``relevant-up``) *change the replan-trigger semantics* — unlike the exact
elision tier they are not bit-identical to the paper's event-driven
design, so they must be validated the way the paper's own claims are:
against the **shape targets** — Table 2/3 (per-heuristic average
degradation-from-best and the induced ranking) and Figure 2 (dfb-vs-wmin
curves) — alongside the speedup they buy.

For each policy the study runs the same paired population (identical
availability samples across heuristics *and* policies) and reports,
relative to the ``event`` baseline:

* ``avg dfb`` per heuristic and the **maximum dfb shift** across the
  Table-2-style population (how much the headline table moves);
* the **rank correlation** (Spearman) between the policy's heuristic
  ordering and the baseline's — the paper's qualitative claim is the
  *ordering* (EMCT* first, random last), so a relaxed policy that keeps
  rho ≈ 1 preserves the story even if absolute dfb drifts;
* the **dfb-vs-wmin curve shift** (Figure 2's shape): the maximum
  per-(wmin, heuristic) change of average dfb;
* the **makespan inflation** (mean makespan vs baseline, in percent) —
  the real price of replanning less;
* the measured **round reduction** and **wall-clock speedup**.

Default tolerances (reported, not enforced): a policy is flagged
``shape-preserving`` when its maximum dfb shift stays within
:data:`DFB_SHIFT_TOLERANCE` points *and* its rank correlation stays above
:data:`RANK_TOLERANCE`.  ``relevant-up`` is expected to pass both with
margin (it hard-codes the churn class the exact tier most often proves
irrelevant); ``sticky`` and coarse debounce windows trade shape for
speed and are expected to fail the makespan side visibly — that is the
point of printing it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.plotting import format_table
from ..core.heuristics.registry import make_scheduler
from ..sim.master import MasterSimulator, SimulatorOptions
from ..sim.relevance import parse_replan_policy
from ..workload.scenarios import ScenarioGenerator
from .dfb import DfbAccumulator

__all__ = [
    "DFB_SHIFT_TOLERANCE",
    "RANK_TOLERANCE",
    "PolicyOutcome",
    "ReplanStudyResult",
    "run_replan_study",
    "render_replan_study",
]

#: Max tolerated shift of any per-heuristic average dfb (percent points).
DFB_SHIFT_TOLERANCE = 2.0
#: Min tolerated Spearman rank correlation of the heuristic ordering.
RANK_TOLERANCE = 0.95

#: Policies compared by default (the event baseline first).
DEFAULT_POLICIES: Tuple[str, ...] = (
    "event",
    "relevant-up",
    "debounce:5",
    "sticky",
    "every-slot",
)

#: Representative ranking population: the paper's headline family, the
#: probability scores, and two random baselines to anchor the tail.
DEFAULT_HEURISTICS: Tuple[str, ...] = (
    "emct*",
    "emct",
    "mct",
    "ud*",
    "lw*",
    "random1w",
    "random",
)

#: The dfb-vs-wmin axis of the Figure 2 shape check.
DEFAULT_WMIN_VALUES: Tuple[int, ...] = (1, 5, 10)


@dataclass
class PolicyOutcome:
    """One policy's measured outcome over the study population.

    Attributes:
        policy: the policy spec string.
        avg_dfb: heuristic → average dfb over all instances.
        dfb_by_wmin: wmin → (heuristic → average dfb) — Figure 2's axis.
        mean_makespan: heuristic → mean makespan.
        rounds: total scheduler rounds executed across all runs.
        rounds_elided: total rounds skipped by the exact tier (the exact
            tier stays on in every arm — it is bit-identical).
        seconds: wall-clock spent simulating this policy's sweep.
    """

    policy: str
    avg_dfb: Dict[str, float] = field(default_factory=dict)
    dfb_by_wmin: Dict[int, Dict[str, float]] = field(default_factory=dict)
    mean_makespan: Dict[str, float] = field(default_factory=dict)
    rounds: int = 0
    rounds_elided: int = 0
    seconds: float = 0.0

    def ranking(self) -> List[str]:
        """Heuristics ordered best (lowest avg dfb) to worst."""
        return sorted(self.avg_dfb, key=lambda name: self.avg_dfb[name])


@dataclass
class ReplanStudyResult:
    """The study's full outcome (baseline first in ``outcomes``)."""

    outcomes: List[PolicyOutcome]
    instances: int
    heuristics: Tuple[str, ...]
    wmin_values: Tuple[int, ...]

    @property
    def baseline(self) -> PolicyOutcome:
        return self.outcomes[0]

    def deviation(self, outcome: PolicyOutcome) -> Dict[str, float]:
        """Shape-deviation metrics of ``outcome`` vs the baseline."""
        base = self.baseline
        max_dfb_shift = max(
            (
                abs(outcome.avg_dfb[name] - base.avg_dfb[name])
                for name in base.avg_dfb
            ),
            default=0.0,
        )
        curve_shift = 0.0
        for wmin, base_row in base.dfb_by_wmin.items():
            row = outcome.dfb_by_wmin.get(wmin, {})
            for name, value in base_row.items():
                curve_shift = max(curve_shift, abs(row.get(name, value) - value))
        rho = _spearman(base.ranking(), outcome.ranking())
        base_makespan = sum(base.mean_makespan.values())
        makespan_pct = (
            100.0
            * (sum(outcome.mean_makespan.values()) - base_makespan)
            / base_makespan
            if base_makespan
            else 0.0
        )
        return {
            "max_dfb_shift": max_dfb_shift,
            "figure2_max_shift": curve_shift,
            "rank_correlation": rho,
            "makespan_inflation_pct": makespan_pct,
            "round_reduction": (
                1.0 - outcome.rounds / base.rounds if base.rounds else 0.0
            ),
            "speedup": (
                base.seconds / outcome.seconds if outcome.seconds else 0.0
            ),
            "shape_preserving": (
                max_dfb_shift <= DFB_SHIFT_TOLERANCE and rho >= RANK_TOLERANCE
            ),
        }


def _spearman(base_order: List[str], order: List[str]) -> float:
    """Spearman rank correlation of two orderings of the same names."""
    n = len(base_order)
    if n < 2:
        return 1.0
    position = {name: index for index, name in enumerate(order)}
    d2 = sum(
        (index - position[name]) ** 2
        for index, name in enumerate(base_order)
    )
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def run_replan_study(
    *,
    policies: Sequence[str] = DEFAULT_POLICIES,
    heuristics: Sequence[str] = DEFAULT_HEURISTICS,
    scenarios: int = 2,
    trials: int = 2,
    seed: int = 12061,
    n: int = 20,
    ncom: int = 10,
    wmin_values: Sequence[int] = DEFAULT_WMIN_VALUES,
    max_slots: int = 400_000,
) -> ReplanStudyResult:
    """Run the relaxed-policy validation sweep.

    Every (scenario, trial) presents the identical availability sample to
    every heuristic *and* every policy (the platform RNG derivation does
    not involve either), so all comparisons are paired.

    Args:
        policies: policy spec strings; the first is the baseline and the
            convention is to keep that ``"event"``.
        heuristics: registry names ranked by the study.
        scenarios: scenarios per (n, ncom, wmin) cell.
        trials: trials per scenario.
        seed: campaign seed.
        n, ncom: the fixed cell parameters; ``wmin_values`` spans the
            Figure 2 axis.
        wmin_values: wmin grid (the Figure 2 shape check).
        max_slots: per-run slot budget (truncated runs score the budget).
    """
    for policy in policies:
        parse_replan_policy(policy)  # fail fast on typos
    if not policies:
        raise ValueError("need at least one policy (the baseline)")
    generator = ScenarioGenerator(seed)
    population = [
        (wmin, generator.scenario(n, ncom, wmin, index))
        for wmin in wmin_values
        for index in range(scenarios)
    ]
    outcomes: List[PolicyOutcome] = []
    instances = 0
    for policy in policies:
        options = SimulatorOptions(replan_policy=policy)
        accumulator = DfbAccumulator()
        by_wmin: Dict[int, DfbAccumulator] = {
            wmin: DfbAccumulator() for wmin in wmin_values
        }
        makespan_totals: Dict[str, float] = {name: 0.0 for name in heuristics}
        rounds = 0
        rounds_elided = 0
        count = 0
        begin = time.perf_counter()
        for wmin, scenario in population:
            for trial in range(trials):
                makespans: Dict[str, float] = {}
                for heuristic in heuristics:
                    platform = scenario.build_platform(trial)
                    sim = MasterSimulator(
                        platform,
                        scenario.app,
                        make_scheduler(heuristic, platform=platform),
                        options=options,
                        rng=scenario.scheduler_rng(trial, heuristic),
                    )
                    report = sim.run(max_slots=max_slots)
                    makespan = (
                        report.makespan
                        if report.makespan is not None
                        else max_slots
                    )
                    makespans[heuristic] = float(makespan)
                    makespan_totals[heuristic] += makespan
                    rounds += report.scheduler_rounds
                    rounds_elided += sim.rounds_elided
                key = (*scenario.key, trial)
                accumulator.add_instance(key, makespans)
                by_wmin[wmin].add_instance(key, makespans)
                count += 1
        seconds = time.perf_counter() - begin
        outcomes.append(
            PolicyOutcome(
                policy=policy,
                avg_dfb={
                    name: accumulator.average_dfb(name) for name in heuristics
                },
                dfb_by_wmin={
                    wmin: {
                        name: acc.average_dfb(name) for name in heuristics
                    }
                    for wmin, acc in by_wmin.items()
                },
                mean_makespan={
                    name: makespan_totals[name] / count for name in heuristics
                },
                rounds=rounds,
                rounds_elided=rounds_elided,
                seconds=seconds,
            )
        )
        instances = count
    return ReplanStudyResult(
        outcomes=outcomes,
        instances=instances,
        heuristics=tuple(heuristics),
        wmin_values=tuple(wmin_values),
    )


def render_replan_study(result: ReplanStudyResult) -> str:
    """Text rendering: the dfb table per policy + the deviation summary."""
    blocks: List[str] = []
    base = result.baseline
    header = ["heuristic"] + [outcome.policy for outcome in result.outcomes]
    rows = []
    for name in sorted(base.avg_dfb, key=lambda h: base.avg_dfb[h]):
        rows.append(
            (name,)
            + tuple(
                round(outcome.avg_dfb[name], 2) for outcome in result.outcomes
            )
        )
    blocks.append(
        format_table(
            header,
            rows,
            title=(
                f"average dfb per replan policy "
                f"({result.instances} paired instances)"
            ),
        )
    )
    dev_rows = []
    for outcome in result.outcomes[1:]:
        deviation = result.deviation(outcome)
        dev_rows.append(
            (
                outcome.policy,
                round(deviation["max_dfb_shift"], 2),
                round(deviation["figure2_max_shift"], 2),
                round(deviation["rank_correlation"], 3),
                round(deviation["makespan_inflation_pct"], 2),
                round(100.0 * deviation["round_reduction"], 1),
                round(deviation["speedup"], 2),
                "yes" if deviation["shape_preserving"] else "NO",
            )
        )
    blocks.append(
        format_table(
            [
                "policy",
                "max dfb shift",
                "fig2 shift",
                "rank rho",
                "makespan +%",
                "rounds -%",
                "speedup",
                "shape-ok",
            ],
            dev_rows,
            title=(
                "deviation vs event baseline "
                f"(tolerances: dfb shift <= {DFB_SHIFT_TOLERANCE}, "
                f"rho >= {RANK_TOLERANCE})"
            ),
        )
    )
    return "\n\n".join(blocks)
