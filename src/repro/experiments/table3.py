"""Table 3 regenerator: contention-prone experiments (×5 and ×10 comms).

The paper reruns the greedy heuristics on communication-heavy scenarios
(``n = 20``, ``ncom = 5``, ``wmin = 1``) with transfer times scaled by 5
and by 10 (100 scenarios × 10 trials each), showing that the
contention-corrected (``*``) variants win as communication intensifies and
that UD\\*/UD take the lead at ×10 while plain MCT collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..analysis.plotting import format_table
from ..core.heuristics.registry import GREEDY_HEURISTICS
from ..sim.master import SimulatorOptions
from ..workload.scenarios import ScenarioGenerator
from .harness import CampaignConfig, CampaignResult, run_campaign

__all__ = ["PAPER_TABLE3", "Table3Result", "run_table3", "render_table3"]

#: Published Table 3 average dfb values, keyed by communication factor.
PAPER_TABLE3: Dict[int, Dict[str, float]] = {
    5: {
        "emct*": 3.87,
        "mct*": 4.10,
        "ud*": 5.23,
        "emct": 6.13,
        "ud": 6.42,
        "mct": 7.70,
        "lw*": 8.76,
        "lw": 10.11,
    },
    10: {
        "ud*": 2.76,
        "ud": 3.20,
        "emct*": 3.66,
        "lw*": 4.02,
        "mct*": 4.22,
        "lw": 4.46,
        "emct": 8.02,
        "mct": 15.50,
    },
}


@dataclass
class Table3Result:
    """Measured Table 3 half (one communication factor)."""

    campaign: CampaignResult
    comm_factor: int
    scenarios: int
    trials: int

    def rows(self):
        """``(heuristic, measured dfb)`` best-first."""
        return [
            (name, dfb) for name, dfb, _wins in self.campaign.accumulator.table()
        ]


def run_table3(
    comm_factor: int,
    *,
    scenarios: int = 10,
    trials: int = 2,
    heuristics: Optional[Sequence[str]] = None,
    seed=12061,
    progress=None,
    backend=None,
    jobs: Optional[int] = None,
    checkpoint=None,
    step_mode: str = "span",
    replan_policy: str = "event",
    engine: str = "per-run",
) -> Table3Result:
    """Execute one half of Table 3 (``comm_factor`` 5 or 10).

    Paper scale is ``scenarios=100, trials=10``; defaults are laptop-scale.
    ``backend``/``jobs``/``checkpoint`` configure parallel and resumable
    execution (statistics are backend-independent); ``step_mode`` selects
    the stepping mode (DESIGN.md §6, bit-identical results);
    ``replan_policy`` the replan-trigger policy (DESIGN.md §10 —
    relaxed policies change the results; validate with
    ``repro-experiments replan-study``).
    """
    if comm_factor not in (5, 10):
        raise ValueError(
            f"comm_factor must be 5 or 10 (the paper's two columns), got {comm_factor}"
        )
    generator = ScenarioGenerator(seed)
    population = generator.contention_prone(comm_factor, scenarios)
    config = CampaignConfig(
        heuristics=tuple(heuristics or GREEDY_HEURISTICS),
        trials=trials,
        options=SimulatorOptions(
            step_mode=step_mode, replan_policy=replan_policy
        ),
        engine=engine,
    )
    campaign = run_campaign(
        population,
        config,
        progress=progress,
        backend=backend,
        jobs=jobs,
        checkpoint=checkpoint,
    )
    return Table3Result(
        campaign=campaign,
        comm_factor=comm_factor,
        scenarios=scenarios,
        trials=trials,
    )


def render_table3(result: Table3Result) -> str:
    """Measured-vs-paper rendering of one Table 3 half."""
    paper = PAPER_TABLE3[result.comm_factor]
    rows = []
    for name, dfb in result.rows():
        rows.append((name, round(dfb, 2), paper.get(name, float("nan"))))
    table = format_table(
        ["Algorithm", "dfb (measured)", "dfb (paper)"],
        rows,
        title=(
            f"Table 3 — communication times ×{result.comm_factor} "
            f"({result.campaign.instances} instances; paper: 1,000)"
        ),
    )
    notes = [
        "",
        f"n=20 ncom=5 wmin=1, Tdata={result.comm_factor}, "
        f"Tprog={5 * result.comm_factor}; "
        f"{result.scenarios} scenario(s) × {result.trials} trial(s)",
        "shape targets: '*' variants beat their plain counterparts; "
        "at ×10, UD*/UD lead and plain MCT is worst.",
    ]
    if result.campaign.truncated_runs:
        notes.append(
            f"WARNING: {len(result.campaign.truncated_runs)} run(s) hit the "
            "slot budget."
        )
    return table + "\n" + "\n".join(notes)
