"""Figure 2 regenerator: average dfb versus ``wmin``.

The paper's Figure 2 plots, for six heuristics (mct, mct\\*, emct, emct\\*,
ud\\*, lw\\*), the dfb averaged over all instances sharing a ``wmin`` value.
Increasing ``wmin`` scales task durations relative to the availability
time-scale, so state transitions during a task become more likely: the
figure shows the EMCT curves dipping below MCT around ``wmin ≈ 3`` and
UD\\* overtaking EMCT at large ``wmin``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.plotting import ascii_plot, format_table
from ..sim.master import SimulatorOptions
from ..workload.scenarios import (
    PAPER_N_VALUES,
    PAPER_NCOM_VALUES,
    PAPER_WMIN_VALUES,
    ScenarioGenerator,
)
from .harness import CampaignConfig, CampaignResult, run_campaign

__all__ = ["FIGURE2_HEURISTICS", "Figure2Result", "run_figure2", "render_figure2"]

#: The six series of the paper's Figure 2, in legend order.
FIGURE2_HEURISTICS: Tuple[str, ...] = ("mct", "mct*", "emct", "emct*", "ud*", "lw*")


@dataclass
class Figure2Result:
    """Measured Figure 2 series."""

    campaign: CampaignResult
    wmin_values: Tuple[int, ...]
    heuristics: Tuple[str, ...]
    scenarios_per_cell: int
    trials: int

    def series(self) -> Dict[str, List[float]]:
        """heuristic → average dfb per ``wmin`` (aligned to wmin_values).

        Averages instance dfb over every scenario whose key carries the
        given ``wmin`` — the same marginalisation the paper uses.
        """
        out: Dict[str, List[float]] = {name: [] for name in self.heuristics}
        for wmin in self.wmin_values:
            sums = {name: 0.0 for name in self.heuristics}
            counts = {name: 0 for name in self.heuristics}
            for key, acc in self.campaign.per_scenario.items():
                # Scenario key layout: (n, ncom, wmin, comm_factor, index).
                if key[2] != wmin:
                    continue
                for name in self.heuristics:
                    values = acc.dfb_values(name)
                    sums[name] += sum(values)
                    counts[name] += len(values)
            for name in self.heuristics:
                out[name].append(
                    sums[name] / counts[name] if counts[name] else float("nan")
                )
        return out


def run_figure2(
    *,
    scenarios_per_cell: int = 2,
    trials: int = 2,
    heuristics: Sequence[str] = FIGURE2_HEURISTICS,
    n_values: Sequence[int] = PAPER_N_VALUES,
    ncom_values: Sequence[int] = PAPER_NCOM_VALUES,
    wmin_values: Sequence[int] = PAPER_WMIN_VALUES,
    seed=12061,
    progress=None,
    backend=None,
    jobs: Optional[int] = None,
    checkpoint=None,
    step_mode: str = "span",
    replan_policy: str = "event",
    engine: str = "per-run",
) -> Figure2Result:
    """Execute the Figure 2 protocol (same grid as Table 2).

    The dfb here is computed *within the plotted heuristic population*
    (the paper's figure likewise shows the six-way comparison).
    ``backend``/``jobs``/``checkpoint`` configure parallel and resumable
    execution (statistics are backend-independent); ``step_mode`` selects
    the stepping mode (DESIGN.md §6, bit-identical results);
    ``replan_policy`` the replan-trigger policy (DESIGN.md §10 —
    relaxed policies change the results; validate with
    ``repro-experiments replan-study``).
    """
    generator = ScenarioGenerator(seed)
    scenarios = list(
        generator.grid(
            scenarios_per_cell,
            n_values=tuple(n_values),
            ncom_values=tuple(ncom_values),
            wmin_values=tuple(wmin_values),
        )
    )
    config = CampaignConfig(
        heuristics=tuple(heuristics),
        trials=trials,
        options=SimulatorOptions(
            step_mode=step_mode, replan_policy=replan_policy
        ),
        engine=engine,
    )
    campaign = run_campaign(
        scenarios,
        config,
        progress=progress,
        backend=backend,
        jobs=jobs,
        checkpoint=checkpoint,
    )
    return Figure2Result(
        campaign=campaign,
        wmin_values=tuple(wmin_values),
        heuristics=tuple(heuristics),
        scenarios_per_cell=scenarios_per_cell,
        trials=trials,
    )


def render_figure2(result: Figure2Result) -> str:
    """ASCII rendering of Figure 2 plus the underlying numbers."""
    series = result.series()
    chart = ascii_plot(
        series,
        list(result.wmin_values),
        title="Figure 2 — average dfb vs wmin",
        x_label="wmin",
        y_label="average dfb (%)",
        height=18,
    )
    rows = []
    for wmin_idx, wmin in enumerate(result.wmin_values):
        rows.append(
            (wmin, *[round(series[name][wmin_idx], 2) for name in result.heuristics])
        )
    table = format_table(["wmin", *result.heuristics], rows)
    notes = (
        "\nshape targets: EMCT curves cross below MCT around wmin≈3-4; "
        "UD* overtakes EMCT at large wmin."
    )
    return chart + "\n\n" + table + notes
