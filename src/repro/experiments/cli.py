"""Command-line entry point: ``repro-experiments <command> [options]``.

Commands map one-to-one to the paper's artefacts:

* ``table2`` — average dfb + wins over the evaluation grid;
* ``table3 --factor {5,10}`` — the contention-prone columns;
* ``figure2`` — dfb-vs-wmin series (ASCII chart + numbers);
* ``figure1`` — the NP-completeness gadget and certificate round trip;
* ``counterexample`` — the Section 4 MCT-vs-optimal worked example;
* ``demo`` — a single simulation with a readable event trace.

All campaign commands accept ``--scenarios`` and ``--trials`` to scale
between quick smoke runs and the paper's full protocol (247 × 10), plus
``--backend``/``--jobs`` to run the sweep on a parallel execution backend
(DESIGN.md §4; statistics are bit-identical across backends — including
``--backend distributed``, the loopback coordinator/worker service) and
``--checkpoint PATH`` to journal completed work units and resume an
interrupted campaign.

Three commands operate the distributed campaign service (DESIGN.md §13):

* ``coordinator`` — run a study's campaign as a coordinator that serves
  units to workers over TCP, journalling to per-shard checkpoints;
* ``worker`` — connect to a coordinator and execute units until done;
* ``campaign-status`` — live progress view over a checkpoint directory
  (units done/pending/in-flight, per-worker throughput, ETA).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Scheduling Parallel "
            "Iterative Applications on Volatile Resources' (IPDPS 2011)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_args(p: argparse.ArgumentParser):
        from .backends import available_backends

        p.add_argument(
            "--backend",
            choices=available_backends(),
            default="serial",
            help="execution backend (results are backend-independent)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="parallel workers (default: CPU count; ignored by serial)",
        )
        p.add_argument(
            "--step-mode",
            choices=("span", "slot"),
            default="span",
            help=(
                "simulator stepping mode (DESIGN.md §6): 'span' skips "
                "ahead between events, 'slot' is the one-slot-at-a-time "
                "oracle; results are bit-identical"
            ),
        )
        p.add_argument(
            "--replan-policy",
            default="event",
            metavar="POLICY",
            help=(
                "replan-trigger policy (DESIGN.md §10): 'event' (the "
                "paper's semantics, default), 'every-slot', or a relaxed "
                "policy — 'sticky', 'debounce:k', 'relevant-up'.  Relaxed "
                "policies change the results; validate with the "
                "replan-study command"
            ),
        )

    def add_campaign_args(p: argparse.ArgumentParser, scenarios_default: int):
        p.add_argument(
            "--scenarios",
            type=int,
            default=scenarios_default,
            help=f"scenarios per cell (default {scenarios_default}; paper: 247)",
        )
        p.add_argument(
            "--trials", type=int, default=2, help="trials per scenario (paper: 10)"
        )
        p.add_argument("--seed", type=int, default=12061, help="campaign seed")
        p.add_argument(
            "--progress", action="store_true", help="print instance progress"
        )
        add_backend_args(p)
        p.add_argument(
            "--engine",
            choices=("per-run", "batch"),
            default="per-run",
            help=(
                "per-unit execution engine (DESIGN.md §11): 'per-run' "
                "simulates each instance independently (the oracle), "
                "'batch' advances each unit's heuristics as one cohort "
                "sharing traces and belief columns; results are "
                "bit-identical"
            ),
        )
        p.add_argument(
            "--checkpoint",
            default=None,
            metavar="PATH",
            help=(
                "journal completed (scenario, trial) units here and resume "
                "from it on restart"
            ),
        )

    t2 = sub.add_parser("table2", help="Table 2: dfb + wins, all 17 heuristics")
    add_campaign_args(t2, 1)
    t2.add_argument(
        "--wmin",
        type=int,
        nargs="*",
        default=None,
        help="restrict wmin values (default: 1..10)",
    )

    t3 = sub.add_parser("table3", help="Table 3: contention-prone columns")
    add_campaign_args(t3, 10)
    t3.add_argument(
        "--factor",
        type=int,
        choices=(5, 10),
        required=True,
        help="communication scaling factor (paper columns: 5 and 10)",
    )

    f2 = sub.add_parser("figure2", help="Figure 2: dfb vs wmin")
    add_campaign_args(f2, 1)

    sub.add_parser("figure1", help="Figure 1: NP-completeness gadget")
    sub.add_parser("counterexample", help="Section 4 worked example")

    t2v = sub.add_parser(
        "theorem2", help="validate Lemma 1 / Theorem 2 vs Monte Carlo"
    )
    t2v.add_argument("--chains", type=int, default=10)
    t2v.add_argument("--samples", type=int, default=20_000)

    dl = sub.add_parser(
        "deadline", help="Section 3.4 objective: iterations within N slots"
    )
    dl.add_argument("--slots", type=int, default=2000, help="the deadline N")
    dl.add_argument("--scenarios", type=int, default=4)
    dl.add_argument("--trials", type=int, default=2)
    dl.add_argument(
        "--proactive", action="store_true",
        help="enable the proactive-termination extension",
    )
    add_backend_args(dl)

    mm = sub.add_parser(
        "mismatch", help="Markov beliefs vs Weibull ground truth (§8 future work)"
    )
    mm.add_argument("--trials", type=int, default=3)
    mm.add_argument("--hosts", type=int, default=12)
    add_backend_args(mm)

    ab = sub.add_parser("ablation", help="design-choice ablations (DESIGN.md §5)")
    ab.add_argument(
        "name",
        choices=("replication", "replanning", "ud-exact", "contention",
                 "proactive"),
    )
    ab.add_argument("--scenarios", type=int, default=3)
    ab.add_argument("--trials", type=int, default=2)
    add_backend_args(ab)

    rp = sub.add_parser(
        "replan-study",
        help="relaxed replan-policy validation vs the paper's shape targets",
    )
    rp.add_argument("--scenarios", type=int, default=2, help="scenarios/cell")
    rp.add_argument("--trials", type=int, default=2, help="trials/scenario")
    rp.add_argument("--seed", type=int, default=12061)
    rp.add_argument(
        "--policies",
        nargs="*",
        default=None,
        metavar="POLICY",
        help=(
            "policy specs, baseline first (default: event relevant-up "
            "debounce:5 sticky every-slot)"
        ),
    )
    rp.add_argument(
        "--heuristics", nargs="*", default=None, help="heuristics to rank"
    )
    rp.add_argument(
        "--wmin", type=int, nargs="*", default=None,
        help="wmin axis of the Figure 2 shape check (default: 1 5 10)",
    )

    co = sub.add_parser(
        "coordinator",
        help="serve a study's campaign to distributed workers (DESIGN.md §13)",
    )
    co.add_argument(
        "--study",
        choices=("table2", "table3", "figure2"),
        default="table2",
        help="which campaign to coordinate",
    )
    co.add_argument(
        "--factor",
        type=int,
        choices=(5, 10),
        default=5,
        help="table3 communication factor (ignored by other studies)",
    )
    co.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="listen address (port 0 picks a free port, printed on start)",
    )
    co.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "shard-journal directory: results persist as they arrive and "
            "a restarted coordinator resumes without re-executing them"
        ),
    )
    co.add_argument(
        "--shards", type=int, default=4, help="shard-journal count"
    )
    co.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="units per assignment (default: guided self-scheduling)",
    )
    co.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="seconds before an unrenewed assignment is re-issued",
    )
    co.add_argument(
        "--local-workers",
        type=int,
        default=0,
        help="also run this many in-process workers (0: external only)",
    )
    co.add_argument("--scenarios", type=int, default=1, help="scenarios/cell")
    co.add_argument("--trials", type=int, default=2, help="trials/scenario")
    co.add_argument("--seed", type=int, default=12061)
    co.add_argument(
        "--wmin", type=int, nargs="*", default=None,
        help="restrict wmin values (table2/figure2)",
    )
    co.add_argument("--progress", action="store_true")

    wk = sub.add_parser(
        "worker", help="execute campaign units for a coordinator"
    )
    wk.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address",
    )
    wk.add_argument(
        "--jobs", type=int, default=1, help="worker threads in this process"
    )
    wk.add_argument(
        "--worker-id",
        default=None,
        help="wire identity prefix (default: pid-derived)",
    )
    wk.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the initial connection",
    )

    st = sub.add_parser(
        "campaign-status",
        help="progress view over a campaign checkpoint directory",
    )
    st.add_argument("checkpoint_dir", help="directory holding shard journals")
    st.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    demo = sub.add_parser("demo", help="one simulation with an event trace")
    demo.add_argument("--heuristic", default="emct*", help="heuristic name")
    demo.add_argument("--seed", type=int, default=7, help="demo seed")
    demo.add_argument("--tasks", type=int, default=8, help="tasks per iteration")
    demo.add_argument("--iterations", type=int, default=3, help="iterations")
    return parser


def _progress_printer(enabled: bool):
    if not enabled:
        return None
    start = time.time()

    def callback(done: int, key):
        if done % 25 == 0:
            rate = done / max(time.time() - start, 1e-9)
            print(f"  … {done} instances ({rate:.1f}/s), last {key}", file=sys.stderr)

    return callback


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "table2":
        from .table2 import render_table2, run_table2

        kwargs = {}
        if args.wmin:
            kwargs["wmin_values"] = tuple(args.wmin)
        result = run_table2(
            scenarios_per_cell=args.scenarios,
            trials=args.trials,
            seed=args.seed,
            progress=_progress_printer(args.progress),
            backend=args.backend,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            step_mode=args.step_mode,
            replan_policy=args.replan_policy,
            engine=args.engine,
            **kwargs,
        )
        print(render_table2(result))
    elif args.command == "table3":
        from .table3 import render_table3, run_table3

        result = run_table3(
            args.factor,
            scenarios=args.scenarios,
            trials=args.trials,
            seed=args.seed,
            progress=_progress_printer(args.progress),
            backend=args.backend,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            step_mode=args.step_mode,
            replan_policy=args.replan_policy,
            engine=args.engine,
        )
        print(render_table3(result))
    elif args.command == "figure2":
        from .figure2 import render_figure2, run_figure2

        result = run_figure2(
            scenarios_per_cell=args.scenarios,
            trials=args.trials,
            seed=args.seed,
            progress=_progress_printer(args.progress),
            backend=args.backend,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            step_mode=args.step_mode,
            replan_policy=args.replan_policy,
            engine=args.engine,
        )
        print(render_figure2(result))
    elif args.command == "figure1":
        from .offline_study import figure1_study

        study = figure1_study()
        print(study.gadget)
        print()
        print(f"satisfying assignment: {study.satisfying_assignment}")
        print(
            f"certificate schedule: {study.schedule_makespan} slots "
            f"(horizon {study.horizon})"
        )
        print(f"recovered assignment satisfies: {study.recovered_satisfies}")
    elif args.command == "counterexample":
        from .offline_study import counterexample_study

        analysis = counterexample_study()
        print(f"optimal makespan:       {analysis.optimal_makespan} (paper: 9)")
        print(f"online MCT makespan:    {analysis.mct_online_makespan}")
        print(
            "MCT first-task choice:  "
            f"P{analysis.mct_first_choice_processor + 1} (paper: P1)"
        )
    elif args.command == "theorem2":
        from .theorem2_study import render_theorem2_study, run_theorem2_study

        result = run_theorem2_study(chains=args.chains, samples=args.samples)
        print(render_theorem2_study(result))
    elif args.command == "deadline":
        from .deadline_study import render_deadline_study, run_deadline_study

        result = run_deadline_study(
            deadline_slots=args.slots,
            scenario_count=args.scenarios,
            trials=args.trials,
            proactive=args.proactive,
            backend=args.backend,
            jobs=args.jobs,
            step_mode=args.step_mode,
            replan_policy=args.replan_policy,
        )
        print(render_deadline_study(result))
    elif args.command == "mismatch":
        from .mismatch_study import render_mismatch_study, run_mismatch_study

        result = run_mismatch_study(
            p=args.hosts,
            trials=args.trials,
            backend=args.backend,
            jobs=args.jobs,
            step_mode=args.step_mode,
            replan_policy=args.replan_policy,
        )
        print(render_mismatch_study(result))
    elif args.command == "ablation":
        from .ablation import render_ablation, run_ablation

        result = run_ablation(
            args.name,
            scenarios=args.scenarios,
            trials=args.trials,
            backend=args.backend,
            jobs=args.jobs,
            step_mode=args.step_mode,
            replan_policy=args.replan_policy,
        )
        print(render_ablation(result))
    elif args.command == "replan-study":
        from .replan_study import render_replan_study, run_replan_study

        kwargs = {}
        if args.policies:
            kwargs["policies"] = tuple(args.policies)
        if args.heuristics:
            kwargs["heuristics"] = tuple(args.heuristics)
        if args.wmin:
            kwargs["wmin_values"] = tuple(args.wmin)
        result = run_replan_study(
            scenarios=args.scenarios,
            trials=args.trials,
            seed=args.seed,
            **kwargs,
        )
        print(render_replan_study(result))
    elif args.command == "coordinator":
        return _run_coordinator(args)
    elif args.command == "worker":
        return _run_worker(args)
    elif args.command == "campaign-status":
        from .distributed import campaign_status, render_campaign_status

        summary = campaign_status(args.checkpoint_dir)
        if args.json:
            import json

            print(json.dumps(summary, indent=1))
        else:
            print(render_campaign_status(summary))
    elif args.command == "demo":
        _run_demo(args)
    return 0


def _parse_address(text: str):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _run_coordinator(args) -> int:
    from .distributed import DistributedBackend, LocalCluster

    host, port = _parse_address(args.bind)
    clusters = []

    def announce(address):
        print(
            f"coordinator listening on {address[0]}:{address[1]} — start "
            f"workers with: repro-experiments worker --connect "
            f"{address[0]}:{address[1]}",
            file=sys.stderr,
        )
        if args.local_workers:
            clusters.append(
                LocalCluster(address, args.local_workers).start()
            )

    backend = DistributedBackend(
        external=True,
        host=host,
        port=port,
        chunk_size=args.chunk_size,
        lease_timeout=args.lease_timeout,
        checkpoint_dir=args.checkpoint_dir,
        shards=args.shards,
        on_listening=announce,
    )
    common = dict(
        trials=args.trials,
        seed=args.seed,
        backend=backend,
        progress=_progress_printer(args.progress),
    )
    if args.study == "table2":
        from .table2 import render_table2, run_table2

        kwargs = {"wmin_values": tuple(args.wmin)} if args.wmin else {}
        result = run_table2(
            scenarios_per_cell=args.scenarios, **common, **kwargs
        )
        print(render_table2(result))
    elif args.study == "table3":
        from .table3 import render_table3, run_table3

        result = run_table3(args.factor, scenarios=args.scenarios, **common)
        print(render_table3(result))
    else:
        from .figure2 import render_figure2, run_figure2

        result = run_figure2(scenarios_per_cell=args.scenarios, **common)
        print(render_figure2(result))
    stats = backend.last_stats
    if stats is not None:
        print(
            f"campaign complete: {stats.units_executed} executed, "
            f"{stats.units_restored} restored, {stats.reissues} re-issued, "
            f"{stats.duplicates_dropped} duplicates dropped",
            file=sys.stderr,
        )
    for cluster in clusters:
        cluster.join(timeout=5.0)
    return 0


def _run_worker(args) -> int:
    from .distributed import CampaignWorker, LocalCluster

    address = _parse_address(args.connect)
    prefix = args.worker_id

    def factory(addr, slot):
        worker_id = f"{prefix}-{slot}" if prefix else None
        return CampaignWorker(
            addr,
            worker_id=worker_id,
            connect_timeout=args.connect_timeout,
        )

    cluster = LocalCluster(address, args.jobs, worker_factory=factory)
    cluster.start()
    cluster.join(timeout=None)
    for failure in cluster.failures:
        print(f"worker failed: {failure!r}", file=sys.stderr)
    done = cluster.units_done()
    print(f"worker done: {done} units executed", file=sys.stderr)
    return 1 if cluster.failures else 0


def _run_demo(args) -> None:
    from ..analysis.gantt import render_gantt
    from ..core.heuristics.registry import make_scheduler
    from ..core.markov import paper_random_model
    from ..rng import RngFactory
    from ..sim.events import EventLog
    from ..sim.master import MasterSimulator, SimulatorOptions
    from ..sim.platform import Platform, Processor
    from ..sim.timeline import TimelineRecorder
    from ..workload.application import IterativeApplication

    factory = RngFactory(args.seed)
    processors = [
        Processor.from_markov(
            q,
            int(factory.generator("speed", q).integers(1, 10, endpoint=True)),
            paper_random_model(factory.generator("chain", q)),
            factory.generator("avail", q),
        )
        for q in range(8)
    ]
    app = IterativeApplication(
        tasks_per_iteration=args.tasks,
        iterations=args.iterations,
        t_prog=5,
        t_data=1,
    )
    log = EventLog(enabled=True)
    platform = Platform(processors, ncom=3)
    timeline = TimelineRecorder(len(platform))
    sim = MasterSimulator(
        platform,
        app,
        make_scheduler(args.heuristic, platform=platform),
        options=SimulatorOptions(audit=True),
        rng=factory.generator("sched"),
        log=log,
        timeline=timeline,
    )
    report = sim.run(max_slots=100_000)
    print(log.render())
    print()
    print("schedule (first 100 slots):")
    print(render_gantt(timeline, width=100))
    print()
    print(report.summary())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
