"""The paper's evaluation metrics: degradation-from-best and win counts.

For each problem instance (scenario × trial), the *degradation from best*
(dfb) of a heuristic is the percentage relative difference between its
makespan and the best makespan achieved by any heuristic on that instance:

.. math:: dfb_h = 100 \\cdot \\frac{M_h - \\min_{h'} M_{h'}}{\\min_{h'} M_{h'}}

A dfb of 0 means the heuristic was (tied-)best on the instance.  A *win*
is counted for every heuristic achieving the instance's best makespan
(ties count for all, which is why the paper's win counts sum to more than
the instance count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..analysis.stats import bootstrap_ci
from ..rng import RngFactory

__all__ = ["dfb_for_instance", "InstanceResult", "DfbAccumulator"]

#: Root seed of the per-heuristic bootstrap streams (see
#: :meth:`DfbAccumulator.average_dfb_ci`).
_CI_STREAM_SEED = 0xDFB_C1


def dfb_for_instance(makespans: Mapping[str, float]) -> Dict[str, float]:
    """Per-heuristic dfb values for one problem instance.

    Args:
        makespans: heuristic name → makespan on this instance.

    Returns:
        heuristic name → dfb percentage (0 for the best heuristic(s)).

    Raises:
        ValueError: on empty input or non-positive makespans.
    """
    if not makespans:
        raise ValueError("need at least one heuristic's makespan")
    best = min(makespans.values())
    if best <= 0:
        raise ValueError(f"makespans must be positive, got best={best}")
    return {
        name: 100.0 * (value - best) / best for name, value in makespans.items()
    }


@dataclass(frozen=True)
class InstanceResult:
    """One instance's outcome: makespans and derived dfb values."""

    key: tuple
    makespans: Dict[str, float]
    dfb: Dict[str, float]

    @property
    def winners(self) -> List[str]:
        """Heuristics achieving the best makespan (possibly several)."""
        return [name for name, value in self.dfb.items() if value == 0.0]


class DfbAccumulator:
    """Streams instance results into the paper's aggregate statistics.

    The accumulator is what Table 2 / Table 3 / Figure 2 consume: average
    dfb per heuristic, win counts, and per-dimension (e.g. per-``wmin``)
    averages for the figure.
    """

    def __init__(self):
        self._dfb: Dict[str, List[float]] = {}
        self._wins: Dict[str, int] = {}
        self._instances = 0

    def add_instance(self, key: tuple, makespans: Mapping[str, float]) -> InstanceResult:
        """Record one instance (scenario × trial) worth of makespans."""
        dfb = dfb_for_instance(makespans)
        for name, value in dfb.items():
            self._dfb.setdefault(name, []).append(value)
            self._wins.setdefault(name, 0)
            if value == 0.0:
                self._wins[name] += 1
        self._instances += 1
        return InstanceResult(key=key, makespans=dict(makespans), dfb=dfb)

    def merge(self, other: "DfbAccumulator") -> "DfbAccumulator":
        """Combine two accumulators into a new one (neither is mutated).

        Partial campaigns executed by different workers (or machines)
        merge associatively: per-heuristic dfb values concatenate in call
        order, wins and instance counts add.  Merging an empty accumulator
        on either side is the identity, so
        ``a.merge(b).merge(c) == a.merge(b.merge(c))`` and a fold over
        partials starting from ``DfbAccumulator()`` reproduces the
        single-process accumulator exactly — provided the partials are
        folded in instance order (aggregation order affects only the
        internal value order, which :func:`numpy.mean` is sensitive to at
        the last-bit level).
        """
        merged = DfbAccumulator()
        for source in (self, other):
            for name, values in source._dfb.items():
                merged._dfb.setdefault(name, []).extend(values)
            for name, count in source._wins.items():
                merged._wins[name] = merged._wins.get(name, 0) + count
            merged._instances += source._instances
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DfbAccumulator):
            return NotImplemented
        return (
            self._dfb == other._dfb
            and self._wins == other._wins
            and self._instances == other._instances
        )

    @property
    def instance_count(self) -> int:
        """Instances accumulated so far."""
        return self._instances

    def heuristics(self) -> List[str]:
        """Heuristic names seen so far, sorted by average dfb (best first)."""
        return sorted(self._dfb, key=lambda name: self.average_dfb(name))

    def average_dfb(self, heuristic: str) -> float:
        """Average dfb of one heuristic over all instances."""
        values = self._dfb.get(heuristic)
        if not values:
            raise KeyError(f"no results recorded for heuristic {heuristic!r}")
        return float(np.mean(values))

    def average_dfb_ci(
        self,
        heuristic: str,
        *,
        confidence: float = 0.95,
        resamples: int = 2000,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[float, float]:
        """Bootstrap confidence interval for one heuristic's average dfb.

        dfb samples are heavily right-skewed, hence the percentile
        bootstrap (:func:`repro.analysis.stats.bootstrap_ci`).  When
        ``rng`` is omitted, the resampling stream is derived
        deterministically from the *heuristic name*, so the interval is a
        pure function of the campaign data: report builds are
        reproducible bit for bit, and adding or reordering table rows
        cannot perturb another row's bounds.

        Raises:
            KeyError: when no results were recorded for ``heuristic``.
        """
        values = self._dfb.get(heuristic)
        if not values:
            raise KeyError(f"no results recorded for heuristic {heuristic!r}")
        if rng is None:
            rng = RngFactory(_CI_STREAM_SEED).generator("dfb-ci", heuristic)
        return bootstrap_ci(
            values, confidence=confidence, resamples=resamples, rng=rng
        )

    def dfb_values(self, heuristic: str) -> List[float]:
        """All recorded dfb values for one heuristic."""
        return list(self._dfb.get(heuristic, []))

    def wins(self, heuristic: str) -> int:
        """Win count of one heuristic."""
        return self._wins.get(heuristic, 0)

    def table(self) -> List[tuple]:
        """Rows ``(heuristic, average dfb, wins)`` sorted best-first."""
        return [
            (name, self.average_dfb(name), self.wins(name))
            for name in self.heuristics()
        ]
