"""Table 2 regenerator: average dfb and wins over the full grid.

The paper's Table 2 aggregates 296,400 problem instances (the full
``(n, ncom, wmin)`` grid × 247 scenarios × 10 trials) for all seventeen
heuristics.  :func:`run_table2` executes the identical protocol at a
configurable scale and prints the measured rows next to the paper's
published values, so the *shape* comparison (ranking, MCT-family on top,
EMCT ≤ MCT, randoms far behind, ``Randomxw`` ≤ ``Randomx``) is immediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.plotting import format_table
from ..core.heuristics.registry import PAPER_HEURISTICS
from ..sim.master import SimulatorOptions
from ..workload.scenarios import (
    PAPER_N_VALUES,
    PAPER_NCOM_VALUES,
    PAPER_WMIN_VALUES,
    ScenarioGenerator,
)
from .harness import CampaignConfig, CampaignResult, run_campaign

__all__ = ["PAPER_TABLE2", "Table2Result", "run_table2", "render_table2"]

#: The paper's published Table 2: heuristic → (average dfb, wins).
PAPER_TABLE2: Dict[str, Tuple[float, int]] = {
    "emct": (4.77, 80320),
    "emct*": (4.81, 78947),
    "mct": (5.35, 73946),
    "mct*": (5.46, 70952),
    "ud*": (7.06, 42578),
    "ud": (8.09, 31120),
    "lw*": (11.15, 28802),
    "lw": (12.74, 19529),
    "random1w": (28.42, 259),
    "random2w": (28.43, 301),
    "random4w": (28.51, 278),
    "random3w": (31.49, 188),
    "random3": (44.01, 87),
    "random4": (47.33, 88),
    "random1": (47.44, 36),
    "random2": (47.53, 73),
    "random": (47.87, 45),
}


@dataclass
class Table2Result:
    """Measured Table 2 rows plus provenance."""

    campaign: CampaignResult
    scenarios_per_cell: int
    trials: int
    n_values: Tuple[int, ...]
    ncom_values: Tuple[int, ...]
    wmin_values: Tuple[int, ...]

    def rows(self):
        """``(heuristic, measured dfb, measured wins)`` best-first."""
        return self.campaign.accumulator.table()

    def rows_with_ci(self, confidence: float = 0.95):
        """``(heuristic, dfb, (ci low, ci high), wins)`` best-first.

        Intervals come from :meth:`~repro.experiments.dfb.DfbAccumulator.
        average_dfb_ci`, whose resampling streams derive from the
        heuristic names — two builds of the same campaign report the
        same bounds.
        """
        acc = self.campaign.accumulator
        return [
            (name, dfb, acc.average_dfb_ci(name, confidence=confidence), wins)
            for name, dfb, wins in acc.table()
        ]


def run_table2(
    *,
    scenarios_per_cell: int = 2,
    trials: int = 2,
    heuristics: Optional[Sequence[str]] = None,
    n_values: Sequence[int] = PAPER_N_VALUES,
    ncom_values: Sequence[int] = PAPER_NCOM_VALUES,
    wmin_values: Sequence[int] = PAPER_WMIN_VALUES,
    seed=12061,
    progress=None,
    backend=None,
    jobs: Optional[int] = None,
    checkpoint=None,
    step_mode: str = "span",
    replan_policy: str = "event",
    engine: str = "per-run",
) -> Table2Result:
    """Execute the Table 2 protocol.

    Defaults are laptop-scale (the paper's full scale is
    ``scenarios_per_cell=247, trials=10``); the protocol is otherwise
    identical.  Restrict ``n_values``/``wmin_values`` for quicker runs;
    ``backend``/``jobs``/``checkpoint`` configure parallel and resumable
    execution (statistics are backend-independent).  ``step_mode``
    selects the simulator stepping mode (DESIGN.md §6; results are
    bit-identical between ``"span"`` and ``"slot"``), and
    ``replan_policy`` the replan-trigger policy (DESIGN.md §10 —
    relaxed policies change the results; validate with
    ``repro-experiments replan-study``).
    """
    generator = ScenarioGenerator(seed)
    scenarios = list(
        generator.grid(
            scenarios_per_cell,
            n_values=tuple(n_values),
            ncom_values=tuple(ncom_values),
            wmin_values=tuple(wmin_values),
        )
    )
    config = CampaignConfig(
        heuristics=tuple(heuristics or PAPER_HEURISTICS),
        trials=trials,
        options=SimulatorOptions(
            step_mode=step_mode, replan_policy=replan_policy
        ),
        engine=engine,
    )
    campaign = run_campaign(
        scenarios,
        config,
        progress=progress,
        backend=backend,
        jobs=jobs,
        checkpoint=checkpoint,
    )
    return Table2Result(
        campaign=campaign,
        scenarios_per_cell=scenarios_per_cell,
        trials=trials,
        n_values=tuple(n_values),
        ncom_values=tuple(ncom_values),
        wmin_values=tuple(wmin_values),
    )


def render_table2(result: Table2Result) -> str:
    """Measured-vs-paper Table 2 text rendering.

    The dfb column carries a deterministic 95% bootstrap interval (same
    campaign → same bounds, build after build).
    """
    rows = []
    for name, dfb, (ci_low, ci_high), wins in result.rows_with_ci():
        paper_dfb, paper_wins = PAPER_TABLE2.get(name, (float("nan"), 0))
        rows.append(
            (
                name,
                round(dfb, 2),
                f"[{ci_low:.2f}, {ci_high:.2f}]",
                wins,
                paper_dfb,
                paper_wins,
            )
        )
    table = format_table(
        [
            "Algorithm",
            "dfb (measured)",
            "dfb 95% CI",
            "wins (measured)",
            "dfb (paper)",
            "wins (paper)",
        ],
        rows,
        title=(
            "Table 2 — results over all problem instances "
            f"({result.campaign.instances} instances; paper: 296,400)"
        ),
    )
    notes = [
        "",
        f"grid: n={list(result.n_values)} ncom={list(result.ncom_values)} "
        f"wmin={list(result.wmin_values)}, "
        f"{result.scenarios_per_cell} scenario(s)/cell × {result.trials} trial(s)",
        "shape targets: MCT family best (EMCT <= MCT), then UD, then LW, "
        "randoms far behind; Randomxw beats Randomx.",
    ]
    if result.campaign.truncated_runs:
        notes.append(
            f"WARNING: {len(result.campaign.truncated_runs)} run(s) hit the "
            "slot budget and were scored at the budget."
        )
    return table + "\n" + "\n".join(notes)
