"""In-process worker fleet over loopback sockets.

``LocalCluster`` runs N :class:`CampaignWorker` sessions on daemon
threads against a coordinator address — the full wire protocol, lease
machinery and failure paths of a real deployment, with no extra
processes.  It is how ``--backend distributed`` works out of the box,
how the 1-CPU container exercises the service in tests, and where the
fault harness plugs in (pass a ``worker_factory`` that returns
:class:`~repro.experiments.distributed.faults.FaultyWorker`\\ s for some
slots).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Tuple

from .worker import CampaignWorker, WorkerStats

__all__ = ["LocalCluster"]

#: ``worker_factory(address, slot)`` → a worker for thread ``slot``.
WorkerFactory = Callable[[Tuple[str, int], int], CampaignWorker]


class LocalCluster:
    """N worker threads against one coordinator address.

    Args:
        address: the coordinator's ``(host, port)``.
        workers: thread count.
        worker_factory: optional per-slot worker constructor (fault
            injection, custom ids); default builds plain
            :class:`CampaignWorker`\\ s named ``local-<slot>``.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        workers: int = 2,
        *,
        worker_factory: Optional[WorkerFactory] = None,
    ):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.address = tuple(address)
        self.worker_count = workers
        self.worker_factory = worker_factory or (
            lambda address, slot: CampaignWorker(
                address, worker_id=f"local-{slot}"
            )
        )
        self.workers: List[CampaignWorker] = []
        self.stats: List[WorkerStats] = []
        self.failures: List[BaseException] = []
        self._threads: List[threading.Thread] = []

    def _run_slot(self, worker: CampaignWorker) -> None:
        try:
            self.stats.append(worker.run())
        except BaseException as exc:  # noqa: BLE001 - faults land here
            self.failures.append(exc)

    def start(self) -> "LocalCluster":
        for slot in range(self.worker_count):
            worker = self.worker_factory(self.address, slot)
            self.workers.append(worker)
            thread = threading.Thread(
                target=self._run_slot,
                args=(worker,),
                name=f"local-worker-{slot}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def alive(self) -> bool:
        """True while at least one worker thread is still running."""
        return any(thread.is_alive() for thread in self._threads)

    def join(self, timeout: Optional[float] = 10.0) -> None:
        """Wait for the worker threads to wind down."""
        for thread in self._threads:
            thread.join(timeout=timeout)

    def units_done(self) -> int:
        """Units executed across the fleet (including crashed sessions)."""
        return sum(worker.stats.units_done for worker in self.workers)
