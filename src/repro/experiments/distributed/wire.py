"""Wire protocol for the distributed campaign service (DESIGN.md §13).

Framing is deliberately minimal: every message is one length-prefixed
pickle — a 4-byte big-endian payload length followed by the pickled
object.  Messages are plain dicts with a ``"type"`` key, so the protocol
stays greppable and a version bump never has to fight a class hierarchy.

Sessions open with an explicit handshake (``hello`` → ``welcome`` /
``reject``) carrying :data:`PROTOCOL_VERSION` on both sides; a version
mismatch is refused *before* any campaign state moves, because a worker
built from a different tree could deserialise a unit into something that
simulates differently — silently corrupting a bit-identical campaign.

Security note: pickle implies mutual trust between coordinator and
workers.  The service is meant for loopback clusters and machines you
already control (the same trust model as ``multiprocessing``); do not
expose the port to untrusted networks.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "send_msg",
    "recv_msg",
    "client_handshake",
]

#: Bumped whenever message semantics change incompatibly.
PROTOCOL_VERSION = 1

#: Sanity bound on a single frame.  Campaign units and results are tiny
#: (specs + floats); anything near this large is a corrupt or hostile frame.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer spoke, but not our protocol (bad frame or handshake)."""


class ConnectionClosed(ConnectionError):
    """The peer went away (EOF mid-frame or before one started)."""


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {n} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_msg(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one framed message (atomic from the receiver's viewpoint)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:  # pragma: no cover - defensive
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds bound")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_msg(sock: socket.socket) -> Dict[str, Any]:
    """Receive one framed message.

    Raises:
        ConnectionClosed: on EOF (peer gone, cleanly or not).
        ProtocolError: on an over-sized or undecodable frame.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame; refusing")
    payload = _recv_exact(sock, length)
    try:
        message = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"malformed message: {message!r}")
    return message


def client_handshake(
    sock: socket.socket, *, worker_id: str, extra: Optional[dict] = None
) -> Dict[str, Any]:
    """Run the worker side of the handshake; return the ``welcome`` message.

    Raises:
        ProtocolError: when the coordinator rejects the session (version
            mismatch or explicit refusal).
    """
    hello: Dict[str, Any] = {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "worker": worker_id,
    }
    if extra:
        hello.update(extra)
    send_msg(sock, hello)
    reply = recv_msg(sock)
    if reply.get("type") != "welcome":
        raise ProtocolError(
            f"coordinator refused session: {reply.get('reason', reply)!r}"
        )
    return reply
