"""Live progress view over a campaign checkpoint directory.

``repro-experiments campaign-status <dir>`` works entirely from files —
the shard journals (ground truth: which units completed, by whom, when),
the coordinator's ``MANIFEST.json`` (how many units exist at all) and
its ``status.json`` (queue depth and in-flight leases, refreshed
atomically on every state change).  No connection to a live coordinator
is needed, so the view works mid-run, after a crash, or long after the
campaign finished — the "streaming aggregation" counterpart of the
simulator's own progress lines.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..persistence import discover_shards, read_journal_entries
from .coordinator import MANIFEST_NAME, MANIFEST_TAG, STATUS_NAME, STATUS_TAG

__all__ = ["campaign_status", "render_campaign_status"]


def _load_json(path: Path, expected_tag: str) -> Optional[dict]:
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError:
        return None  # torn mid-replace; treat as absent
    if document.get("format") != expected_tag:
        return None
    return document


def campaign_status(
    checkpoint_dir: Union[str, Path], *, now: Optional[float] = None
) -> dict:
    """Summarise a campaign's progress from its checkpoint directory.

    Returns a JSON-safe dict with unit counts (done / in-flight /
    pending), per-worker throughput derived from journal timestamps,
    and an ETA at the aggregate completion rate.  Fields whose inputs
    are missing (no manifest → no total, no status file → no in-flight
    view) are ``None`` rather than guessed.
    """
    directory = Path(checkpoint_dir)
    if not directory.is_dir():
        raise FileNotFoundError(f"{directory} is not a checkpoint directory")
    now = time.time() if now is None else now

    entries: List[dict] = []
    shard_paths = discover_shards(directory)
    for path in shard_paths:
        entries.extend(read_journal_entries(path))
    # A unit appears once per campaign, but journals from a resumed
    # coordinator plus defensive dedupe keep this robust to overlap.
    seen = {}
    for entry in entries:
        seen[tuple(entry["key"])] = entry
    done = len(seen)

    manifest = _load_json(directory / MANIFEST_NAME, MANIFEST_TAG)
    status = _load_json(directory / STATUS_NAME, STATUS_TAG)

    total = manifest.get("total_units") if manifest else None
    in_flight = None
    queued = None
    finished = None
    if status is not None:
        in_flight = sum(len(lease["units"]) for lease in status["in_flight"])
        queued = status.get("queued")
        finished = status.get("finished")
        if total is None:
            total = status.get("total")
    pending = None
    if total is not None:
        pending = max(total - done - (in_flight or 0), 0)

    # Per-worker throughput from journal timestamps: a worker's rate is
    # its unit count over its active span (first to last delivery; a
    # single delivery has no measurable span → rate None).
    workers: Dict[str, dict] = {}
    stamped = [e for e in seen.values() if "t" in e and "worker" in e]
    for entry in stamped:
        record = workers.setdefault(
            str(entry["worker"]),
            {"units": 0, "first_t": entry["t"], "last_t": entry["t"]},
        )
        record["units"] += 1
        record["first_t"] = min(record["first_t"], entry["t"])
        record["last_t"] = max(record["last_t"], entry["t"])
    for record in workers.values():
        span = record["last_t"] - record["first_t"]
        record["units_per_sec"] = (
            round(record["units"] / span, 3) if span > 0 and record["units"] > 1
            else None
        )
        record["last_seen_ago"] = round(now - record.pop("last_t"), 3)
        del record["first_t"]

    rate = None
    if len(stamped) > 1:
        t_values = [entry["t"] for entry in stamped]
        span = max(t_values) - min(t_values)
        if span > 0:
            rate = len(stamped) / span
    eta = None
    if rate and pending is not None and not finished:
        eta = round((pending + (in_flight or 0)) / rate, 1)

    return {
        "checkpoint_dir": str(directory),
        "shards": len(shard_paths),
        "total": total,
        "done": done,
        "restored": status.get("restored") if status else None,
        "in_flight": in_flight,
        "queued": queued,
        "pending": pending,
        "finished": finished,
        "reissues": status.get("reissues") if status else None,
        "duplicates_dropped": (
            status.get("duplicates_dropped") if status else None
        ),
        "workers": workers,
        "units_per_sec": round(rate, 3) if rate else None,
        "eta_seconds": eta,
    }


def render_campaign_status(summary: dict) -> str:
    """Human-readable rendering of :func:`campaign_status`."""
    lines = []
    total = summary["total"]
    done = summary["done"]
    if total:
        share = 100.0 * done / total
        lines.append(
            f"campaign: {done}/{total} units done ({share:.1f}%), "
            f"{summary['shards']} shard journal(s)"
        )
    else:
        lines.append(
            f"campaign: {done} units done "
            f"({summary['shards']} shard journal(s); no manifest — "
            "total unknown)"
        )
    if summary["restored"]:
        lines.append(f"  restored from journals: {summary['restored']}")
    if summary["in_flight"] is not None:
        lines.append(
            f"  in-flight: {summary['in_flight']}   "
            f"queued: {summary['queued']}   pending: {summary['pending']}"
        )
    elif summary["pending"] is not None:
        lines.append(f"  pending: {summary['pending']} (no live status file)")
    if summary["reissues"] is not None:
        lines.append(
            f"  re-issued: {summary['reissues']}   "
            f"duplicates dropped: {summary['duplicates_dropped']}"
        )
    for worker, record in sorted(summary["workers"].items()):
        rate = record["units_per_sec"]
        rate_text = f"{rate:.3f} units/s" if rate else "rate n/a"
        lines.append(
            f"  worker {worker}: {record['units']} units, {rate_text}, "
            f"last seen {record['last_seen_ago']:.1f}s ago"
        )
    if summary["finished"]:
        lines.append("  state: finished")
    elif summary["eta_seconds"] is not None:
        lines.append(
            f"  throughput: {summary['units_per_sec']} units/s, "
            f"ETA ~{summary['eta_seconds']}s"
        )
    return "\n".join(lines)
