"""CI smoke for the distributed campaign service (DESIGN.md §13).

Runs a small Table 2 slice three ways and gates on exact equality:

1. serially (the reference statistics);
2. distributed with an injected mid-campaign coordinator kill
   (``stop_after_units``) — the run must abort with
   :class:`CoordinatorKilled`, leaving shard journals behind;
3. resumed over the same checkpoint directory with a two-worker fleet
   whose first worker *crashes* on its first delivery — the service
   must restore the journalled units, re-issue the crashed lease, and
   finish with statistics bit-identical to the serial run.

Exit code 0 means the full kill → resume → crash → re-issue path
reproduced the serial campaign exactly.  Run it as::

    PYTHONPATH=src python -m repro.experiments.distributed.smoke
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

HEURISTICS = ("mct", "emct", "random")
SLICE = dict(n_values=(5,), ncom_values=(5,), wmin_values=(1, 5))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=12061)
    parser.add_argument(
        "--kill-after", type=int, default=2,
        help="executed units before the injected coordinator kill",
    )
    args = parser.parse_args(argv)

    from ..table2 import run_table2
    from . import (
        CampaignWorker,
        CoordinatorKilled,
        DistributedBackend,
        FaultPlan,
        FaultyWorker,
        campaign_status,
    )

    common = dict(
        scenarios_per_cell=1,
        trials=args.trials,
        heuristics=HEURISTICS,
        seed=args.seed,
        **SLICE,
    )

    started = time.time()
    serial = run_table2(backend="serial", **common)
    total = serial.campaign.instances
    if args.kill_after >= total:
        raise SystemExit(
            f"--kill-after {args.kill_after} must be < {total} units"
        )
    print(f"serial reference: {total} units", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        checkpoint_dir = Path(tmp) / "campaign"
        killed = DistributedBackend(
            jobs=2,
            chunk_size=1,
            checkpoint_dir=checkpoint_dir,
            stop_after_units=args.kill_after,
        )
        try:
            run_table2(backend=killed, **common)
        except CoordinatorKilled:
            pass
        else:
            print("FAIL: injected coordinator kill never fired", file=sys.stderr)
            return 1
        print(
            f"coordinator killed after {killed.last_stats.units_executed} "
            "units; shard journals retained",
            file=sys.stderr,
        )

        def fleet(address, slot):
            if slot == 0:
                return FaultyWorker(
                    address,
                    plan=FaultPlan(crash_before_delivery=0),
                    worker_id="smoke-crash",
                )
            return CampaignWorker(address, worker_id="smoke-rescue")

        resumed_backend = DistributedBackend(
            jobs=2,
            chunk_size=1,
            lease_timeout=10.0,
            checkpoint_dir=checkpoint_dir,
            worker_factory=fleet,
        )
        resumed = run_table2(backend=resumed_backend, **common)
        stats = resumed_backend.last_stats
        summary = campaign_status(checkpoint_dir)

    failures = []
    if resumed.campaign.records != serial.campaign.records:
        failures.append("instance records differ from serial")
    if resumed.campaign.accumulator != serial.campaign.accumulator:
        failures.append("aggregated statistics differ from serial")
    if resumed.rows_with_ci() != serial.rows_with_ci():
        failures.append("rendered table rows (incl. CIs) differ from serial")
    if stats.units_restored != args.kill_after:
        failures.append(
            f"expected {args.kill_after} restored units, got "
            f"{stats.units_restored}"
        )
    if stats.units_restored + stats.units_executed != total:
        failures.append(
            "restored + executed != total "
            f"({stats.units_restored} + {stats.units_executed} != {total})"
        )
    if not summary["finished"]:
        failures.append("campaign-status does not report finished")
    if summary["done"] != total:
        failures.append(
            f"campaign-status counts {summary['done']} of {total} units"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        "distributed smoke OK: "
        f"{stats.units_restored} restored + {stats.units_executed} executed "
        f"= {total} units; {stats.reissues} re-issued, "
        f"{stats.worker_disconnects} disconnect(s), "
        f"{stats.duplicates_dropped} duplicates dropped; statistics "
        f"bit-identical to serial ({time.time() - started:.1f}s)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
