"""Campaign worker: pull chunks, run units locally, stream results back.

A worker is a dumb loop by design — all fault-tolerance policy lives in
the coordinator.  It connects, handshakes, then repeats *request → run →
result* until the coordinator says ``done``.  While a unit simulates, a
background thread renews the chunk's lease with heartbeats (the socket
is shared, so every send+recv pair happens under one lock — heartbeats
slot naturally into the gaps because the main thread holds the lock only
between units).

Units resolve their scenarios locally (``ScenarioRef`` → spec →
``build()``), so the wire carries names and seeds, not matrices, and a
worker process anywhere reproduces the exact same simulation.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .wire import ConnectionClosed, client_handshake, recv_msg, send_msg

__all__ = ["CampaignWorker", "WorkerStats", "connect_with_retry"]

_worker_counter = itertools.count()


@dataclass
class WorkerStats:
    """What one worker did during :meth:`CampaignWorker.run`."""

    worker_id: str = "?"
    units_done: int = 0
    chunks: int = 0
    heartbeats_sent: int = 0
    idle_waits: int = 0
    seconds: float = 0.0
    per_chunk: Dict[int, int] = field(default_factory=dict)


def connect_with_retry(
    address: Tuple[str, int], *, timeout: float = 30.0
) -> socket.socket:
    """Connect to the coordinator, retrying until ``timeout`` elapses.

    Lets a worker CLI start before its coordinator without a race.
    """
    deadline = time.time() + timeout
    delay = 0.05
    while True:
        try:
            return socket.create_connection(address)
        except OSError:
            if time.time() + delay > deadline:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


class CampaignWorker:
    """One worker session against a coordinator.

    Args:
        address: coordinator ``(host, port)``.
        worker_id: wire identity (default: ``"<pid>-w<n>"``, unique per
            process).
        heartbeat_interval: lease-renewal period; default: whatever the
            coordinator advertises in ``welcome``.
        connect_timeout: how long to keep retrying the initial connect.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        worker_id: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
        connect_timeout: float = 30.0,
    ):
        self.address = tuple(address)
        self.worker_id = worker_id or f"{os.getpid()}-w{next(_worker_counter)}"
        self.heartbeat_interval = heartbeat_interval
        self.connect_timeout = connect_timeout
        self.stats = WorkerStats(worker_id=self.worker_id)
        self._sock: Optional[socket.socket] = None
        self._io_lock = threading.Lock()

    # ------------------------------------------------------------------
    # wire helpers (every exchange is one atomic send+recv)

    def _call(self, message: dict) -> dict:
        with self._io_lock:
            if self._sock is None:
                raise ConnectionClosed("worker socket already closed")
            send_msg(self._sock, message)
            return recv_msg(self._sock)

    def _close(self) -> None:
        with self._io_lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                self._sock = None

    # ------------------------------------------------------------------
    # fault-injection seams (overridden by FaultyWorker)

    def _run_unit(self, index: int, unit: Any) -> Any:
        return unit.run()

    def _deliver(self, chunk_id: int, index: int, outcome: Any) -> None:
        self._call(
            {
                "type": "result",
                "chunk": chunk_id,
                "unit": index,
                "outcome": outcome,
            }
        )

    def _heartbeats_enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------

    def _heartbeat_loop(
        self, chunk_id: int, interval: float, stop: threading.Event
    ) -> None:
        while not stop.wait(interval):
            if not self._heartbeats_enabled():
                continue
            try:
                self._call({"type": "heartbeat", "chunk": chunk_id})
                self.stats.heartbeats_sent += 1
            except (ConnectionClosed, OSError):
                return  # session is ending; the main loop will notice

    def _run_chunk(self, assignment: dict) -> None:
        chunk_id = assignment["chunk"]
        interval = self.heartbeat_interval or assignment.get("heartbeat", 5.0)
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(chunk_id, interval, stop),
            name=f"heartbeat-{self.worker_id}",
            daemon=True,
        )
        beat.start()
        try:
            for index, unit in assignment["units"]:
                try:
                    outcome = self._run_unit(index, unit)
                except Exception:  # noqa: BLE001 - forwarded to coordinator
                    self._call(
                        {
                            "type": "error",
                            "unit": index,
                            "traceback": traceback.format_exc(),
                        }
                    )
                    raise
                self._deliver(chunk_id, index, outcome)
                self.stats.units_done += 1
                self.stats.per_chunk[chunk_id] = (
                    self.stats.per_chunk.get(chunk_id, 0) + 1
                )
        finally:
            stop.set()
            beat.join(timeout=2.0)
        self.stats.chunks += 1

    def run(self) -> WorkerStats:
        """Serve until the coordinator reports the campaign done.

        Returns the session's :class:`WorkerStats`.  A coordinator that
        vanishes mid-session (shut down, killed) ends the session
        quietly — its successor re-issues whatever this worker held.
        """
        started = time.time()
        self._sock = connect_with_retry(
            self.address, timeout=self.connect_timeout
        )
        try:
            welcome = client_handshake(self._sock, worker_id=self.worker_id)
            if self.heartbeat_interval is None:
                self.heartbeat_interval = welcome.get("heartbeat")
            while True:
                reply = self._call({"type": "request"})
                kind = reply["type"]
                if kind == "done":
                    try:
                        with self._io_lock:
                            if self._sock is not None:
                                send_msg(self._sock, {"type": "bye"})
                    except (ConnectionClosed, OSError):
                        pass
                    return self.stats
                if kind == "idle":
                    self.stats.idle_waits += 1
                    time.sleep(reply.get("retry_after", 0.05))
                    continue
                if kind != "assign":  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unexpected reply {reply!r}")
                self._run_chunk(reply)
        except (ConnectionClosed, OSError):
            return self.stats  # coordinator gone; nothing left to do
        finally:
            self.stats.seconds = time.time() - started
            self._close()
