"""Fault injection for the distributed campaign service (DESIGN.md §13).

The failure matrix the subsystem must survive — with merged statistics
bit-identical to a serial run — is exercised by :class:`FaultyWorker`
(worker-side faults) plus two coordinator/journal-side injections:

* **crash mid-unit** — the worker's socket dies abruptly after it has
  *executed* a unit but before the result is delivered; the coordinator
  re-issues the unit on connection loss;
* **hang past lease** — the worker stops heartbeating and sleeps beyond
  the lease timeout, then delivers late; the re-issued copy races it and
  the loser is deduplicated;
* **duplicate send** — every result frame is delivered twice; the second
  copy must be counted and dropped;
* **torn journal write** — :func:`tear_journal` truncates a shard
  journal mid-line, simulating a coordinator killed inside an append;
  the healed journal must drop exactly the torn entry;
* **coordinator kill** — ``stop_after_units`` on the coordinator (see
  :class:`~repro.experiments.distributed.coordinator.CampaignCoordinator`).

All worker faults are *one-shot* per plan: after the fault fires the
worker behaves normally (or is dead), mirroring how a real fleet fails a
few machines, not every machine forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from .wire import ConnectionClosed
from .worker import CampaignWorker

__all__ = ["FaultPlan", "FaultyWorker", "WorkerCrashed", "tear_journal"]


class WorkerCrashed(RuntimeError):
    """Raised inside a crashed FaultyWorker thread (expected by tests)."""


@dataclass(frozen=True)
class FaultPlan:
    """What should go wrong, and when (unit counts are 0-based).

    Attributes:
        crash_before_delivery: kill the worker (abrupt socket close, no
            result sent) while delivering its n-th executed unit — the
            "crash mid-unit" case: work was done, the result is lost.
        hang_before_delivery: on the n-th executed unit, go silent
            (heartbeats stop) for ``hang_seconds`` before delivering —
            the lease must expire and the unit be re-issued; the late
            delivery then exercises deduplication.
        hang_seconds: how long the hang lasts.
        duplicate_results: deliver every result twice.
    """

    crash_before_delivery: Optional[int] = None
    hang_before_delivery: Optional[int] = None
    hang_seconds: float = 0.0
    duplicate_results: bool = False

    def __post_init__(self) -> None:
        if self.hang_before_delivery is not None and self.hang_seconds <= 0:
            raise ValueError("hang_before_delivery needs hang_seconds > 0")


class FaultyWorker(CampaignWorker):
    """A :class:`CampaignWorker` that fails according to a plan."""

    def __init__(self, address, plan: FaultPlan, **kwargs):
        super().__init__(address, **kwargs)
        self.plan = plan
        self._executed = 0
        self._hanging = False
        self._hang_fired = False

    def _heartbeats_enabled(self) -> bool:
        return not self._hanging

    def _deliver(self, chunk_id: int, index: int, outcome: Any) -> None:
        n = self._executed
        self._executed += 1
        if self.plan.crash_before_delivery == n:
            # Abrupt death: no result, no bye — the coordinator sees the
            # connection drop and re-issues everything this lease held.
            self._close()
            raise WorkerCrashed(
                f"{self.worker_id} crashed before delivering unit {index}"
            )
        if self.plan.hang_before_delivery == n and not self._hang_fired:
            self._hang_fired = True
            self._hanging = True
            try:
                import time

                time.sleep(self.plan.hang_seconds)
            finally:
                self._hanging = False
        try:
            super()._deliver(chunk_id, index, outcome)
            if self.plan.duplicate_results:
                super()._deliver(chunk_id, index, outcome)
        except (ConnectionClosed, OSError):
            # The coordinator may already have finished without us
            # (our lease expired and the re-issued copy won): a late
            # delivery hitting a closed service is part of the plan.
            raise


def tear_journal(
    path: Union[str, Path], *, keep_bytes_of_last_line: int = 10
) -> None:
    """Truncate a journal mid-line, as a kill inside an append would.

    The file keeps every complete line plus a prefix of its last line;
    :meth:`CampaignCheckpoint.load` must heal by dropping the torn tail.

    Raises:
        ValueError: if the journal has no entry line to tear.
    """
    path = Path(path)
    raw = path.read_bytes()
    lines = raw.splitlines(keepends=True)
    if len(lines) < 2:
        raise ValueError(f"{path} has no entry lines to tear")
    last = lines[-1]
    torn = last[: min(keep_bytes_of_last_line, max(len(last) - 2, 1))]
    path.write_bytes(b"".join(lines[:-1]) + torn)
