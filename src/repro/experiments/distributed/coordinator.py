"""Campaign coordinator: leases, work-stealing, re-issue, shard journals.

The coordinator owns the full unit list and hands out *chunks* of units
to workers that ask for them (pull-based work stealing: a fast worker
simply asks more often; nothing is pre-partitioned).  Every assignment
is a *lease* — the worker must renew it with heartbeats or per-unit
results before it expires, or the unfinished units return to the front
of the queue and are re-issued to the next worker that asks.  A worker
whose connection drops loses its leases immediately (the fast path for
crashes); a worker that merely hangs is caught by the timeout.

Determinism under failure rests on two facts:

* units are seed-complete — a re-issued unit produces bit-identical
  results on any worker, so re-execution is always safe; and
* delivery is deduplicated by unit id — the first result for a unit
  wins, every later duplicate (late delivery after re-issue, a faulty
  worker sending twice) is counted and dropped, so each unit enters the
  aggregation stream exactly once.

The consumer (:meth:`CampaignCoordinator.results`) sees ``(index,
result)`` in completion order; the harness's reorder buffer restores
campaign order, which is what keeps merged statistics bit-identical to
a serial run no matter which workers died when.

With ``checkpoint_dir`` set, accepted results are journalled to
per-shard :class:`~repro.experiments.persistence.CampaignCheckpoint`
files as they arrive, and a new coordinator over the same directory
restores them without re-execution — a killed coordinator resumes
exactly (DESIGN.md §13).
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import socket
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .wire import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    recv_msg,
    send_msg,
)

__all__ = [
    "CampaignCoordinator",
    "CoordinatorStats",
    "CoordinatorKilled",
    "RemoteUnitError",
    "MANIFEST_NAME",
    "STATUS_NAME",
    "SHARD_BASENAME",
]

#: Files the coordinator maintains inside ``checkpoint_dir``.
MANIFEST_NAME = "MANIFEST.json"
STATUS_NAME = "status.json"
SHARD_BASENAME = "campaign.ckpt"

MANIFEST_TAG = "repro-campaign-manifest-v1"
STATUS_TAG = "repro-campaign-status-v1"


class CoordinatorKilled(RuntimeError):
    """Raised by the fault harness's ``stop_after_units`` injection."""


class RemoteUnitError(RuntimeError):
    """A unit raised on a worker; the remote traceback is in ``args[0]``."""


@dataclass
class CoordinatorStats:
    """Counters exposed after (and during) a run.

    ``units_executed`` counts results accepted from workers this run;
    ``units_restored`` counts units restored from shard journals without
    re-execution.  Their sum equals the unit total on a clean finish.
    """

    units_total: int = 0
    units_executed: int = 0
    units_restored: int = 0
    chunks_assigned: int = 0
    reissues: int = 0
    duplicates_dropped: int = 0
    lease_expiries: int = 0
    worker_disconnects: int = 0
    heartbeats: int = 0
    per_worker: Dict[str, int] = field(default_factory=dict)


@dataclass
class _Lease:
    chunk_id: int
    worker: str
    remaining: Set[int]
    deadline: float
    seconds: float


def units_fingerprint(units: Sequence[Any]) -> Optional[dict]:
    """Campaign-identity meta for shard journals, or ``None``.

    Mirrors the harness fingerprint's purpose (reject resuming a
    *different* campaign from the same journals) but is computed from
    the units alone, because the backend never sees the config.  Units
    lacking campaign attributes (generic work units) yield ``None`` —
    journalling then proceeds without identity validation.
    """
    try:
        identity = [
            [
                list(unit.instance_key),
                repr(getattr(unit.scenario_ref, "root_seed", None)),
                sorted(unit.heuristics),
                unit.max_slots,
                asdict(unit.options),
            ]
            for unit in units
        ]
    except (AttributeError, TypeError):
        return None
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True, default=repr).encode()
    ).hexdigest()
    return {"units": len(units), "digest": digest}


class CampaignCoordinator:
    """Serve campaign units to workers over TCP; collect results.

    Args:
        units: the work units (positions are the indices yielded back).
        host, port: bind address (port 0 picks a free port).
        chunk_size: units per assignment.  Default: guided
            self-scheduling — each request takes ~1/(4·workers) of the
            queue, so chunks shrink as the tail approaches and no worker
            is left holding a large straggler.
        lease_timeout: seconds a chunk may go without a heartbeat or a
            result before its unfinished units are re-issued.  Re-issued
            units carry exponential lease backoff (×2 per prior loss,
            capped ×8) so a unit that is simply *slow* eventually gets a
            lease long enough to finish.
        heartbeat_interval: advertised to workers in ``welcome``
            (default: ``lease_timeout / 3``).
        checkpoint_dir: directory for shard journals + manifest/status;
            ``None`` disables persistence.
        shards: shard-journal count (writer parallelism of the journal,
            not of the campaign).
        meta: campaign fingerprint for the journals; default computed
            by :func:`units_fingerprint`.
        stop_after_units: fault injection — behave normally until this
            many *executed* results are accepted, then drop further
            results and raise :class:`CoordinatorKilled` from
            :meth:`results` (simulates a coordinator killed mid-run;
            journals stay on disk for the resume test).
        liveness_check: optional callable polled each tick; returning
            ``False`` aborts with ``RuntimeError`` (the local cluster
            wires it to "any worker thread still alive", so a test whose
            every worker crashed fails instead of hanging).
    """

    def __init__(
        self,
        units: Sequence[Any],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        chunk_size: Optional[int] = None,
        lease_timeout: float = 30.0,
        heartbeat_interval: Optional[float] = None,
        checkpoint_dir: Optional[os.PathLike] = None,
        shards: int = 4,
        meta: Optional[dict] = None,
        stop_after_units: Optional[int] = None,
        liveness_check: Optional[Callable[[], bool]] = None,
    ):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        self.units = list(units)
        self.host = host
        self.port = port
        self.chunk_size = chunk_size
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval or lease_timeout / 3.0
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.shards = shards
        self.meta = meta
        self.stop_after_units = stop_after_units
        self.liveness_check = liveness_check

        self.stats = CoordinatorStats(units_total=len(self.units))
        self._lock = threading.Lock()
        self._status_lock = threading.Lock()
        self._queue: deque = deque()
        self._leases: Dict[int, _Lease] = {}
        self._done: Set[int] = set()
        self._attempts: Dict[int, int] = {}
        self._out: "queue.Queue" = queue.Queue()
        self._restored: List[Tuple[int, Any]] = []
        self._active_workers: Set[str] = set()
        self._next_chunk_id = 0
        self._killed = False
        self._finished = False
        self._closing = False
        self._journal = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handler_threads: List[threading.Thread] = []
        self._connections: Set[socket.socket] = set()

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("coordinator not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "CampaignCoordinator":
        """Restore from journals, bind, and begin accepting workers."""
        self._open_journal()
        self._restore_from_journal()
        with self._lock:
            for index in range(len(self.units)):
                if index not in self._done:
                    self._queue.append(index)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="coordinator-accept", daemon=True
        )
        self._accept_thread.start()
        self._write_manifest()
        self._write_status()
        return self

    def close(self) -> None:
        """Stop accepting and drop every connection (idempotent).

        Live worker sessions see the drop as ``ConnectionClosed`` and
        exit; anything they were holding is moot (the campaign is either
        complete or this coordinator is dying and its successor will
        restore from the journals).
        """
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._write_status()

    # ------------------------------------------------------------------
    # persistence

    def _open_journal(self) -> None:
        if self.checkpoint_dir is None:
            return
        for unit in self.units:
            if not hasattr(unit, "instance_key"):
                raise ValueError(
                    "checkpoint_dir requires units with an instance_key "
                    f"(campaign units); got {type(unit).__name__}"
                )
        from ..persistence import ShardedCheckpoint

        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        if self.meta is None:
            self.meta = units_fingerprint(self.units)
        self._journal = ShardedCheckpoint(
            self.checkpoint_dir / SHARD_BASENAME,
            shards=self.shards,
            meta=self.meta,
        )

    def _restore_from_journal(self) -> None:
        if self._journal is None:
            return
        from ..harness import CampaignUnitResult

        stored = self._journal.load()
        for index, unit in enumerate(self.units):
            entry = stored.get(unit.instance_key)
            if entry is not None and set(entry[0]) == set(unit.heuristics):
                outcome = CampaignUnitResult(
                    makespans=dict(entry[0]), truncated=tuple(entry[1])
                )
                self._done.add(index)
                self._restored.append((index, outcome))
        self.stats.units_restored = len(self._restored)

    def _journal_result(self, index: int, worker: str, outcome: Any) -> None:
        if self._journal is None:
            return
        unit = self.units[index]
        self._journal.append(
            unit.instance_key,
            outcome.makespans,
            outcome.truncated,
            extra={"worker": worker, "t": time.time()},
        )

    def _write_manifest(self) -> None:
        if self.checkpoint_dir is None:
            return
        manifest = {
            "format": MANIFEST_TAG,
            "total_units": len(self.units),
            "shards": self.shards,
            "shard_base": SHARD_BASENAME,
            "meta": self.meta,
            "started": time.time(),
        }
        self._atomic_write(self.checkpoint_dir / MANIFEST_NAME, manifest)

    def _write_status(self) -> None:
        """Atomically refresh the live-progress view (STATUS_NAME).

        The status lock spans snapshot *and* replace: without it a
        handler thread could snapshot pre-finish state, lose the CPU,
        and clobber the final ``finished: true`` write with its stale
        view.  Serialised, the last writer always carries the latest
        snapshot.
        """
        if self.checkpoint_dir is None or not self.checkpoint_dir.is_dir():
            return  # dir appears in start(); close() after a failed start
        with self._status_lock:
            self._write_status_locked()

    def _write_status_locked(self) -> None:
        with self._lock:
            in_flight = [
                {
                    "chunk": lease.chunk_id,
                    "worker": lease.worker,
                    "units": sorted(lease.remaining),
                    "keys": [
                        list(getattr(self.units[i], "instance_key", (i,)))
                        for i in sorted(lease.remaining)
                    ],
                    "deadline_in": round(lease.deadline - time.time(), 3),
                }
                for lease in self._leases.values()
            ]
            status = {
                "format": STATUS_TAG,
                "t": time.time(),
                "total": len(self.units),
                "done": len(self._done),
                "restored": self.stats.units_restored,
                "executed": self.stats.units_executed,
                "queued": len(self._queue),
                "in_flight": in_flight,
                "workers": dict(self.stats.per_worker),
                "reissues": self.stats.reissues,
                "duplicates_dropped": self.stats.duplicates_dropped,
                "lease_expiries": self.stats.lease_expiries,
                "finished": self._finished,
            }
        self._atomic_write(self.checkpoint_dir / STATUS_NAME, status)

    @staticmethod
    def _atomic_write(path: Path, document: dict) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(document, indent=1))
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # assignment / lease machinery (all under self._lock)

    def _guided_chunk_size(self) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        active = max(1, len(self._active_workers))
        return max(1, len(self._queue) // (4 * active))

    def _assign_chunk(self, worker: str) -> Optional[dict]:
        with self._lock:
            if not self._queue:
                return None
            size = min(self._guided_chunk_size(), len(self._queue))
            indices = [self._queue.popleft() for _ in range(size)]
            worst = max(self._attempts.get(i, 0) for i in indices)
            seconds = self.lease_timeout * min(2 ** worst, 8)
            chunk_id = self._next_chunk_id
            self._next_chunk_id += 1
            self._leases[chunk_id] = _Lease(
                chunk_id=chunk_id,
                worker=worker,
                remaining=set(indices),
                deadline=time.time() + seconds,
                seconds=seconds,
            )
            self.stats.chunks_assigned += 1
            assignment = {
                "type": "assign",
                "chunk": chunk_id,
                "units": [(i, self.units[i]) for i in indices],
                "lease": seconds,
                "heartbeat": self.heartbeat_interval,
            }
        self._write_status()
        return assignment

    def _renew(self, chunk_id: int) -> bool:
        with self._lock:
            lease = self._leases.get(chunk_id)
            if lease is None:
                return False
            lease.deadline = time.time() + lease.seconds
            self.stats.heartbeats += 1
            return True

    def _requeue(self, indices: Set[int], *, expiry: bool) -> int:
        """Return not-yet-done ``indices`` to the front of the queue.

        A unit already queued, or held by another live lease (it was
        re-issued and the loser is only now being cleaned up), is left
        where it is — one live copy is enough.
        """
        requeued = 0
        for index in sorted(indices, reverse=True):
            if index in self._done:
                continue
            self._attempts[index] = self._attempts.get(index, 0) + 1
            held_elsewhere = any(
                index in lease.remaining for lease in self._leases.values()
            )
            if index not in self._queue and not held_elsewhere:
                self._queue.appendleft(index)
            self.stats.reissues += 1
            requeued += 1
        if expiry and requeued:
            self.stats.lease_expiries += 1
        return requeued

    def _reap_expired(self) -> None:
        now = time.time()
        changed = False
        with self._lock:
            for chunk_id in [
                cid
                for cid, lease in self._leases.items()
                if lease.deadline < now
            ]:
                lease = self._leases.pop(chunk_id)
                self._requeue(lease.remaining, expiry=True)
                changed = True
        if changed:
            self._write_status()

    def _release_connection(self, chunk_ids: Set[int], worker: str) -> None:
        """Connection lost: its outstanding leases are re-issued now."""
        changed = False
        with self._lock:
            self._active_workers.discard(worker)
            for chunk_id in chunk_ids:
                lease = self._leases.pop(chunk_id, None)
                if lease is not None and lease.remaining:
                    self._requeue(lease.remaining, expiry=False)
                    changed = True
            if changed:
                self.stats.worker_disconnects += 1
        if changed:
            self._write_status()

    def _accept_result(
        self, worker: str, chunk_id: int, index: int, outcome: Any
    ) -> None:
        with self._lock:
            if self._killed:
                return
            if index in self._done:
                self.stats.duplicates_dropped += 1
                return
            self._done.add(index)
            self.stats.units_executed += 1
            self.stats.per_worker[worker] = (
                self.stats.per_worker.get(worker, 0) + 1
            )
            # The unit may have been re-issued elsewhere in the meantime:
            # retire every other copy so nobody wastes a lease on it.
            lease = self._leases.get(chunk_id)
            if lease is not None:
                lease.remaining.discard(index)
                lease.deadline = time.time() + lease.seconds
                if not lease.remaining:
                    self._leases.pop(chunk_id, None)
            for other in self._leases.values():
                other.remaining.discard(index)
            if index in self._queue:
                self._queue.remove(index)
            if (
                self.stop_after_units is not None
                and self.stats.units_executed >= self.stop_after_units
            ):
                self._killed = True
        self._journal_result(index, worker, outcome)
        self._out.put(("result", index, outcome))
        self._write_status()

    # ------------------------------------------------------------------
    # connection handling

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="coordinator-conn",
                daemon=True,
            )
            handler.start()
            self._handler_threads.append(handler)

    def _serve_connection(self, conn: socket.socket) -> None:
        worker = "?"
        chunk_ids: Set[int] = set()
        with self._lock:
            self._connections.add(conn)
        try:
            hello = recv_msg(conn)
            if hello.get("type") != "hello":
                send_msg(conn, {"type": "reject", "reason": "expected hello"})
                return
            if hello.get("version") != PROTOCOL_VERSION:
                send_msg(
                    conn,
                    {
                        "type": "reject",
                        "reason": (
                            f"protocol version {hello.get('version')!r} != "
                            f"{PROTOCOL_VERSION}"
                        ),
                    },
                )
                return
            worker = str(hello.get("worker", "?"))
            with self._lock:
                self._active_workers.add(worker)
            send_msg(
                conn,
                {
                    "type": "welcome",
                    "version": PROTOCOL_VERSION,
                    "units_total": len(self.units),
                    "heartbeat": self.heartbeat_interval,
                },
            )
            while True:
                message = recv_msg(conn)
                kind = message["type"]
                if kind == "request":
                    if self._all_done():
                        send_msg(conn, {"type": "done"})
                    else:
                        assignment = self._assign_chunk(worker)
                        if assignment is None:
                            send_msg(
                                conn,
                                {
                                    "type": "idle",
                                    "retry_after": min(
                                        0.05, self.lease_timeout / 10
                                    ),
                                },
                            )
                        else:
                            chunk_ids.add(assignment["chunk"])
                            send_msg(conn, assignment)
                elif kind == "result":
                    self._accept_result(
                        worker,
                        message["chunk"],
                        message["unit"],
                        message["outcome"],
                    )
                    send_msg(conn, {"type": "ok"})
                elif kind == "heartbeat":
                    alive = self._renew(message["chunk"])
                    send_msg(conn, {"type": "ok", "lease_held": alive})
                elif kind == "error":
                    self._out.put(
                        (
                            "error",
                            message.get("unit"),
                            message.get("traceback", message.get("error")),
                        )
                    )
                    send_msg(conn, {"type": "ok"})
                elif kind == "bye":
                    chunk_ids.clear()  # clean exit: nothing outstanding
                    return
                else:
                    send_msg(
                        conn, {"type": "reject", "reason": f"unknown {kind!r}"}
                    )
        except (ConnectionClosed, ProtocolError, OSError):
            pass  # dropped / garbled connection: leases released below
        finally:
            with self._lock:
                self._connections.discard(conn)
            self._release_connection(chunk_ids, worker)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # ------------------------------------------------------------------
    # consumer side

    def _all_done(self) -> bool:
        with self._lock:
            return len(self._done) == len(self.units)

    def results(self) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, result)`` exactly once per unit.

        Restored units (journal resume) are yielded first, then live
        results in completion order.  Lease reaping runs on this loop's
        tick, so the generator must be consumed for the service to make
        progress — which every campaign runner does.
        """
        for index, outcome in self._restored:
            yield index, outcome
        tick = min(0.05, self.lease_timeout / 5.0)
        yielded = len(self._restored)
        while yielded < len(self.units):
            if self._killed:
                # Deliberately *not* finished: the campaign is incomplete
                # and status.json must say so for the resume/status tools.
                raise CoordinatorKilled(
                    f"coordinator stopped after "
                    f"{self.stats.units_executed} executed units "
                    "(fault injection)"
                )
            try:
                kind, index, payload = self._out.get(timeout=tick)
            except queue.Empty:
                self._reap_expired()
                if self.liveness_check is not None and not self.liveness_check():
                    raise RuntimeError(
                        "no live workers remain and "
                        f"{len(self.units) - yielded} units are unfinished"
                    )
                continue
            if kind == "error":
                raise RemoteUnitError(
                    f"unit {index} failed on a worker:\n{payload}"
                )
            yield index, payload
            yielded += 1
        self._finished = True
        self._write_status()
