"""Distributed campaign service: coordinator/worker over TCP (DESIGN.md §13).

The simulator studies a volatile master–worker platform; this package
runs the campaigns themselves on one.  A coordinator shards
:class:`~repro.experiments.harness.CampaignUnit`\\ s into chunks and
serves them to pull-based workers over a length-prefixed pickle wire
protocol, with leases + heartbeats + re-issue for lost units, dedupe for
duplicate deliveries, and per-shard checkpoint journals so a killed
coordinator resumes exactly.  It plugs into the execution-backend seam
as ``--backend distributed`` and keeps campaign statistics bit-identical
to the serial backend under every failure mode in the matrix (see
``tests/test_distributed.py``).

Public surface:

* :class:`DistributedBackend` — the backend (local loopback cluster or
  external workers);
* :class:`CampaignCoordinator` / :class:`CampaignWorker` — the service
  halves, used directly by the ``coordinator`` / ``worker`` CLI;
* :class:`LocalCluster` — in-process worker fleet for tests and 1-CPU
  containers;
* :class:`FaultyWorker` / :class:`FaultPlan` / :func:`tear_journal` —
  the fault-injection harness;
* :func:`campaign_status` — the file-based live progress view.
"""

from .backend import DistributedBackend
from .cluster import LocalCluster
from .coordinator import (
    CampaignCoordinator,
    CoordinatorKilled,
    CoordinatorStats,
    RemoteUnitError,
    units_fingerprint,
)
from .faults import FaultPlan, FaultyWorker, WorkerCrashed, tear_journal
from .status import campaign_status, render_campaign_status
from .wire import PROTOCOL_VERSION, ProtocolError
from .worker import CampaignWorker, WorkerStats, connect_with_retry

__all__ = [
    "DistributedBackend",
    "LocalCluster",
    "CampaignCoordinator",
    "CampaignWorker",
    "CoordinatorKilled",
    "CoordinatorStats",
    "RemoteUnitError",
    "WorkerStats",
    "FaultPlan",
    "FaultyWorker",
    "WorkerCrashed",
    "tear_journal",
    "campaign_status",
    "render_campaign_status",
    "connect_with_retry",
    "units_fingerprint",
    "PROTOCOL_VERSION",
    "ProtocolError",
]
