"""``DistributedBackend``: the campaign service behind the backend protocol.

``--backend distributed`` plugs the coordinator/worker service into the
existing :class:`~repro.experiments.backends.ExecutionBackend` seam: the
caller still sees ``(index, result)`` pairs in completion order, the
harness still folds them in unit order, and statistics stay bit-identical
to ``--backend serial`` — the whole lease/re-issue/dedupe machinery is
invisible at this layer (that is the point).

Two modes:

* **local** (default): a loopback :class:`LocalCluster` of ``jobs``
  worker threads is spun up per ``run()`` call — self-contained, used by
  tests, benchmarks and the plain CLI flag;
* **external** (``external=True``): no local workers; the coordinator
  binds ``host:port`` and waits for ``repro-experiments worker``
  processes to connect (the service deployment shape).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from ..backends.base import ExecutionBackend, WorkUnit
from .cluster import LocalCluster, WorkerFactory
from .coordinator import CampaignCoordinator, CoordinatorStats

__all__ = ["DistributedBackend"]


class DistributedBackend(ExecutionBackend):
    """Run units on the coordinator/worker campaign service.

    Args:
        jobs: local worker threads (local mode; default ``max(2, cpu
            count)`` — two workers even on one CPU, so the protocol's
            concurrency is always exercised).  Ignored in external mode.
        chunk_size: fixed units per assignment (default: guided — see
            :class:`CampaignCoordinator`).
        lease_timeout: seconds before an unrenewed assignment is
            re-issued.
        heartbeat_interval: lease-renewal period advertised to workers.
        checkpoint_dir: shard-journal directory; a re-run over the same
            directory resumes, re-executing only missing units.
        shards: shard-journal count.
        host, port: bind address (external mode; local mode always uses
            loopback with an ephemeral port).
        external: wait for external workers instead of spawning local
            ones.
        worker_factory: local-mode worker constructor override (fault
            injection).
        stop_after_units: fault injection — kill the coordinator after
            accepting this many executed results (see
            :class:`CampaignCoordinator`).
        on_listening: callback invoked with the bound ``(host, port)``
            once the coordinator accepts connections (the CLI prints
            it so workers know where to connect).

    After each ``run()`` the coordinator's counters are kept on
    ``last_stats`` (re-issues, duplicates dropped, restored units…) and
    the local fleet's on ``last_worker_stats``.
    """

    name = "distributed"

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        lease_timeout: float = 30.0,
        heartbeat_interval: Optional[float] = None,
        checkpoint_dir=None,
        shards: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        external: bool = False,
        worker_factory: Optional[WorkerFactory] = None,
        stop_after_units: Optional[int] = None,
        on_listening: Optional[Callable[[Tuple[str, int]], None]] = None,
    ):
        if jobs is not None and jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        self.jobs = jobs or max(2, os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        self.checkpoint_dir = checkpoint_dir
        self.shards = shards
        self.host = host
        self.port = port
        self.external = external
        self.worker_factory = worker_factory
        self.stop_after_units = stop_after_units
        self.on_listening = on_listening
        self.last_stats: Optional[CoordinatorStats] = None
        self.last_worker_stats = None

    def run(self, units: Sequence[WorkUnit]) -> Iterator[Tuple[int, Any]]:
        units = list(units)
        if not units:
            return
        coordinator = CampaignCoordinator(
            units,
            host=self.host if self.external else "127.0.0.1",
            port=self.port if self.external else 0,
            chunk_size=self.chunk_size,
            lease_timeout=self.lease_timeout,
            heartbeat_interval=self.heartbeat_interval,
            checkpoint_dir=self.checkpoint_dir,
            shards=self.shards,
            stop_after_units=self.stop_after_units,
        )
        self.last_stats = coordinator.stats
        cluster: Optional[LocalCluster] = None
        try:
            coordinator.start()
            if self.on_listening is not None:
                self.on_listening(coordinator.address)
            if not self.external:
                cluster = LocalCluster(
                    coordinator.address,
                    self.jobs,
                    worker_factory=self.worker_factory,
                )
                # A fleet whose every worker died must fail the run, not
                # hang it — external deployments instead wait for new
                # workers indefinitely (that is the service contract).
                coordinator.liveness_check = cluster.alive
                cluster.start()
                self.last_worker_stats = cluster.stats
            yield from coordinator.results()
        finally:
            coordinator.close()
            if cluster is not None:
                cluster.join(timeout=5.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "external" if self.external else f"local jobs={self.jobs}"
        return f"DistributedBackend({mode}, lease={self.lease_timeout}s)"
