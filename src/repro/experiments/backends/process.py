"""Multiprocessing backend: chunked work units over a process pool.

Units are dealt to workers in contiguous chunks to amortise pickling and
future bookkeeping (one future per chunk, not per unit).  Chunking is a
pure transport concern: every unit's RNG streams derive from its scenario
spec and trial (see :mod:`repro.rng`), so results are bit-identical for
any ``jobs`` value, any chunk size, and any completion interleaving —
the *aggregation* side restores deterministic order by unit index.

Workers rebuild scenarios from specs; consecutive units of a chunk share
a scenario (trials × heuristics of one scenario are adjacent in campaign
unit order), and the spec-level LRU cache in
:mod:`repro.workload.scenarios` makes the rebuild a one-off per scenario
per worker.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .base import ExecutionBackend, WorkUnit

__all__ = ["ProcessPoolBackend"]


def _run_chunk(chunk: List[Tuple[int, WorkUnit]]) -> List[Tuple[int, Any]]:
    """Worker entry point: execute one chunk, tagging results by index."""
    return [(index, unit.run()) for index, unit in chunk]


class ProcessPoolBackend(ExecutionBackend):
    """Executes units on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Args:
        jobs: worker processes (default: CPU count).
        chunk_size: units per submitted chunk.  Default: enough chunks for
            ~4 per worker, so stragglers still rebalance while per-chunk
            overhead stays amortised.
        mp_context: multiprocessing start method (``"fork"``, ``"spawn"``,
            ``"forkserver"``); default: the platform default.
    """

    name = "process"

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
    ):
        if jobs is not None and jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.jobs = jobs or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.mp_context = mp_context

    def _chunks(
        self, units: Sequence[WorkUnit]
    ) -> List[List[Tuple[int, WorkUnit]]]:
        indexed = list(enumerate(units))
        size = self.chunk_size or max(1, len(indexed) // (self.jobs * 4))
        return [indexed[i : i + size] for i in range(0, len(indexed), size)]

    def run(self, units: Sequence[WorkUnit]) -> Iterator[Tuple[int, Any]]:
        units = list(units)
        if not units:
            return
        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else None
        )
        with ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=context
        ) as pool:
            futures = [pool.submit(_run_chunk, chunk) for chunk in self._chunks(units)]
            for future in as_completed(futures):
                for index, result in future.result():
                    yield index, result
