"""The reference backend: run every unit in the calling process, in order."""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Tuple

from .base import ExecutionBackend, WorkUnit

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Executes units one after another in submission order.

    This is the semantics baseline: any other backend must produce
    bit-identical per-unit results (the seed-stability tests in
    ``tests/test_backends.py`` enforce this).
    """

    name = "serial"

    def run(self, units: Sequence[WorkUnit]) -> Iterator[Tuple[int, Any]]:
        for index, unit in enumerate(units):
            yield index, unit.run()
