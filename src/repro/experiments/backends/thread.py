"""Thread-pool backend: cheap concurrency without process start-up.

Simulation is pure Python and GIL-bound, so threads rarely speed a
campaign up — the backend exists because it exercises the full
out-of-completion-order aggregation path (reorder buffers, checkpoint
interleaving) at test cost close to :class:`SerialBackend`, and because
it parallelises any unit whose ``run()`` releases the GIL.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Any, Iterator, Optional, Sequence, Tuple

from .base import ExecutionBackend, WorkUnit

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Executes units on a :class:`~concurrent.futures.ThreadPoolExecutor`.

    Args:
        jobs: worker threads (default: CPU count).
    """

    name = "thread"

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1

    def run(self, units: Sequence[WorkUnit]) -> Iterator[Tuple[int, Any]]:
        units = list(units)
        if not units:
            return
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(unit.run): index for index, unit in enumerate(units)
            }
            for future in as_completed(futures):
                yield futures[future], future.result()
