"""Pluggable campaign execution backends (DESIGN.md §4).

The experiment pipeline separates *what* runs (work units: picklable,
seed-complete descriptions of one simulation or one instance) from
*where* it runs (a backend).  Three backends ship:

* :class:`SerialBackend` — the reference semantics, one unit at a time;
* :class:`ThreadBackend` — a thread pool, cheap for tests and for
  exercising out-of-order completion;
* :class:`ProcessPoolBackend` — a chunked process pool for real
  multi-core sweeps.

A fourth, ``distributed`` (lazily loaded from
:mod:`repro.experiments.distributed`), runs units on the coordinator/
worker campaign service — loopback worker threads by default, external
worker processes via the ``repro-experiments coordinator``/``worker``
commands — with work-stealing leases, fault-tolerant re-issue and
per-shard checkpoint journals (DESIGN.md §13).

All three are interchangeable by construction: unit results depend only
on the unit (seed-stable partitioning), and aggregation folds results in
unit order, so campaign statistics are bit-identical across backends and
job counts.

Use :func:`make_backend` to resolve a CLI-style name (``--backend
process --jobs 4``) into an instance; pass backend instances directly
when you need non-default knobs (chunk size, start method).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type, Union

from .base import (
    ExecutionBackend,
    ScenarioRef,
    WorkUnit,
    as_scenario_ref,
    resolve_scenario,
)
from .process import ProcessPoolBackend
from .serial import SerialBackend
from .thread import ThreadBackend

__all__ = [
    "ExecutionBackend",
    "WorkUnit",
    "ScenarioRef",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "BACKENDS",
    "available_backends",
    "make_backend",
    "as_scenario_ref",
    "resolve_scenario",
]

BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessPoolBackend,
}

#: Backends resolved on first use.  ``distributed`` lives in its own
#: package whose coordinator imports the persistence layer (which in
#: turn imports the harness, which imports this module) — lazy loading
#: breaks that cycle without contorting the persistence API.
LAZY_BACKENDS: Dict[str, str] = {
    "distributed": "repro.experiments.distributed.backend:DistributedBackend",
}

BackendLike = Union[None, str, ExecutionBackend]


def available_backends() -> List[str]:
    """Registered backend names (eager and lazy), sorted."""
    return sorted(set(BACKENDS) | set(LAZY_BACKENDS))


def make_backend(
    backend: BackendLike = None, *, jobs: Optional[int] = None
) -> ExecutionBackend:
    """Resolve a backend argument into an instance.

    Args:
        backend: ``None`` (→ serial), a registry name, or an instance
            (returned as-is — combine with ``jobs=None`` only, since an
            instance already fixed its worker count).
        jobs: worker count for name-resolved parallel backends; ignored
            by ``serial``.

    Raises:
        KeyError: for unknown names (message lists the valid ones).
        ValueError: when ``jobs`` is combined with a backend instance.
    """
    if isinstance(backend, ExecutionBackend):
        if jobs is not None:
            raise ValueError(
                "pass jobs= only with a backend *name*; the instance "
                f"{backend!r} already fixed its worker count"
            )
        return backend
    name = (backend or "serial").lower()
    cls = BACKENDS.get(name)
    if cls is None and name in LAZY_BACKENDS:
        import importlib

        module_name, _, class_name = LAZY_BACKENDS[name].partition(":")
        cls = getattr(importlib.import_module(module_name), class_name)
        BACKENDS[name] = cls
    if cls is None:
        raise KeyError(
            f"unknown backend {backend!r}; available: "
            f"{', '.join(available_backends())}"
        )
    if cls is SerialBackend:
        return cls()
    return cls(jobs)
