"""Execution-backend protocol and work-unit plumbing (DESIGN.md §4).

A *work unit* is a small, picklable object with a ``run()`` method and no
live simulator state: everything stochastic is reachable from names and
seeds (see :class:`~repro.workload.scenarios.ScenarioSpec`), so a unit
executes identically in the driving process, a thread, or a worker
process — seed derivation depends only on the unit's identity, never on
which worker runs it, how units are chunked, or in which order they
complete.

An :class:`ExecutionBackend` consumes a sequence of units and yields
``(index, result)`` pairs *in completion order*.  Callers that need
deterministic aggregation (every campaign runner in this package) fold
results back in index order; callers that need liveness (checkpointing,
progress) observe completions as they happen.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, Protocol, Sequence, Tuple, Union

from ...workload.scenarios import Scenario, ScenarioSpec

__all__ = [
    "WorkUnit",
    "ScenarioRef",
    "ExecutionBackend",
    "as_scenario_ref",
    "resolve_scenario",
]


class WorkUnit(Protocol):
    """Anything an :class:`ExecutionBackend` can execute.

    Implementations must be picklable (frozen dataclasses of primitives,
    specs and option objects) and deterministic: ``run()`` twice anywhere
    returns the same result.
    """

    def run(self) -> Any:  # pragma: no cover - protocol
        ...


#: Scenarios travel to workers as a :class:`ScenarioSpec` whenever the
#: scenario is generator-derived; hand-built scenarios fall back to being
#: pickled whole (they are still deterministic — their RNG streams derive
#: from ``(root_seed, key, trial)``).
ScenarioRef = Union[ScenarioSpec, Scenario]


def as_scenario_ref(scenario: Scenario) -> ScenarioRef:
    """The preferred wire form of a scenario: its spec, else itself."""
    try:
        return ScenarioSpec.from_scenario(scenario)
    except ValueError:
        return scenario


def resolve_scenario(ref: ScenarioRef) -> Scenario:
    """Materialise a scenario from its wire form (cached for specs)."""
    if isinstance(ref, ScenarioSpec):
        return ref.build()
    return ref


class ExecutionBackend(abc.ABC):
    """Where work units run; see the module docstring for the contract."""

    #: Registry name (``serial`` / ``thread`` / ``process``).
    name: str = "?"

    @abc.abstractmethod
    def run(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[int, Any]]:
        """Execute ``units``; yield ``(unit index, result)`` as completed.

        Every unit is yielded exactly once; indices refer to positions in
        ``units``.  Exceptions raised by a unit propagate to the caller.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        jobs = getattr(self, "jobs", None)
        suffix = f", jobs={jobs}" if jobs is not None else ""
        return f"{type(self).__name__}(name={self.name!r}{suffix})"
