"""The Section 3.4 objective: iterations completed within a deadline.

The paper's formal objective is to *maximise the number of successfully
completed iterations within N time slots*; the evaluation then switches to
the equivalent fixed-iterations/minimise-makespan protocol for ease of
instantiation.  This module provides the deadline-form experiment as a
first-class study: run each heuristic against the same availability
samples with a hard slot budget and compare completed-iteration counts.

This is also where the *proactive* extension (SimulatorOptions.proactive)
shows its value: with a deadline looming, aggressively terminating a task
stalled on a RECLAIMED worker can rescue an iteration that would otherwise
not finish in time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.plotting import format_table
from ..core.heuristics.registry import make_scheduler
from ..sim.master import MasterSimulator, SimulatorOptions
from ..workload.application import IterativeApplication
from ..workload.scenarios import Scenario, ScenarioGenerator
from .backends import ScenarioRef, as_scenario_ref, make_backend, resolve_scenario

__all__ = [
    "DeadlineStudyResult",
    "DeadlineUnit",
    "run_deadline_study",
    "render_deadline_study",
]


@dataclass
class DeadlineStudyResult:
    """Aggregated deadline-objective outcomes.

    Attributes:
        deadline_slots: the slot budget N.
        iterations_by_heuristic: heuristic → completed-iteration counts,
            one entry per (scenario, trial) instance, instance-aligned
            across heuristics.
        instances: number of problem instances.
    """

    deadline_slots: int
    iterations_by_heuristic: Dict[str, List[int]]
    instances: int

    def mean_iterations(self, heuristic: str) -> float:
        values = self.iterations_by_heuristic[heuristic]
        return sum(values) / len(values) if values else 0.0

    def rows(self) -> List[Tuple[str, float, int]]:
        """``(heuristic, mean iterations, instances won)`` best-first.

        A heuristic "wins" an instance when no other heuristic completed
        more iterations on it.
        """
        names = list(self.iterations_by_heuristic)
        wins = {name: 0 for name in names}
        for i in range(self.instances):
            best = max(self.iterations_by_heuristic[name][i] for name in names)
            for name in names:
                if self.iterations_by_heuristic[name][i] == best:
                    wins[name] += 1
        return sorted(
            ((name, self.mean_iterations(name), wins[name]) for name in names),
            key=lambda row: -row[1],
        )


@dataclass(frozen=True)
class DeadlineUnit:
    """One deadline-objective simulation as a picklable work unit.

    The unit carries the overridden application explicitly (the deadline
    form replaces the iteration target so the slot budget binds), while
    platform and scheduler randomness still derive from the scenario
    reference + trial — identical in any process.
    """

    scenario_ref: ScenarioRef
    app: IterativeApplication
    trial: int
    heuristic: str
    deadline_slots: int
    options: SimulatorOptions

    def run(self) -> int:
        scenario = resolve_scenario(self.scenario_ref)
        sim = MasterSimulator(
            scenario.build_platform(self.trial),
            self.app,
            make_scheduler(self.heuristic),
            options=self.options,
            rng=scenario.scheduler_rng(self.trial, self.heuristic),
        )
        report = sim.run_slots(self.deadline_slots)
        return int(report.completed_iterations)


def run_deadline_study(
    *,
    deadline_slots: int = 2000,
    heuristics: Sequence[str] = ("emct*", "mct", "ud*", "random"),
    scenarios: Optional[Sequence[Scenario]] = None,
    scenario_count: int = 4,
    trials: int = 2,
    proactive: bool = False,
    seed=12061,
    backend=None,
    jobs=None,
    step_mode: str = "span",
    replan_policy: str = "event",
) -> DeadlineStudyResult:
    """Run the deadline-objective comparison.

    Args:
        deadline_slots: the budget ``N`` of Section 3.4.
        heuristics: registry names to compare.
        scenarios: explicit scenario population; default draws
            ``scenario_count`` scenarios from the (n=20, ncom=5, wmin=3)
            cell.
        scenario_count: size of the default population.
        trials: trials per scenario.
        proactive: enable the proactive termination extension.
        seed: campaign seed.
        backend: execution backend name or instance (DESIGN.md §4);
            results are backend-independent.
        jobs: worker count when ``backend`` is a name.
        step_mode: simulator stepping mode (DESIGN.md §6; bit-identical
            results either way) — this study runs :meth:`MasterSimulator.
            run_slots`, the other objective formulation span mode covers.
    """
    if scenarios is None:
        generator = ScenarioGenerator(seed)
        scenarios = [
            generator.scenario(20, 5, 3, index) for index in range(scenario_count)
        ]
    options = SimulatorOptions(
        proactive=proactive, step_mode=step_mode, replan_policy=replan_policy
    )
    units: List[DeadlineUnit] = []
    for scenario in scenarios:
        # The deadline form has no iteration target; ask for far more
        # iterations than the budget can fit so the budget binds.
        app = type(scenario.app)(
            tasks_per_iteration=scenario.app.tasks_per_iteration,
            iterations=10_000,
            t_prog=scenario.app.t_prog,
            t_data=scenario.app.t_data,
        )
        ref = as_scenario_ref(scenario)
        for trial in range(trials):
            for name in heuristics:
                units.append(
                    DeadlineUnit(
                        scenario_ref=ref,
                        app=app,
                        trial=trial,
                        heuristic=name,
                        deadline_slots=deadline_slots,
                        options=options,
                    )
                )
    outcomes = dict(make_backend(backend, jobs=jobs).run(units))
    iterations: Dict[str, List[int]] = {name: [] for name in heuristics}
    for index in range(len(units)):  # unit order: instance-aligned fold
        iterations[units[index].heuristic].append(outcomes[index])
    instances = len(units) // max(len(tuple(heuristics)), 1)
    return DeadlineStudyResult(
        deadline_slots=deadline_slots,
        iterations_by_heuristic=iterations,
        instances=instances,
    )


def render_deadline_study(result: DeadlineStudyResult) -> str:
    """Text table for the deadline study."""
    rows = [
        (name, round(mean, 2), wins) for name, mean, wins in result.rows()
    ]
    return format_table(
        ["Algorithm", "mean iterations", "wins"],
        rows,
        title=(
            f"Deadline objective — iterations completed within "
            f"{result.deadline_slots} slots ({result.instances} instances)"
        ),
    )
