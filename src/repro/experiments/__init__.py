"""Experiment regenerators for every table and figure of the paper."""

from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    make_backend,
)
from .deadline_study import (
    DeadlineStudyResult,
    render_deadline_study,
    run_deadline_study,
)
from .dfb import DfbAccumulator, dfb_for_instance
from .figure2 import FIGURE2_HEURISTICS, run_figure2, render_figure2
from .harness import (
    CampaignConfig,
    CampaignResult,
    CampaignUnit,
    CampaignUnitResult,
    iter_work_units,
    run_campaign,
    run_instance,
)
from .mismatch_study import (
    MismatchStudyResult,
    fit_markov_belief,
    render_mismatch_study,
    run_mismatch_study,
)
from .offline_study import counterexample_study, figure1_study, render_offline_study
from .table2 import PAPER_TABLE2, render_table2, run_table2
from .table3 import PAPER_TABLE3, render_table3, run_table3

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "available_backends",
    "make_backend",
    "CampaignUnit",
    "CampaignUnitResult",
    "iter_work_units",
    "run_deadline_study",
    "render_deadline_study",
    "DeadlineStudyResult",
    "run_mismatch_study",
    "render_mismatch_study",
    "MismatchStudyResult",
    "fit_markov_belief",
    "DfbAccumulator",
    "dfb_for_instance",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "run_instance",
    "run_table2",
    "render_table2",
    "PAPER_TABLE2",
    "run_table3",
    "render_table3",
    "PAPER_TABLE3",
    "run_figure2",
    "render_figure2",
    "FIGURE2_HEURISTICS",
    "figure1_study",
    "counterexample_study",
    "render_offline_study",
]
