"""Section 4 artefacts: the Figure 1 gadget and the MCT counterexample.

Two runnable studies back the paper's complexity section:

* :func:`figure1_study` — builds the Theorem 1 reduction for the exact
  3SAT formula of the paper's Figure 1, renders the availability gadget,
  and demonstrates the certificate maps in both directions (satisfying
  assignment → valid schedule → recovered satisfying assignment).
* :func:`counterexample_study` — the Section 4 worked example: the exact
  solver's optimum (9 slots) versus what MCT's contention-blind greedy
  achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.offline.counterexample import CounterexampleAnalysis, analyze
from ..core.offline.sat_reduction import (
    PAPER_FIGURE1_FORMULA,
    Sat3Instance,
    assignment_from_schedule,
    brute_force_sat,
    reduction_instance,
    render_gadget,
    schedule_from_assignment,
    verify_schedule,
)

__all__ = ["Figure1Study", "figure1_study", "counterexample_study", "render_offline_study"]


@dataclass
class Figure1Study:
    """Outcome of the Figure 1 / Theorem 1 demonstration."""

    gadget: str
    satisfying_assignment: List[bool]
    schedule_makespan: int
    horizon: int
    recovered_assignment: List[bool]
    recovered_satisfies: bool


def figure1_study(sat: Sat3Instance = PAPER_FIGURE1_FORMULA) -> Figure1Study:
    """Run the Theorem 1 demonstration on a (satisfiable) formula.

    Raises:
        ValueError: if the formula is unsatisfiable (the demonstration
            needs a yes-certificate; Theorem 1's no-side is covered by the
            test suite via exhaustive assignment enumeration).
    """
    assignment = brute_force_sat(sat)
    if assignment is None:
        raise ValueError("figure1_study needs a satisfiable formula")
    instance = reduction_instance(sat)
    schedule = schedule_from_assignment(sat, assignment)
    makespan = verify_schedule(instance, schedule)
    if makespan is None:  # pragma: no cover - guaranteed by Theorem 1
        raise RuntimeError("certificate schedule failed verification")
    recovered = assignment_from_schedule(sat, schedule)
    return Figure1Study(
        gadget=render_gadget(sat),
        satisfying_assignment=assignment,
        schedule_makespan=makespan,
        horizon=instance.horizon,
        recovered_assignment=recovered,
        recovered_satisfies=sat.satisfied_by(recovered),
    )


def counterexample_study(extra_up_slots: int = 6) -> CounterexampleAnalysis:
    """The Section 4 worked example (delegates to the offline module)."""
    return analyze(extra_up_slots)


def render_offline_study() -> str:
    """Full text report for both Section 4 artefacts."""
    fig1 = figure1_study()
    counter = counterexample_study()
    lines = [
        "Figure 1 — NP-completeness gadget (clause window of the reduction)",
        "",
        fig1.gadget,
        "",
        f"satisfying assignment: {['FT'[int(v)] for v in fig1.satisfying_assignment]}",
        f"certificate schedule completes m tasks in {fig1.schedule_makespan} slots "
        f"(horizon N = {fig1.horizon})",
        f"recovered assignment satisfies the formula: {fig1.recovered_satisfies}",
        "",
        "Section 4 worked example — MCT suboptimal under ncom = 1",
        "",
        f"exact optimal makespan:          {counter.optimal_makespan} (paper: 9)",
        f"online MCT realised makespan:    {counter.mct_online_makespan} (> optimal)",
        f"MCT's first-task choice:         P{counter.mct_first_choice_processor + 1} "
        "(paper: P1)",
    ]
    return "\n".join(lines)
