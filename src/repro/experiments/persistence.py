"""Campaign persistence: save and reload instance-level results.

Campaigns are expensive (the paper's full protocol is 296,400 simulation
runs); their raw outcome — per-instance makespans per heuristic — is tiny.
This module serialises that ground data to a JSON document so aggregates
can be recomputed, merged across machines, or re-analysed with different
metrics without re-simulating.

Format (one document per campaign)::

    {
      "format": "repro-campaign-v1",
      "meta": {...},                         # free-form provenance
      "records": [
        {"key": [n, ncom, wmin, factor, index, trial],
         "makespans": {"emct*": 512.0, ...}},
        ...
      ]
    }

Scenario keys are stored as JSON lists and restored as tuples;
:func:`rebuild_result` reconstructs a full
:class:`~repro.experiments.harness.CampaignResult` (accumulators included)
from the records alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .dfb import DfbAccumulator
from .harness import CampaignResult

__all__ = ["save_campaign", "load_records", "rebuild_result", "merge_records"]

FORMAT_TAG = "repro-campaign-v1"

Record = Tuple[tuple, Dict[str, float]]


def save_campaign(
    result: CampaignResult,
    path: Union[str, Path],
    *,
    meta: Optional[dict] = None,
) -> None:
    """Serialise a campaign's raw records to ``path``.

    Raises:
        ValueError: if the result carries no records (e.g. it was rebuilt
            from aggregates only).
    """
    if not result.records:
        raise ValueError("campaign result has no instance records to save")
    document = {
        "format": FORMAT_TAG,
        "meta": meta or {},
        "records": [
            {"key": list(key), "makespans": makespans}
            for key, makespans in result.records
        ],
    }
    Path(path).write_text(json.dumps(document, indent=1))


def load_records(path: Union[str, Path]) -> Tuple[List[Record], dict]:
    """Load raw records and metadata from a campaign document.

    Raises:
        ValueError: on format mismatch or malformed records.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format") != FORMAT_TAG:
        raise ValueError(
            f"unsupported campaign format {document.get('format')!r}; "
            f"expected {FORMAT_TAG!r}"
        )
    records: List[Record] = []
    for entry in document["records"]:
        key = tuple(entry["key"])
        makespans = {str(k): float(v) for k, v in entry["makespans"].items()}
        if not makespans:
            raise ValueError(f"record {key} has no makespans")
        records.append((key, makespans))
    return records, dict(document.get("meta", {}))


def rebuild_result(records: List[Record]) -> CampaignResult:
    """Reconstruct a :class:`CampaignResult` from raw records.

    The per-scenario accumulators are keyed by the scenario part of each
    instance key (everything but the trailing trial index), matching the
    keys the harness produces.
    """
    result = CampaignResult()
    for key, makespans in records:
        scenario_key = tuple(key[:-1])
        scenario_acc = result.per_scenario.setdefault(
            scenario_key, DfbAccumulator()
        )
        result.accumulator.add_instance(key, makespans)
        scenario_acc.add_instance(key, makespans)
        result.records.append((key, dict(makespans)))
        result.instances += 1
    return result


def merge_records(*record_sets: List[Record]) -> List[Record]:
    """Merge record lists from several (partial) campaigns.

    Instances appearing in several sets must agree exactly — a mismatch
    means two campaigns simulated "the same" instance differently (seed or
    code drift) and aggregating them would be meaningless.

    Raises:
        ValueError: on conflicting duplicate records.
    """
    merged: Dict[tuple, Dict[str, float]] = {}
    for records in record_sets:
        for key, makespans in records:
            if key in merged:
                if merged[key] != makespans:
                    raise ValueError(
                        f"conflicting results for instance {key}: "
                        f"{merged[key]} vs {makespans}"
                    )
                continue
            merged[key] = dict(makespans)
    return sorted(merged.items())
