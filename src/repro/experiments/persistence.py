"""Campaign persistence: save and reload instance-level results.

Campaigns are expensive (the paper's full protocol is 296,400 simulation
runs); their raw outcome — per-instance makespans per heuristic — is tiny.
This module serialises that ground data to a JSON document so aggregates
can be recomputed, merged across machines, or re-analysed with different
metrics without re-simulating.

Format (one document per campaign)::

    {
      "format": "repro-campaign-v1",
      "meta": {...},                         # free-form provenance
      "records": [
        {"key": [n, ncom, wmin, factor, index, trial],
         "makespans": {"emct*": 512.0, ...}},
        ...
      ]
    }

Scenario keys are stored as JSON lists and restored as tuples;
:func:`rebuild_result` reconstructs a full
:class:`~repro.experiments.harness.CampaignResult` (accumulators included)
from the records alone.

Alongside the one-shot campaign document, :class:`CampaignCheckpoint` is
an *append-only journal* of completed work units (JSON Lines: a header
line, then one object per (scenario, trial) unit).  The harness appends
each unit the moment it completes — in completion order, which under a
parallel backend is not campaign order — and on restart loads the journal
and re-simulates only the missing units.  JSON round-trips Python floats
exactly (shortest-repr encoding), so a resumed campaign's statistics are
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .dfb import DfbAccumulator
from .harness import CampaignResult

__all__ = [
    "save_campaign",
    "load_records",
    "rebuild_result",
    "merge_records",
    "CampaignCheckpoint",
]

FORMAT_TAG = "repro-campaign-v1"
CHECKPOINT_TAG = "repro-checkpoint-v1"

Record = Tuple[tuple, Dict[str, float]]


def save_campaign(
    result: CampaignResult,
    path: Union[str, Path],
    *,
    meta: Optional[dict] = None,
) -> None:
    """Serialise a campaign's raw records to ``path``.

    Raises:
        ValueError: if the result carries no records (e.g. it was rebuilt
            from aggregates only).
    """
    if not result.records:
        raise ValueError("campaign result has no instance records to save")
    document = {
        "format": FORMAT_TAG,
        "meta": meta or {},
        "records": [
            {"key": list(key), "makespans": makespans}
            for key, makespans in result.records
        ],
    }
    Path(path).write_text(json.dumps(document, indent=1))


def load_records(path: Union[str, Path]) -> Tuple[List[Record], dict]:
    """Load raw records and metadata from a campaign document.

    Raises:
        ValueError: on format mismatch or malformed records.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format") != FORMAT_TAG:
        raise ValueError(
            f"unsupported campaign format {document.get('format')!r}; "
            f"expected {FORMAT_TAG!r}"
        )
    records: List[Record] = []
    for entry in document["records"]:
        key = tuple(entry["key"])
        makespans = {str(k): float(v) for k, v in entry["makespans"].items()}
        if not makespans:
            raise ValueError(f"record {key} has no makespans")
        records.append((key, makespans))
    return records, dict(document.get("meta", {}))


def rebuild_result(records: List[Record]) -> CampaignResult:
    """Reconstruct a :class:`CampaignResult` from raw records.

    The per-scenario accumulators are keyed by the scenario part of each
    instance key (everything but the trailing trial index), matching the
    keys the harness produces.
    """
    result = CampaignResult()
    for key, makespans in records:
        scenario_key = tuple(key[:-1])
        scenario_acc = result.per_scenario.setdefault(
            scenario_key, DfbAccumulator()
        )
        result.accumulator.add_instance(key, makespans)
        scenario_acc.add_instance(key, makespans)
        result.records.append((key, dict(makespans)))
        result.instances += 1
    return result


class CampaignCheckpoint:
    """Append-only journal of completed campaign work units.

    Args:
        path: journal file location.  A missing file means "nothing done
            yet"; the header line is written on first append.
        meta: campaign-identity fingerprint (seed material, simulator
            options, slot budget — the harness builds it).  Written into
            the header on creation; on :meth:`load`, a journal whose
            fingerprint differs from ``meta`` is rejected, because mixing
            units simulated under a different seed or option set would
            produce statistics corresponding to no real campaign.

    The journal survives hard interruption: each unit is one ``write`` of
    one line, flushed immediately, and :meth:`load` simply drops a
    trailing partial line, so at worst the unit being written when the
    process died is re-simulated.  A journal torn *inside its header*
    (killed during the very first append) is treated as empty and
    rewritten — only a readable header proves there is anything to keep.
    """

    def __init__(self, path: Union[str, Path], *, meta: Optional[dict] = None):
        self.path = Path(path)
        self.meta = meta
        self._header_valid: Optional[bool] = None

    def _read_header(self) -> Optional[dict]:
        """The parsed header, or ``None`` for a torn/empty/absent one.

        Raises:
            ValueError: for a readable header that is not ours (foreign
                file) — clobbering it with campaign state would be worse
                than failing.
        """
        if not self.path.exists():
            return None
        with self.path.open() as handle:
            first = handle.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            return None  # torn during the first append: nothing to keep
        if not isinstance(header, dict) or header.get("format") != CHECKPOINT_TAG:
            raise ValueError(
                f"{self.path} is not a campaign checkpoint "
                f"(expected a {CHECKPOINT_TAG!r} header)"
            )
        return header

    def load(self) -> Dict[tuple, Tuple[Dict[str, float], List[str]]]:
        """Completed units: instance key → (makespans, truncated names).

        Raises:
            ValueError: when the file is not a checkpoint journal, or its
                fingerprint disagrees with this checkpoint's ``meta``
                (resuming a *different* campaign from it would silently
                blend stale results).
        """
        header = self._read_header()
        self._header_valid = header is not None
        if header is None:
            return {}
        stored_meta = header.get("meta")
        if (
            self.meta is not None
            and stored_meta is not None
            and stored_meta != self.meta
        ):
            raise ValueError(
                f"{self.path} was recorded for a different campaign "
                f"(journal fingerprint {stored_meta!r} != expected "
                f"{self.meta!r}); delete it or point --checkpoint elsewhere"
            )
        done: Dict[tuple, Tuple[Dict[str, float], List[str]]] = {}
        for line in self.path.read_text().splitlines()[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # trailing partial line from an interrupted append
            makespans = {
                str(k): float(v) for k, v in entry["makespans"].items()
            }
            done[tuple(entry["key"])] = (
                makespans,
                [str(name) for name in entry.get("truncated", [])],
            )
        return done

    def append(
        self,
        instance_key: tuple,
        makespans: Dict[str, float],
        truncated: Sequence[str] = (),
    ) -> None:
        """Record one completed unit (creates/heals the journal if needed)."""
        entry = {
            "key": list(instance_key),
            "makespans": dict(makespans),
            "truncated": list(truncated),
        }
        if self._header_valid is None:
            self._header_valid = self._read_header() is not None
        header_line = None
        if not self._header_valid:
            header: Dict[str, object] = {"format": CHECKPOINT_TAG}
            if self.meta is not None:
                header["meta"] = self.meta
            header_line = json.dumps(header) + "\n"
        # "w" rewrites a torn-header journal from scratch; a foreign file
        # can't reach here (_read_header raises before any append).
        with self.path.open("w" if header_line else "a") as handle:
            if header_line:
                handle.write(header_line)
                self._header_valid = True
            handle.write(json.dumps(entry) + "\n")
            handle.flush()


def merge_records(*record_sets: List[Record]) -> List[Record]:
    """Merge record lists from several (partial) campaigns.

    Instances appearing in several sets must agree exactly — a mismatch
    means two campaigns simulated "the same" instance differently (seed or
    code drift) and aggregating them would be meaningless.

    Raises:
        ValueError: on conflicting duplicate records.
    """
    merged: Dict[tuple, Dict[str, float]] = {}
    for records in record_sets:
        for key, makespans in records:
            if key in merged:
                if merged[key] != makespans:
                    raise ValueError(
                        f"conflicting results for instance {key}: "
                        f"{merged[key]} vs {makespans}"
                    )
                continue
            merged[key] = dict(makespans)
    return sorted(merged.items())
