"""Campaign persistence: save and reload instance-level results.

Campaigns are expensive (the paper's full protocol is 296,400 simulation
runs); their raw outcome — per-instance makespans per heuristic — is tiny.
This module serialises that ground data to a JSON document so aggregates
can be recomputed, merged across machines, or re-analysed with different
metrics without re-simulating.

Format (one document per campaign)::

    {
      "format": "repro-campaign-v1",
      "meta": {...},                         # free-form provenance
      "records": [
        {"key": [n, ncom, wmin, factor, index, trial],
         "makespans": {"emct*": 512.0, ...}},
        ...
      ]
    }

Scenario keys are stored as JSON lists and restored as tuples;
:func:`rebuild_result` reconstructs a full
:class:`~repro.experiments.harness.CampaignResult` (accumulators included)
from the records alone.

Alongside the one-shot campaign document, :class:`CampaignCheckpoint` is
an *append-only journal* of completed work units (JSON Lines: a header
line, then one object per (scenario, trial) unit).  The harness appends
each unit the moment it completes — in completion order, which under a
parallel backend is not campaign order — and on restart loads the journal
and re-simulates only the missing units.  JSON round-trips Python floats
exactly (shortest-repr encoding), so a resumed campaign's statistics are
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import threading
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .dfb import DfbAccumulator
from .harness import CampaignResult

__all__ = [
    "save_campaign",
    "load_records",
    "rebuild_result",
    "merge_records",
    "CampaignCheckpoint",
    "ShardedCheckpoint",
    "read_journal_entries",
    "discover_shards",
]

FORMAT_TAG = "repro-campaign-v1"
CHECKPOINT_TAG = "repro-checkpoint-v1"

#: Shard journals are ``<base>.shard-NN`` next to each other (multi-writer
#: journalling for the distributed campaign service, DESIGN.md §13).
SHARD_SUFFIX = ".shard-"

#: Entry keys with journal-level meaning; ``extra`` metadata must not
#: shadow them.
RESERVED_ENTRY_KEYS = frozenset({"key", "makespans", "truncated"})

Record = Tuple[tuple, Dict[str, float]]


def save_campaign(
    result: CampaignResult,
    path: Union[str, Path],
    *,
    meta: Optional[dict] = None,
) -> None:
    """Serialise a campaign's raw records to ``path``.

    Raises:
        ValueError: if the result carries no records (e.g. it was rebuilt
            from aggregates only).
    """
    if not result.records:
        raise ValueError("campaign result has no instance records to save")
    document = {
        "format": FORMAT_TAG,
        "meta": meta or {},
        "records": [
            {"key": list(key), "makespans": makespans}
            for key, makespans in result.records
        ],
    }
    Path(path).write_text(json.dumps(document, indent=1))


def load_records(path: Union[str, Path]) -> Tuple[List[Record], dict]:
    """Load raw records and metadata from a campaign document.

    Raises:
        ValueError: on format mismatch or malformed records.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format") != FORMAT_TAG:
        raise ValueError(
            f"unsupported campaign format {document.get('format')!r}; "
            f"expected {FORMAT_TAG!r}"
        )
    records: List[Record] = []
    for entry in document["records"]:
        key = tuple(entry["key"])
        makespans = {str(k): float(v) for k, v in entry["makespans"].items()}
        if not makespans:
            raise ValueError(f"record {key} has no makespans")
        records.append((key, makespans))
    return records, dict(document.get("meta", {}))


def rebuild_result(records: List[Record]) -> CampaignResult:
    """Reconstruct a :class:`CampaignResult` from raw records.

    The per-scenario accumulators are keyed by the scenario part of each
    instance key (everything but the trailing trial index), matching the
    keys the harness produces.
    """
    result = CampaignResult()
    for key, makespans in records:
        scenario_key = tuple(key[:-1])
        scenario_acc = result.per_scenario.setdefault(
            scenario_key, DfbAccumulator()
        )
        result.accumulator.add_instance(key, makespans)
        scenario_acc.add_instance(key, makespans)
        result.records.append((key, dict(makespans)))
        result.instances += 1
    return result


class CampaignCheckpoint:
    """Append-only journal of completed campaign work units.

    Args:
        path: journal file location.  A missing file means "nothing done
            yet"; the header line is written on first append.
        meta: campaign-identity fingerprint (seed material, simulator
            options, slot budget — the harness builds it).  Written into
            the header on creation; on :meth:`load`, a journal whose
            fingerprint differs from ``meta`` is rejected, because mixing
            units simulated under a different seed or option set would
            produce statistics corresponding to no real campaign.

    The journal survives hard interruption: each unit is one ``write`` of
    one line, flushed immediately, and :meth:`load` simply drops a
    trailing partial line, so at worst the unit being written when the
    process died is re-simulated.  A journal torn *inside its header*
    (killed during the very first append) is treated as empty and
    rewritten — only a readable header proves there is anything to keep.
    """

    def __init__(self, path: Union[str, Path], *, meta: Optional[dict] = None):
        self.path = Path(path)
        self.meta = meta
        self._header_valid: Optional[bool] = None
        self._append_lock = threading.Lock()

    def _read_header(self) -> Optional[dict]:
        """The parsed header, or ``None`` for a torn/empty/absent one.

        Raises:
            ValueError: for a readable header that is not ours (foreign
                file) — clobbering it with campaign state would be worse
                than failing.
        """
        if not self.path.exists():
            return None
        with self.path.open() as handle:
            first = handle.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            return None  # torn during the first append: nothing to keep
        if not isinstance(header, dict) or header.get("format") != CHECKPOINT_TAG:
            raise ValueError(
                f"{self.path} is not a campaign checkpoint "
                f"(expected a {CHECKPOINT_TAG!r} header)"
            )
        return header

    def load(self) -> Dict[tuple, Tuple[Dict[str, float], List[str]]]:
        """Completed units: instance key → (makespans, truncated names).

        Raises:
            ValueError: when the file is not a checkpoint journal, or its
                fingerprint disagrees with this checkpoint's ``meta``
                (resuming a *different* campaign from it would silently
                blend stale results).
        """
        header = self._read_header()
        self._header_valid = header is not None
        if header is None:
            return {}
        stored_meta = header.get("meta")
        if (
            self.meta is not None
            and stored_meta is not None
            and stored_meta != self.meta
        ):
            raise ValueError(
                f"{self.path} was recorded for a different campaign "
                f"(journal fingerprint {stored_meta!r} != expected "
                f"{self.meta!r}); delete it or point --checkpoint elsewhere"
            )
        done: Dict[tuple, Tuple[Dict[str, float], List[str]]] = {}
        for line in self.path.read_text().splitlines()[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # trailing partial line from an interrupted append
            makespans = {
                str(k): float(v) for k, v in entry["makespans"].items()
            }
            done[tuple(entry["key"])] = (
                makespans,
                [str(name) for name in entry.get("truncated", [])],
            )
        return done

    def append(
        self,
        instance_key: tuple,
        makespans: Dict[str, float],
        truncated: Sequence[str] = (),
        *,
        extra: Optional[dict] = None,
    ) -> None:
        """Record one completed unit (creates/heals the journal if needed).

        ``extra`` carries free-form provenance (worker id, wall-clock
        timestamp) that :meth:`load` ignores but observability tooling
        (:func:`read_journal_entries`, ``campaign-status``) reads back.
        Appends are thread-safe: the distributed coordinator journals
        from several connection handlers at once.
        """
        entry = {
            "key": list(instance_key),
            "makespans": dict(makespans),
            "truncated": list(truncated),
        }
        if extra:
            clash = RESERVED_ENTRY_KEYS & set(extra)
            if clash:
                raise ValueError(f"extra shadows reserved keys: {sorted(clash)}")
            entry.update(extra)
        with self._append_lock:
            if self._header_valid is None:
                self._header_valid = self._read_header() is not None
            header_line = None
            if not self._header_valid:
                header: Dict[str, object] = {"format": CHECKPOINT_TAG}
                if self.meta is not None:
                    header["meta"] = self.meta
                header_line = json.dumps(header) + "\n"
            # "w" rewrites a torn-header journal from scratch; a foreign
            # file can't reach here (_read_header raises before any
            # append).
            with self.path.open("w" if header_line else "a") as handle:
                if header_line:
                    handle.write(header_line)
                    self._header_valid = True
                handle.write(json.dumps(entry) + "\n")
                handle.flush()


def read_journal_entries(path: Union[str, Path]) -> List[dict]:
    """Raw journal entries (header excluded, torn tail dropped).

    Unlike :meth:`CampaignCheckpoint.load`, entries keep their ``extra``
    provenance fields (worker id, timestamp) and duplicates are *not*
    collapsed — this is the observability view, not the resume view.
    An absent or torn-header journal yields ``[]``.
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = path.read_text().splitlines()
    if not lines:
        return []
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        return []  # torn header: journal counts as empty
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_TAG:
        return []
    entries: List[dict] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail from an interrupted append
        entries.append(entry)
    return entries


def discover_shards(base: Union[str, Path]) -> List[Path]:
    """Existing shard-journal paths for ``base``, sorted by shard index.

    ``base`` may be the shard base path (``…/campaign.ckpt``) or a
    directory (every ``*.shard-NN`` inside it).  Sorting makes every
    consumer's iteration order deterministic regardless of directory
    enumeration order — the first half of the no-ordering-drift
    guarantee (the other half is that the harness folds restored units
    in campaign order, never journal order).
    """
    base = Path(base)
    if base.is_dir():
        pattern = f"*{SHARD_SUFFIX}*"
        parent = base
    else:
        pattern = f"{base.name}{SHARD_SUFFIX}*"
        parent = base.parent
    shards = [
        path
        for path in parent.glob(pattern)
        if not path.name.endswith(".tmp")
    ]
    return sorted(shards)


class ShardedCheckpoint:
    """A checkpoint journal split across per-shard files.

    One journal file has one writer lock; the distributed coordinator
    accepts results on many connection threads at once, so the journal
    is sharded — ``<base>.shard-00`` … ``<base>.shard-NN`` — and a unit
    routes to its shard by a stable hash of its instance key.  Stable
    routing means a resumed coordinator (same base, same shard count)
    appends each unit to the same file it would have used originally,
    keeping every shard individually append-only and torn-tail-healable
    exactly like a single :class:`CampaignCheckpoint`.

    :meth:`load` merges *all* existing shards (even beyond the
    configured count, so resuming with a different ``--shards`` never
    loses units) in sorted shard order, and rejects shards that disagree
    about a unit — partially overlapping journals are legitimate (a
    shard-count change re-routes keys), conflicting ones mean seed or
    code drift.  Merging is order-safe by construction: the result is
    keyed by instance key, and the harness folds restored units in
    campaign unit order, so statistics cannot drift with shard layout.

    Duck-compatible with :class:`CampaignCheckpoint` (``load`` /
    ``append``), so ``run_campaign(checkpoint=ShardedCheckpoint(...))``
    works unchanged.
    """

    def __init__(
        self,
        base: Union[str, Path],
        shards: int = 4,
        *,
        meta: Optional[dict] = None,
    ):
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        self.base = Path(base)
        self.shards = shards
        self.meta = meta
        self._shard_cache: Dict[Path, CampaignCheckpoint] = {}

    def shard_path(self, index: int) -> Path:
        return self.base.with_name(
            f"{self.base.name}{SHARD_SUFFIX}{index:02d}"
        )

    def shard(self, index: int) -> CampaignCheckpoint:
        """The shard journal for slot ``index`` (instances are cached)."""
        return self._shard_for(self.shard_path(index))

    def _shard_for(self, path: Path) -> CampaignCheckpoint:
        journal = self._shard_cache.get(path)
        if journal is None:
            journal = CampaignCheckpoint(path, meta=self.meta)
            self._shard_cache[path] = journal
        return journal

    def _route(self, instance_key: tuple) -> CampaignCheckpoint:
        digest = zlib.crc32(
            json.dumps(list(instance_key), default=repr).encode()
        )
        return self.shard(digest % self.shards)

    def existing_paths(self) -> List[Path]:
        """All shard files on disk (sorted), not just the routed range."""
        return discover_shards(self.base)

    def load(self) -> Dict[tuple, Tuple[Dict[str, float], List[str]]]:
        """Merged completed units across every existing shard.

        Raises:
            ValueError: when two shards disagree about one unit (drift),
                or any shard fails its own header/meta validation.
        """
        merged: Dict[tuple, Tuple[Dict[str, float], List[str]]] = {}
        origin: Dict[tuple, Path] = {}
        for path in self.existing_paths():
            for key, entry in self._shard_for(path).load().items():
                if key in merged:
                    if merged[key] != entry:
                        raise ValueError(
                            f"shard journals disagree about unit {key}: "
                            f"{origin[key]} has {merged[key]!r}, "
                            f"{path} has {entry!r} — seed or code drift; "
                            "refusing to merge"
                        )
                    continue
                merged[key] = entry
                origin[key] = path
        return merged

    def append(
        self,
        instance_key: tuple,
        makespans: Dict[str, float],
        truncated: Sequence[str] = (),
        *,
        extra: Optional[dict] = None,
    ) -> None:
        """Journal one unit into its (stably routed) shard."""
        self._route(instance_key).append(
            instance_key, makespans, truncated, extra=extra
        )


def merge_records(*record_sets: List[Record]) -> List[Record]:
    """Merge record lists from several (partial) campaigns.

    Instances appearing in several sets must agree exactly — a mismatch
    means two campaigns simulated "the same" instance differently (seed or
    code drift) and aggregating them would be meaningless.

    Raises:
        ValueError: on conflicting duplicate records.
    """
    merged: Dict[tuple, Dict[str, float]] = {}
    for records in record_sets:
        for key, makespans in records:
            if key in merged:
                if merged[key] != makespans:
                    raise ValueError(
                        f"conflicting results for instance {key}: "
                        f"{merged[key]} vs {makespans}"
                    )
                continue
            merged[key] = dict(makespans)
    return sorted(merged.items())
