"""Programmatic ablation studies for the design choices in DESIGN.md §5.

Each ablation runs paired simulations (identical availability samples) and
reports mean makespans side by side.  The benchmark harness
(``benchmarks/bench_ablation.py``) wraps these with timing and assertions;
this module is the reusable implementation plus text rendering, also
exposed through the CLI (``repro-experiments ablation``).

Ablations:

* ``replication``   — 0 / 1 / 2 extra replicas per task (paper: 2).
* ``replanning``    — event-driven vs every-slot scheduling rounds.
* ``ud-exact``      — UD with the paper's rank-1 P_UD vs matrix power.
* ``contention``    — Eq. 1 vs Eq. 2 (the ``*`` correction) on comm-heavy
  workloads.
* ``proactive``     — the dynamic class vs the proactive extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.plotting import format_table
from ..core.heuristics.registry import make_scheduler
from ..sim.master import MasterSimulator, SimulatorOptions
from ..workload.scenarios import Scenario, ScenarioGenerator

__all__ = ["AblationResult", "ABLATIONS", "run_ablation", "render_ablation"]


@dataclass
class AblationResult:
    """One ablation's outcome.

    Attributes:
        name: ablation id.
        arms: arm label → (mean makespan, mean scheduler rounds).
        instances: paired instances per arm.
    """

    name: str
    arms: Dict[str, Tuple[float, float]]
    instances: int


def _mean_over(
    scenarios: Sequence[Scenario],
    trials: int,
    heuristic: str,
    options: SimulatorOptions,
    max_slots: int = 400_000,
) -> Tuple[float, float, int]:
    total_makespan = 0.0
    total_rounds = 0.0
    count = 0
    for scenario in scenarios:
        for trial in range(trials):
            sim = MasterSimulator(
                scenario.build_platform(trial),
                scenario.app,
                make_scheduler(heuristic),
                options=options,
                rng=scenario.scheduler_rng(trial, heuristic),
            )
            report = sim.run(max_slots=max_slots)
            total_makespan += (
                report.makespan if report.makespan is not None else max_slots
            )
            total_rounds += report.scheduler_rounds
            count += 1
    return total_makespan / count, total_rounds / count, count


def _replication(scenarios, trials) -> AblationResult:
    arms = {}
    count = 0
    for cap in (0, 1, 2):
        options = SimulatorOptions(replication=cap > 0, max_replicas=max(cap, 0))
        mean, rounds, count = _mean_over(scenarios, trials, "emct", options)
        arms[f"{cap} extra replicas"] = (mean, rounds)
    return AblationResult("replication", arms, count)


def _replanning(scenarios, trials) -> AblationResult:
    arms = {}
    count = 0
    for label, every in (("event-driven", False), ("every-slot", True)):
        options = SimulatorOptions(replan_every_slot=every)
        mean, rounds, count = _mean_over(scenarios, trials, "emct*", options)
        arms[label] = (mean, rounds)
    return AblationResult("replanning", arms, count)


def _ud_exact(scenarios, trials) -> AblationResult:
    arms = {}
    count = 0
    for name in ("ud", "ud-exact"):
        mean, rounds, count = _mean_over(
            scenarios, trials, name, SimulatorOptions()
        )
        arms[name] = (mean, rounds)
    return AblationResult("ud-exact", arms, count)


def _contention(_scenarios, trials) -> AblationResult:
    # Uses its own contention-prone population (Table 3's ×10 setting).
    population = ScenarioGenerator(77).contention_prone(10, 3)
    arms = {}
    count = 0
    for name in ("mct", "mct*", "emct", "emct*"):
        mean, rounds, count = _mean_over(
            population, trials, name, SimulatorOptions()
        )
        arms[name] = (mean, rounds)
    return AblationResult("contention", arms, count)


def _proactive(scenarios, trials) -> AblationResult:
    arms = {}
    count = 0
    for label, proactive in (("dynamic", False), ("proactive", True)):
        options = SimulatorOptions(proactive=proactive)
        mean, rounds, count = _mean_over(scenarios, trials, "emct*", options)
        arms[label] = (mean, rounds)
    return AblationResult("proactive", arms, count)


ABLATIONS = {
    "replication": _replication,
    "replanning": _replanning,
    "ud-exact": _ud_exact,
    "contention": _contention,
    "proactive": _proactive,
}


def run_ablation(
    name: str,
    *,
    scenarios: int = 3,
    trials: int = 2,
    seed: int = 31,
    n: int = 10,
    ncom: int = 5,
    wmin: int = 5,
) -> AblationResult:
    """Run one named ablation on a fresh scenario population.

    Raises:
        KeyError: for unknown ablation names (message lists valid ones).
    """
    try:
        runner = ABLATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown ablation {name!r}; valid: {', '.join(sorted(ABLATIONS))}"
        ) from None
    generator = ScenarioGenerator(seed)
    population = [generator.scenario(n, ncom, wmin, i) for i in range(scenarios)]
    return runner(population, trials)


def render_ablation(result: AblationResult) -> str:
    """Text table for one ablation."""
    rows: List[tuple] = [
        (arm, round(mean, 1), round(rounds, 1))
        for arm, (mean, rounds) in result.arms.items()
    ]
    return format_table(
        ["arm", "mean makespan", "mean scheduler rounds"],
        rows,
        title=f"ablation: {result.name} ({result.instances} paired instances/arm)",
    )
