"""Programmatic ablation studies for the design choices in DESIGN.md §5.

Each ablation runs paired simulations (identical availability samples) and
reports mean makespans side by side.  The benchmark harness
(``benchmarks/bench_ablation.py``) wraps these with timing and assertions;
this module is the reusable implementation plus text rendering, also
exposed through the CLI (``repro-experiments ablation``).

Arms execute as picklable :class:`SimulationUnit` work units on an
execution backend (``--backend``/``--jobs``; DESIGN.md §4), and means are
reduced in unit order, so results are identical under serial and parallel
execution.

Ablations:

* ``replication``   — 0 / 1 / 2 extra replicas per task (paper: 2).
* ``replanning``    — replan-trigger policies (DESIGN.md §10): event-driven
  vs every-slot vs sticky, on the ``replan_policy`` knob.
* ``ud-exact``      — UD with the paper's rank-1 P_UD vs matrix power.
* ``contention``    — Eq. 1 vs Eq. 2 (the ``*`` correction) on comm-heavy
  workloads.
* ``proactive``     — the dynamic class vs the proactive extension.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from ..analysis.plotting import format_table
from ..core.heuristics.registry import make_scheduler
from ..sim.master import MasterSimulator, SimulatorOptions
from ..workload.scenarios import Scenario, ScenarioGenerator
from .backends import (
    ExecutionBackend,
    ScenarioRef,
    as_scenario_ref,
    make_backend,
    resolve_scenario,
)

__all__ = [
    "AblationResult",
    "ABLATIONS",
    "SimulationUnit",
    "run_ablation",
    "render_ablation",
]


@dataclass
class AblationResult:
    """One ablation's outcome.

    Attributes:
        name: ablation id.
        arms: arm label → (mean makespan, mean scheduler rounds).
        instances: paired instances per arm.
    """

    name: str
    arms: Dict[str, Tuple[float, float]]
    instances: int


@dataclass(frozen=True)
class SimulationUnit:
    """One (scenario, trial, heuristic, options) simulation as a work unit.

    ``run()`` returns ``(makespan, scheduler rounds)``; truncated runs are
    scored at the slot budget, as everywhere in the harness.
    """

    scenario_ref: ScenarioRef
    trial: int
    heuristic: str
    options: SimulatorOptions
    max_slots: int = 400_000

    def run(self) -> Tuple[float, float]:
        scenario = resolve_scenario(self.scenario_ref)
        sim = MasterSimulator(
            scenario.build_platform(self.trial),
            scenario.app,
            make_scheduler(self.heuristic),
            options=self.options,
            rng=scenario.scheduler_rng(self.trial, self.heuristic),
        )
        report = sim.run(max_slots=self.max_slots)
        makespan = (
            report.makespan if report.makespan is not None else self.max_slots
        )
        return float(makespan), float(report.scheduler_rounds)


def _mean_over(
    scenarios: Sequence[Scenario],
    trials: int,
    heuristic: str,
    options: SimulatorOptions,
    backend: ExecutionBackend,
    max_slots: int = 400_000,
) -> Tuple[float, float, int]:
    units = [
        SimulationUnit(
            scenario_ref=as_scenario_ref(scenario),
            trial=trial,
            heuristic=heuristic,
            options=options,
            max_slots=max_slots,
        )
        for scenario in scenarios
        for trial in range(trials)
    ]
    outcomes: Dict[int, Tuple[float, float]] = dict(backend.run(units))
    total_makespan = 0.0
    total_rounds = 0.0
    for index in range(len(units)):  # unit order: deterministic reduction
        makespan, rounds = outcomes[index]
        total_makespan += makespan
        total_rounds += rounds
    count = len(units)
    return total_makespan / count, total_rounds / count, count


def _replication(scenarios, trials, backend, base_options) -> AblationResult:
    arms = {}
    count = 0
    for cap in (0, 1, 2):
        options = replace(
            base_options, replication=cap > 0, max_replicas=max(cap, 0)
        )
        mean, rounds, count = _mean_over(
            scenarios, trials, "emct", options, backend
        )
        arms[f"{cap} extra replicas"] = (mean, rounds)
    return AblationResult("replication", arms, count)


def _replanning(scenarios, trials, backend, base_options) -> AblationResult:
    """Replan-trigger semantics, on the ``replan_policy`` knob (DESIGN.md
    §10): the paper's event-driven default, the every-slot ablation arm
    (``replan_every_slot`` remains an alias of that policy), and the
    relaxed sticky policy in one table.  ``experiments/replan_study.py``
    is the full shape validation; this arm shows the makespan/round
    trade-off at a glance."""
    arms = {}
    count = 0
    for label, policy in (
        ("event-driven", "event"),
        ("every-slot", "every-slot"),
        ("sticky", "sticky"),
    ):
        # Reset the legacy alias flag alongside the policy: replace() on a
        # base built with replan_every_slot=True would otherwise make
        # __post_init__ re-canonicalise the event arm back to every-slot
        # (and reject the sticky arm as conflicting).
        options = replace(
            base_options, replan_policy=policy, replan_every_slot=False
        )
        mean, rounds, count = _mean_over(
            scenarios, trials, "emct*", options, backend
        )
        arms[label] = (mean, rounds)
    return AblationResult("replanning", arms, count)


def _ud_exact(scenarios, trials, backend, base_options) -> AblationResult:
    arms = {}
    count = 0
    for name in ("ud", "ud-exact"):
        mean, rounds, count = _mean_over(
            scenarios, trials, name, base_options, backend
        )
        arms[name] = (mean, rounds)
    return AblationResult("ud-exact", arms, count)


def _contention(_scenarios, trials, backend, base_options) -> AblationResult:
    # Uses its own contention-prone population (Table 3's ×10 setting).
    population = ScenarioGenerator(77).contention_prone(10, 3)
    arms = {}
    count = 0
    for name in ("mct", "mct*", "emct", "emct*"):
        mean, rounds, count = _mean_over(
            population, trials, name, base_options, backend
        )
        arms[name] = (mean, rounds)
    return AblationResult("contention", arms, count)


def _proactive(scenarios, trials, backend, base_options) -> AblationResult:
    arms = {}
    count = 0
    for label, proactive in (("dynamic", False), ("proactive", True)):
        options = replace(base_options, proactive=proactive)
        mean, rounds, count = _mean_over(
            scenarios, trials, "emct*", options, backend
        )
        arms[label] = (mean, rounds)
    return AblationResult("proactive", arms, count)


ABLATIONS = {
    "replication": _replication,
    "replanning": _replanning,
    "ud-exact": _ud_exact,
    "contention": _contention,
    "proactive": _proactive,
}


def run_ablation(
    name: str,
    *,
    scenarios: int = 3,
    trials: int = 2,
    seed: int = 31,
    n: int = 10,
    ncom: int = 5,
    wmin: int = 5,
    backend=None,
    jobs=None,
    step_mode: str = "span",
    replan_policy: str = "event",
) -> AblationResult:
    """Run one named ablation on a fresh scenario population.

    Raises:
        KeyError: for unknown ablation names (message lists valid ones).
    """
    try:
        runner = ABLATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown ablation {name!r}; valid: {', '.join(sorted(ABLATIONS))}"
        ) from None
    generator = ScenarioGenerator(seed)
    population = [generator.scenario(n, ncom, wmin, i) for i in range(scenarios)]
    return runner(
        population,
        trials,
        make_backend(backend, jobs=jobs),
        SimulatorOptions(step_mode=step_mode, replan_policy=replan_policy),
    )


def render_ablation(result: AblationResult) -> str:
    """Text table for one ablation."""
    rows: List[tuple] = [
        (arm, round(mean, 1), round(rounds, 1))
        for arm, (mean, rounds) in result.arms.items()
    ]
    return format_table(
        ["arm", "mean makespan", "mean scheduler rounds"],
        rows,
        title=f"ablation: {result.name} ({result.instances} paired instances/arm)",
    )
