"""Model-mismatch study: Markov beliefs on non-Markovian ground truth.

The paper's Section 8 names this the key open question: real desktop-grid
availability is *not* memoryless (Weibull-ish UP intervals, heavy tails),
so do the Markov-informed heuristics keep their edge when the world
violates their assumption?

This study runs the heuristic comparison twice on statistically matched
platforms:

* **markov** ground truth — each host's availability sampled from the
  paper's chain distribution (Section 7);
* **weibull** ground truth — heavy-tailed UP sojourns
  (:class:`~repro.sim.availability.WeibullSource`), with each host's
  *belief* chain fitted from a history window by transition counting —
  exactly what a deployment would have to do.

Reported per ground truth: average dfb of each heuristic (paired samples,
as everywhere else in this package).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..analysis.plotting import format_table
from ..core.heuristics.registry import make_scheduler
from ..core.markov import MarkovAvailabilityModel, paper_random_model
from ..experiments.dfb import DfbAccumulator
from ..rng import RngFactory
from ..sim.availability import MarkovSource, TraceSource, WeibullSource
from ..sim.master import MasterSimulator, SimulatorOptions
from ..sim.platform import Platform, Processor
from ..workload.application import IterativeApplication
from .backends import make_backend

__all__ = [
    "fit_markov_belief",
    "MismatchStudyResult",
    "MismatchUnit",
    "run_mismatch_study",
    "render_mismatch_study",
]


def fit_markov_belief(
    states: Sequence[int], smoothing: float = 1.0
) -> MarkovAvailabilityModel:
    """Fit a 3-state chain to an observed trace by transition counting.

    Args:
        states: observed state sequence.
        smoothing: additive (Laplace) smoothing mass per transition, so
            unobserved transitions keep non-zero probability and the
            fitted chain stays recurrent.
    """
    states = np.asarray(states)
    if states.ndim != 1 or len(states) < 2:
        raise ValueError("need a 1-D trace with at least two slots")
    counts = np.full((3, 3), float(smoothing))
    np.add.at(counts, (states[:-1].astype(int), states[1:].astype(int)), 1.0)
    return MarkovAvailabilityModel(counts / counts.sum(axis=1, keepdims=True))


@dataclass
class MismatchStudyResult:
    """dfb aggregates per ground-truth kind."""

    accumulators: Dict[str, DfbAccumulator]
    heuristics: tuple
    instances_per_kind: int

    def rows(self, kind: str) -> List[tuple]:
        acc = self.accumulators[kind]
        return [(name, acc.average_dfb(name)) for name in acc.heuristics()]


def _build_platform(
    kind: str,
    p: int,
    factory: RngFactory,
    trial: int,
    *,
    history_slots: int = 4000,
    horizon_slots: int = 200_000,
) -> Platform:
    processors = []
    for q in range(p):
        if kind == "markov":
            model = paper_random_model(factory.generator("chain", q))
            source = MarkovSource(
                model, factory.generator("avail", kind, trial, q)
            )
            belief = model
            avail = source
        else:
            param_rng = factory.generator("wparam", q)
            source = WeibullSource(
                shape=0.6,
                scale=float(param_rng.uniform(20, 80)),
                mean_reclaimed=float(param_rng.uniform(5, 20)),
                mean_down=float(param_rng.uniform(10, 40)),
                p_up_to_reclaimed=0.7,
                rng=factory.generator("avail", kind, trial, q),
            )
            history = np.array(
                [source.state_at(t) for t in range(history_slots)], dtype=np.uint8
            )
            belief = fit_markov_belief(history)
            # The run replays the trace *after* the history window, so the
            # belief is fitted on the past, not on the evaluation data.
            future = np.array(
                [
                    source.state_at(t)
                    for t in range(history_slots, history_slots + horizon_slots)
                ],
                dtype=np.uint8,
            )
            avail = TraceSource(future)
        speed = int(factory.generator("speed", q).integers(2, 20, endpoint=True))
        processors.append(
            Processor(index=q, speed_w=speed, availability=avail, belief=belief)
        )
    return Platform(processors, ncom=5)


@dataclass(frozen=True)
class MismatchUnit:
    """One (ground-truth kind, trial, heuristic) run as a work unit.

    The unit rebuilds its platform from ``(seed, kind, trial)`` — the
    derivation never involves the heuristic, so every heuristic of an
    instance sees the identical availability sample regardless of which
    worker simulates it.
    """

    kind: str
    trial: int
    heuristic: str
    seed: int
    p: int
    max_slots: int = 200_000
    step_mode: str = "span"
    replan_policy: str = "event"

    def run(self) -> float:
        app = IterativeApplication(
            tasks_per_iteration=12, iterations=10, t_prog=8, t_data=2
        )
        factory = RngFactory(self.seed)
        platform = _build_platform(self.kind, self.p, factory, self.trial)
        sim = MasterSimulator(
            platform,
            app,
            make_scheduler(self.heuristic),
            options=SimulatorOptions(
                step_mode=self.step_mode,
                replan_policy=self.replan_policy,
            ),
            rng=factory.generator("sched", self.kind, self.trial, self.heuristic),
        )
        report = sim.run(max_slots=self.max_slots)
        return float(
            report.makespan if report.makespan is not None else self.max_slots
        )


def run_mismatch_study(
    *,
    heuristics: Sequence[str] = ("mct", "emct*", "ud*", "lw", "random"),
    p: int = 12,
    trials: int = 3,
    seed=2011,
    backend=None,
    jobs=None,
    step_mode: str = "span",
    replan_policy: str = "event",
) -> MismatchStudyResult:
    """Run the paired mismatch comparison.

    Each (kind, trial) instance presents the same availability sample to
    every heuristic; dfb is computed within the heuristic population per
    instance, separately for each ground-truth kind.  ``backend``/``jobs``
    select the execution backend (DESIGN.md §4); results are
    backend-independent.
    """
    kinds = ("markov", "weibull")
    units = [
        MismatchUnit(
            kind=kind,
            trial=trial,
            heuristic=name,
            seed=seed,
            p=p,
            step_mode=step_mode,
            replan_policy=replan_policy,
        )
        for kind in kinds
        for trial in range(trials)
        for name in heuristics
    ]
    outcomes = dict(make_backend(backend, jobs=jobs).run(units))
    accumulators = {kind: DfbAccumulator() for kind in kinds}
    index = 0
    instances = 0
    for kind in kinds:
        for trial in range(trials):
            makespans = {}
            for name in heuristics:
                makespans[name] = outcomes[index]
                index += 1
            accumulators[kind].add_instance((kind, trial), makespans)
        instances = accumulators[kind].instance_count
    return MismatchStudyResult(
        accumulators=accumulators,
        heuristics=tuple(heuristics),
        instances_per_kind=instances,
    )


def render_mismatch_study(result: MismatchStudyResult) -> str:
    """Side-by-side dfb table for both ground truths."""
    markov = dict(result.rows("markov"))
    weibull = dict(result.rows("weibull"))
    names = sorted(markov, key=lambda n: markov[n])
    rows = [
        (name, round(markov[name], 2), round(weibull[name], 2)) for name in names
    ]
    return format_table(
        ["Algorithm", "dfb (markov truth)", "dfb (weibull truth)"],
        rows,
        title=(
            "Model-mismatch study — Markov beliefs vs ground truth "
            f"({result.instances_per_kind} instances per kind)"
        ),
    )
