"""Deterministic random-number-stream management.

Every stochastic component in this package (availability trace generation,
scenario sampling, the random heuristics) draws from an explicit
:class:`numpy.random.Generator`.  Nothing reads global RNG state, so a run
is fully determined by the seeds fed in at the top.

The paper's evaluation protocol varies the seed of the state-transition RNG
across trials while holding the scenario fixed (Section 7).  To support that
cleanly we derive *named* child streams from a root seed with
:class:`numpy.random.SeedSequence` — the child for ``("trial", 3)`` is
statistically independent from the child for ``("scenario", 3)`` yet both
are reproducible from the root.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Union

import numpy as np

__all__ = [
    "DEFAULT_SCHEDULER_SEED",
    "RngFactory",
    "RunStreams",
    "default_scheduler_rng",
    "generator_from",
    "derive_seed",
    "spawn_run_streams",
]

SeedLike = Union[int, np.random.SeedSequence, None]

#: Root seed for scheduler randomness when the caller supplies none.  A
#: fixed default keeps ad-hoc runs reproducible (re-running the same script
#: gives the same result); campaign code always passes an explicit
#: per-(scenario, trial, heuristic) stream instead (DESIGN.md §2).  Defined
#: here — rather than in :mod:`repro.sim.master`, which re-exports it — so
#: that the scheduler-facing context types can use the same stream without
#: importing the simulator.
DEFAULT_SCHEDULER_SEED = 0x5EED_1D06


def default_scheduler_rng() -> "np.random.Generator":
    """The seeded fallback stream for scheduler randomness.

    Used by :class:`~repro.sim.master.MasterSimulator` and by
    :class:`~repro.core.heuristics.base.SchedulingContext` when no explicit
    generator is passed: an unseeded ``default_rng()`` would silently fall
    back to OS entropy and make randomised heuristics unreproducible
    run-to-run.
    """
    return RngFactory(DEFAULT_SCHEDULER_SEED).generator("scheduler")


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def _key_to_ints(key: Iterable) -> list[int]:
    """Map a mixed tuple of strings/ints to the integer spawn key numpy wants."""
    out: list[int] = []
    for part in key:
        if isinstance(part, str):
            # Stable, platform-independent string hash (FNV-1a, 64-bit).
            h = 0xCBF29CE484222325
            for byte in part.encode("utf-8"):
                h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            out.append(h)
        elif isinstance(part, (int, np.integer)):
            out.append(int(part) & 0xFFFFFFFFFFFFFFFF)
        else:
            raise TypeError(
                f"stream key parts must be str or int, got {type(part).__name__}"
            )
    return out


class RngFactory:
    """Derives independent, reproducible generators from one root seed.

    >>> fac = RngFactory(1234)
    >>> g1 = fac.generator("scenario", 0)
    >>> g2 = fac.generator("trial", 0)
    >>> fac2 = RngFactory(1234)
    >>> float(g1.random()) == float(fac2.generator("scenario", 0).random())
    True
    """

    def __init__(self, root_seed: SeedLike = None):
        self._root = _as_seed_sequence(root_seed)

    @property
    def root_entropy(self):
        """The root entropy, for logging / provenance records."""
        return self._root.entropy

    def seed_sequence(self, *key) -> np.random.SeedSequence:
        """A child :class:`~numpy.random.SeedSequence` for the given key."""
        ints = _key_to_ints(key)
        return np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=tuple(ints)
        )

    def generator(self, *key) -> np.random.Generator:
        """A fresh :class:`~numpy.random.Generator` for the given key.

        Calling twice with the same key returns generators producing the
        same stream (useful for replaying a single trial in isolation).
        """
        return np.random.default_rng(self.seed_sequence(*key))


class RunStreams(NamedTuple):
    """The per-run stream bundle of one simulation run.

    Attributes:
        scheduler: the heuristic's internal randomness.
        bootstrap: auxiliary draws made before the simulation starts
            (initial-state sampling, tie-break salts in future studies).
        availability: the ground-truth state-transition stream.
    """

    scheduler: np.random.Generator
    bootstrap: np.random.Generator
    availability: np.random.Generator


def spawn_run_streams(master_seed: SeedLike, n: int) -> List[RunStreams]:
    """Derive ``n`` independent per-run stream bundles from one seed.

    The single derivation rule for multi-run drivers (the batch campaign
    engine's standalone cohorts, benchmarks, test sweeps): run ``i``
    gets the named children ``("run", i, "sched" | "boot" | "avail")``
    of ``master_seed``, so streams are independent across runs *and*
    across roles, and any run can be replayed in isolation from
    ``(master_seed, i)`` alone.  Replaces ad-hoc ``seed + i`` arithmetic,
    which silently correlates neighbouring runs.

    Campaign units keep their scenario-keyed derivation
    (:meth:`~repro.workload.scenarios.Scenario.scheduler_rng` /
    :meth:`~repro.workload.scenarios.Scenario.build_platform`): there the
    availability stream must be shared across heuristics of one trial,
    which is a different contract from the independent bundles produced
    here.

    Args:
        master_seed: root entropy for the whole batch of runs.
        n: number of runs.

    Returns:
        One :class:`RunStreams` per run, in run order.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    factory = RngFactory(master_seed)
    return [
        RunStreams(
            scheduler=factory.generator("run", i, "sched"),
            bootstrap=factory.generator("run", i, "boot"),
            availability=factory.generator("run", i, "avail"),
        )
        for i in range(n)
    ]


def generator_from(seed: SeedLike) -> np.random.Generator:
    """Convenience: build a generator directly from a seed-like value."""
    return np.random.default_rng(_as_seed_sequence(seed))


def derive_seed(root_seed: SeedLike, *key) -> int:
    """A stable 63-bit integer seed derived from ``root_seed`` and ``key``.

    Useful when an API wants a plain integer seed (e.g. recorded in a
    provenance dict) rather than a generator object.
    """
    seq = RngFactory(root_seed).seed_sequence(*key)
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)
