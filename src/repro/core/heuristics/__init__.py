"""The paper's scheduling heuristics (Section 6) and extensions."""

from .base import (
    GreedyScheduler,
    ProcessorView,
    RoundState,
    Scheduler,
    SchedulingContext,
    completion_time_batch,
    completion_time_estimate,
)
from .lw import LwScheduler
from .mct import EmctScheduler, MctScheduler
from .passive import PassiveScheduler
from .random_based import RandomScheduler, WeightedRandomScheduler, make_random_variant
from .registry import (
    GREEDY_HEURISTICS,
    HEURISTIC_FACTORIES,
    PAPER_HEURISTICS,
    TABLE2_ORDER,
    available_heuristics,
    make_scheduler,
)
from .ud import UdScheduler

__all__ = [
    "Scheduler",
    "GreedyScheduler",
    "SchedulingContext",
    "ProcessorView",
    "RoundState",
    "completion_time_estimate",
    "completion_time_batch",
    "RandomScheduler",
    "WeightedRandomScheduler",
    "make_random_variant",
    "MctScheduler",
    "EmctScheduler",
    "LwScheduler",
    "UdScheduler",
    "PassiveScheduler",
    "make_scheduler",
    "available_heuristics",
    "HEURISTIC_FACTORIES",
    "PAPER_HEURISTICS",
    "TABLE2_ORDER",
    "GREEDY_HEURISTICS",
]
