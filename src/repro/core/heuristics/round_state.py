"""Array-backed scheduling context: the :class:`RoundState` API.

The legacy scheduler contract materialises a :class:`~repro.core.heuristics.
base.ProcessorView` dataclass per processor per scheduling round and scores
candidates one Python call at a time.  The paper's heuristics, however, only
consume a handful of per-processor *scalars* — state, :math:`w_q`,
``Delay(q)``, pinned count, program ownership, and belief-chain
probabilities — which is exactly the shape a structure-of-arrays layout
serves.  :class:`RoundState` holds those scalars as parallel numpy columns:

===================  =========  ==============================================
column               dtype      meaning
===================  =========  ==============================================
``state``            uint8      ground-truth state vector (``ProcState`` ints)
``speed_w``          int64      :math:`w_q` (static)
``delay``            int64      the paper's ``Delay(q)`` estimate
``pinned_count``     int64      instances whose work has begun on the worker
``has_program``      bool       full program resident
``prog_remaining``   int64      program transfer slots still needed
===================  =========  ==============================================

plus lazily computed, cached *belief columns* (:meth:`belief_column`)
derived from each processor's Markov chain: ``p_uu``, ``p_plus`` (Lemma 1),
``pi_u``, ``pi_d``, ``e_up`` (Theorem 2's :math:`E(up)`), and the UD
heuristic's precomputed ``ud_base`` / ``ud_avg_down`` / ``ud_degenerate``.
Belief columns hold ``NaN`` where a processor has no belief model;
:meth:`require_beliefs` converts that into the same ``ValueError`` the
legacy scalar heuristics raise.

**Ownership and maintenance.**  The object is a dumb container: whoever
owns it (normally :class:`~repro.sim.master.MasterSimulator`) writes the
dynamic columns in place and is responsible for keeping them equal to what
the legacy eager snapshot would contain at every scheduling round.  The
master maintains them *incrementally* — O(changed processors) per round,
see DESIGN.md §8 for the event → dirty-column table — instead of rebuilding
p views from scratch.  Mutators must call :meth:`invalidate` after a batch
of column writes so the lazy compatibility caches are dropped.

**Compatibility shim.**  :meth:`view` materialises a single legacy
:class:`ProcessorView` (cached until :meth:`invalidate`), and
:meth:`as_context` wraps the whole state in a
:class:`~repro.core.heuristics.base.SchedulingContext` whose ``processors``
sequence materialises views lazily on first access — so external heuristics
written against the legacy scalar API keep working, paying the dataclass
cost only for the processors they actually touch.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...types import ProcState
from ..expectation import expected_next_up, p_plus
from ..markov import MarkovAvailabilityModel

__all__ = ["RoundState", "StackedRoundState", "LazyViewSequence"]

#: Process-global refresh-token source (see :attr:`RoundState.version`).
_VERSION_COUNTER = itertools.count(1)

#: Stamp batches retained by :meth:`RoundState.changed_since` (a bound on
#: how many refreshes a consumer may lag before it must rebuild).
_STAMP_HISTORY = 32


def _ud_avg_down(model: MarkovAvailabilityModel) -> float:
    """The UD approximation's stationary-weighted escape probability.

    Matches the per-call expression in
    :func:`~repro.core.expectation.p_no_down_approx`; 0.0 for degenerate
    chains (``pi_u + pi_r <= 0``), which the ``ud_degenerate`` column
    routes to the legacy special case instead.
    """
    pi_u, pi_r = model.pi_u, model.pi_r
    if pi_u + pi_r <= 0.0:
        return 0.0
    return (model.p_ud * pi_u + model.p_rd * pi_r) / (pi_u + pi_r)


#: name -> scalar extractor for the cached belief-derived columns.
_BELIEF_COLUMNS: Dict[str, Callable[[MarkovAvailabilityModel], float]] = {
    "p_uu": lambda m: m.p_uu,
    "p_plus": p_plus,
    "pi_u": lambda m: m.pi_u,
    "pi_d": lambda m: m.pi_d,
    "e_up": expected_next_up,
    "ud_base": lambda m: 1.0 - m.p_ud,
    "ud_avg_down": _ud_avg_down,
    "ud_degenerate": lambda m: 1.0 if (m.pi_u + m.pi_r) <= 0.0 else 0.0,
}


class LazyViewSequence(Sequence):
    """``SchedulingContext.processors`` backed by a :class:`RoundState`.

    Indexing materialises (and caches) the requested
    :class:`~repro.core.heuristics.base.ProcessorView`; iteration
    materialises all of them.  Field-for-field equal to the eagerly built
    legacy snapshots (asserted by the shim test suite).
    """

    def __init__(self, round_state: "RoundState"):
        self._rs = round_state

    def __len__(self) -> int:
        return len(self._rs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._rs.view(q) for q in range(*index.indices(len(self)))]
        q = int(index)
        if q < 0:
            q += len(self)
        if not 0 <= q < len(self):
            raise IndexError(f"processor index {index} out of range")
        return self._rs.view(q)

    def __iter__(self):
        for q in range(len(self)):
            yield self._rs.view(q)


class RoundState:
    """Structure-of-arrays scheduling context shared across rounds.

    Args:
        speed_w: per-processor :math:`w_q` (static column).
        beliefs: per-processor Markov belief model (``None`` entries allowed;
            heuristics that need a belief raise on them, as in the legacy
            path).
        t_prog: program transfer length in slots.
        t_data: task input transfer length in slots.
        ncom: master channel budget (``None`` = unbounded).
        rng: RNG stream reserved for scheduler randomness.  Must be the
            *same* stream the legacy context would carry, so that the batch
            and scalar paths draw identical sequences.
        pipeline_provider: callable ``q -> tuple`` returning the worker's
            ``pinned_pipeline`` in service order, used only when a legacy
            ``ProcessorView`` is materialised through the shim.  Defaults
            to empty pipelines.
        slot: current time slot (updated by the owner per round).
        remaining_tasks: the context's ``m - m'`` (updated per round).
    """

    def __init__(
        self,
        *,
        speed_w: Sequence[int],
        beliefs: Sequence[Optional[MarkovAvailabilityModel]],
        t_prog: int,
        t_data: int,
        ncom: Optional[int],
        rng: np.random.Generator,
        pipeline_provider: Optional[Callable[[int], tuple]] = None,
        slot: int = 0,
        remaining_tasks: int = 0,
    ):
        self.speed_w = np.asarray(speed_w, dtype=np.int64)
        p = int(self.speed_w.size)
        self.beliefs: List[Optional[MarkovAvailabilityModel]] = list(beliefs)
        if len(self.beliefs) != p:
            raise ValueError(
                f"beliefs has {len(self.beliefs)} entries for {p} processors"
            )
        self.t_prog = t_prog
        self.t_data = t_data
        self.ncom = ncom
        self.rng = rng
        self.slot = slot
        self.remaining_tasks = remaining_tasks

        # Dynamic columns, written in place by the owner.
        self.state = np.full(p, int(ProcState.DOWN), dtype=np.uint8)
        self.delay = np.zeros(p, dtype=np.int64)
        self.pinned_count = np.zeros(p, dtype=np.int64)
        self.has_program = np.zeros(p, dtype=bool)
        self.prog_remaining = np.full(p, int(t_prog), dtype=np.int64)

        #: Refresh token: renewed by :meth:`invalidate`, so schedulers can
        #: key per-round caches (candidate sets, score rows) and drop them
        #: exactly when the columns move.  Drawn from a process-global
        #: counter so tokens never collide across RoundState instances.
        self.version = next(_VERSION_COUNTER)

        #: Per-processor dirty flags for the owner's incremental refresh
        #: (DESIGN.md §8/§9): the owner sets ``dirty[q] = 1`` at every
        #: mutation that can move processor ``q``'s worker-derived columns
        #: and clears flags as it recomputes them.  Owned here so the
        #: maintenance contract travels with the state object; hot paths
        #: may hold a local alias (it is a plain mutable ``bytearray``).
        #: Starts all-dirty: no column is current until first refreshed.
        self.dirty = bytearray(b"\x01" * p)

        #: Per-processor *column stamps* for cross-round score caching
        #: (DESIGN.md §11): the owner bumps ``col_stamp[q]`` — via
        #: :meth:`stamp_changed` — every time it rewrites processor
        #: ``q``'s worker-derived columns, so schedulers can keep score
        #: rows alive across rounds and recompute only processors whose
        #: stamp moved.  ``stamped`` opts the contract in: it stays False
        #: unless the owner promises to stamp *every* column write
        #: (:class:`~repro.sim.master.MasterSimulator` does); hand-built
        #: states (tests, :meth:`from_views`) leave it off so mutations
        #: they don't stamp can never serve stale cached scores.
        self.stamped = False
        self.col_stamp: List[int] = [0] * p
        self._stamp_serial = 0
        #: Bounded ring of recent stamp batches ``(serial, qs)`` — lets a
        #: consumer that remembers the serial it last saw ask exactly
        #: which processors moved since (:meth:`changed_since`), instead
        #: of comparing all p stamps.
        self._stamp_history: deque = deque(maxlen=_STAMP_HISTORY)

        self._pipeline_provider = pipeline_provider or (lambda q: ())
        #: Optional owner hook called with a processor index before a lazy
        #: ``ProcessorView`` materialises: owners that defer column updates
        #: for processors outside the scoring set (the master skips
        #: non-UP workers) use it to bring those columns current on demand.
        self.freshen: Optional[Callable[[int], None]] = None
        self._belief_columns: Dict[str, np.ndarray] = {}
        self._belief_column_lists: Dict[str, list] = {}
        self._speed_list: Optional[list] = None
        self._views: Dict[int, object] = {}
        self._ctx = None

    def __len__(self) -> int:
        return int(self.speed_w.size)

    # ------------------------------------------------------------------ #
    # Belief-derived columns.                                              #
    # ------------------------------------------------------------------ #
    def belief_column(self, name: str) -> np.ndarray:
        """The cached belief-derived column ``name`` (NaN where no belief).

        Columns are computed lazily on first access with the *same* scalar
        functions the legacy heuristics call per view, so the cached floats
        are bit-identical to the legacy per-round computations.
        """
        column = self._belief_columns.get(name)
        if column is None:
            try:
                fn = _BELIEF_COLUMNS[name]
            except KeyError:
                known = ", ".join(sorted(_BELIEF_COLUMNS))
                raise KeyError(
                    f"unknown belief column {name!r}; known columns: {known}"
                ) from None
            column = np.full(len(self), np.nan, dtype=np.float64)
            for q, model in enumerate(self.beliefs):
                if model is not None:
                    column[q] = fn(model)
            self._belief_columns[name] = column
        return column

    def require_beliefs(self, indices: np.ndarray, needs: str) -> None:
        """Raise the legacy missing-belief ``ValueError`` if any of
        ``indices`` has no belief model, naming the first such index in
        ``indices`` order — the same processor the legacy scalar loop
        (which scores candidates in ascending order) would have tripped
        on first."""
        for q in np.asarray(indices).tolist():
            if self.beliefs[q] is None:
                raise ValueError(
                    f"processor {q} has no Markov belief; {needs}"
                )

    def belief_column_list(self, name: str) -> list:
        """The belief column as a cached Python float list (static, like
        the column itself) — the scheduler hot path gathers from lists to
        skip per-call numpy fancy indexing."""
        column = self._belief_column_lists.get(name)
        if column is None:
            column = self.belief_column(name).tolist()
            self._belief_column_lists[name] = column
        return column

    def speed_list(self) -> list:
        """``speed_w`` as a cached Python int list (static column)."""
        if self._speed_list is None:
            self._speed_list = self.speed_w.tolist()
        return self._speed_list

    def gather_belief(self, name: str, indices, needs: str) -> np.ndarray:
        """Gather ``belief_column(name)[indices]`` with the missing-belief
        check vectorised: one ``isnan`` scan instead of a per-index Python
        loop (the batch scorers call this per score table build)."""
        values = self.belief_column(name)[indices]
        if np.isnan(values).any():
            self.require_beliefs(indices, needs)  # raises with the index
        return values

    # ------------------------------------------------------------------ #
    # Candidate selection.                                                 #
    # ------------------------------------------------------------------ #
    def up_candidates(self, allowed: Optional[Sequence[int]] = None) -> np.ndarray:
        """Indices of UP processors (ascending), optionally restricted.

        Mirrors the legacy ``Scheduler._candidates`` semantics:
        ``allowed=None`` means every UP processor; otherwise the UP set is
        filtered to the allowed indices, order preserved.
        """
        up = np.nonzero(self.state == int(ProcState.UP))[0]
        if allowed is None:
            return up
        if isinstance(allowed, np.ndarray) and allowed.dtype == np.bool_:
            # Boolean eligibility mask over all p processors (the
            # replication loop's native form at large p).
            return up[allowed[up]]
        allowed_set = {int(a) for a in allowed}
        return np.array(
            [q for q in up.tolist() if q in allowed_set], dtype=np.intp
        )

    # ------------------------------------------------------------------ #
    # Compatibility shim (lazy legacy views).                              #
    # ------------------------------------------------------------------ #
    def view(self, q: int):
        """Materialise the legacy :class:`ProcessorView` for processor ``q``.

        Cached until :meth:`invalidate`; field-for-field equal to the
        eager snapshot the legacy ``_build_context`` would have built.
        """
        cached = self._views.get(q)
        if cached is None:
            from .base import ProcessorView  # local import: base imports us

            if self.freshen is not None:
                self.freshen(q)
            cached = ProcessorView(
                index=q,
                speed_w=int(self.speed_w[q]),
                state=ProcState(int(self.state[q])),
                belief=self.beliefs[q],
                has_program=bool(self.has_program[q]),
                delay=int(self.delay[q]),
                pinned_count=int(self.pinned_count[q]),
                prog_remaining=int(self.prog_remaining[q]),
                pinned_pipeline=tuple(self._pipeline_provider(q)),
            )
            self._views[q] = cached
        return cached

    def as_context(self):
        """The lazy legacy :class:`SchedulingContext` over this state.

        Cached until :meth:`invalidate`; handed to schedulers that do not
        implement the batch contract (external heuristics, the exact-UD
        ablation) so they keep working unchanged.
        """
        if self._ctx is None:
            from .base import SchedulingContext  # local import: no cycle

            self._ctx = SchedulingContext(
                slot=self.slot,
                t_prog=self.t_prog,
                t_data=self.t_data,
                ncom=self.ncom,
                processors=LazyViewSequence(self),
                remaining_tasks=self.remaining_tasks,
                rng=self.rng,
            )
        return self._ctx

    def stamp_changed(self, qs: Sequence[int]) -> None:
        """Record that the worker-derived columns of ``qs`` were rewritten.

        One serial is drawn per batch, so a refresh touching k processors
        costs k list writes.  Only meaningful when the owner maintains
        the full contract and has set :attr:`stamped`.
        """
        serial = self._stamp_serial + 1
        self._stamp_serial = serial
        col_stamp = self.col_stamp
        for q in qs:
            col_stamp[q] = serial
        self._stamp_history.append((serial, tuple(qs)))

    def changed_since(self, serial: int) -> Optional[frozenset]:
        """Processors stamped since ``serial``, or ``None`` if unknowable.

        ``serial`` is a value of :attr:`RoundState._stamp_serial` the
        caller recorded earlier.  Returns the (possibly empty) set of
        processor indices whose columns were stamped after it, provided
        the bounded history still covers the gap — serials are issued
        one per :meth:`stamp_changed` batch, so the history is contiguous
        and coverage is simply "the oldest retained batch is not newer
        than ``serial + 1``".  ``None`` means the caller lagged too far
        (or the serial is foreign) and must fall back to a full rebuild.
        """
        current = self._stamp_serial
        if serial == current:
            return frozenset()
        if serial > current:
            return None
        history = self._stamp_history
        if not history or history[0][0] > serial + 1:
            return None
        changed: set = set()
        for batch_serial, qs in history:
            if batch_serial > serial:
                changed.update(qs)
        return frozenset(changed)

    def adopt_belief_cache(self, other: "RoundState") -> None:
        """Share belief-derived column caches with ``other`` (same beliefs).

        The batch engine's cohort belief fusion (DESIGN.md §11): all runs
        of one scenario carry identical (immutable) belief models, so the
        lazily computed ``p_uu``/``p_plus``/``pi_u``/``e_up``/``ud_*``
        columns are computed once on the first run that needs them and
        shared by reference with every other run's RoundState.  The cache
        dicts themselves are aliased, so a column materialised by *any*
        sharer becomes visible to all.
        """
        if len(other) != len(self):
            raise ValueError(
                f"cannot share belief cache across sizes {len(other)} != {len(self)}"
            )
        for mine, theirs in zip(self.beliefs, other.beliefs):
            if mine is not theirs:
                raise ValueError(
                    "cannot share belief cache: belief models differ"
                )
        self._belief_columns = other._belief_columns
        self._belief_column_lists = other._belief_column_lists

    def invalidate(self) -> None:
        """Drop the lazy view/context caches after columns changed.

        Owners call this once per refresh; belief columns are static and
        survive (they depend only on the immutable belief models).
        """
        self.version = next(_VERSION_COUNTER)
        if self._views:
            self._views = {}
        self._ctx = None

    # ------------------------------------------------------------------ #
    # Construction from legacy snapshots (tests, benchmarks).              #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_views(
        cls,
        views,
        *,
        slot: int = 0,
        t_prog: int,
        t_data: int,
        ncom: Optional[int],
        remaining_tasks: int = 0,
        rng: np.random.Generator,
    ) -> "RoundState":
        """Build a :class:`RoundState` from eager legacy ``ProcessorView``s.

        The views must be the complete, index-ordered processor list (the
        same invariant ``SchedulingContext.processors`` documents).
        """
        views = list(views)
        for position, view in enumerate(views):
            if view.index != position:
                raise ValueError(
                    f"views must be index-ordered and complete; position "
                    f"{position} holds index {view.index}"
                )
        pipelines = [tuple(view.pinned_pipeline) for view in views]
        rs = cls(
            speed_w=[view.speed_w for view in views],
            beliefs=[view.belief for view in views],
            t_prog=t_prog,
            t_data=t_data,
            ncom=ncom,
            rng=rng,
            pipeline_provider=lambda q: pipelines[q],
            slot=slot,
            remaining_tasks=remaining_tasks,
        )
        for q, view in enumerate(views):
            rs.state[q] = int(view.state)
            rs.delay[q] = view.delay
            rs.pinned_count[q] = view.pinned_count
            rs.has_program[q] = view.has_program
            rs.prog_remaining[q] = view.prog_remaining
        return rs


class StackedRoundState:
    """(R, p) column matrices over a cohort of :class:`RoundState`\\ s.

    The stacked-round engine (DESIGN.md §14) scores every cohort member's
    ``n_q = 0`` row in one vectorised pass, which wants the per-run
    worker columns contiguous as an (R, p) matrix.  Rather than gathering
    R small arrays per round, the cohort driver *attaches* each member's
    RoundState once: the member's dynamic columns are copied into a row
    of the shared matrices and the RoundState attributes are re-bound to
    zero-copy row views — the master's incremental refresh keeps writing
    ``rs.delay[index] = ...`` exactly as before, and every write lands in
    the matrix.  The per-run oracle path is untouched: a row view behaves
    like the private array it replaced (same dtype, shape and values),
    and :meth:`detach` restores private arrays bit-for-bit (demotion).

    ``state`` is deliberately **not** stacked: the master re-binds
    ``rs.state`` to the boundary state vector (the calendar's persistent
    buffer) every step, so a row view could never stay authoritative.
    ``col_stamp`` *is* stacked (as an int64 row, replacing the Python
    list — every consumer already accepts either), giving the stacked
    scorers one (R, p) stamp matrix for cohort-wide hit tests.

    Rows are free-listed like the batch runner's cohort table; matrices
    grow geometrically, re-binding every attached member's views after
    reallocation.  Per-``(kind, factor)`` persistent score stores —
    values + stamps, the cohort-wide twin of
    ``GreedyScheduler._row_store`` — live here too, so LW/UD rows
    survive across rounds with one vectorised miss test per round.
    """

    _COLUMNS = ("delay", "pinned_count", "has_program", "prog_remaining",
                "speed_w")

    def __init__(self, p: int, capacity: int = 4):
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        self.p = int(p)
        capacity = max(1, int(capacity))
        self._capacity = capacity
        self.delay = np.zeros((capacity, p), dtype=np.int64)
        self.pinned_count = np.zeros((capacity, p), dtype=np.int64)
        self.has_program = np.zeros((capacity, p), dtype=bool)
        self.prog_remaining = np.zeros((capacity, p), dtype=np.int64)
        self.speed_w = np.zeros((capacity, p), dtype=np.int64)
        self.col_stamp = np.zeros((capacity, p), dtype=np.int64)
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._attached: Dict[int, RoundState] = {}  # row -> member
        self._rows: Dict[int, int] = {}  # id(rs) -> row
        #: (kind, factor) -> (values (C, p) float64, stamps (C, p) int64)
        self._stores: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self._attached)

    def row_of(self, rs: RoundState) -> Optional[int]:
        """The attached row of ``rs``, or ``None``."""
        return self._rows.get(id(rs))

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name in self._COLUMNS + ("col_stamp",):
            old = getattr(self, name)
            grown = np.zeros((new_capacity, self.p), dtype=old.dtype)
            grown[: self._capacity] = old
            setattr(self, name, grown)
        for key, (values, stamps) in list(self._stores.items()):
            grown_values = np.zeros((new_capacity, self.p), dtype=np.float64)
            grown_values[: self._capacity] = values
            grown_stamps = np.full((new_capacity, self.p), -1, dtype=np.int64)
            grown_stamps[: self._capacity] = stamps
            self._stores[key] = (grown_values, grown_stamps)
        self._free.extend(range(new_capacity - 1, self._capacity - 1, -1))
        self._capacity = new_capacity
        # Re-bind every attached member's views into the new buffers.
        for row, rs in self._attached.items():
            self._bind(rs, row)

    def _bind(self, rs: RoundState, row: int) -> None:
        rs.delay = self.delay[row]
        rs.pinned_count = self.pinned_count[row]
        rs.has_program = self.has_program[row]
        rs.prog_remaining = self.prog_remaining[row]
        rs.speed_w = self.speed_w[row]
        rs.col_stamp = self.col_stamp[row]

    def attach(self, rs: RoundState) -> int:
        """Adopt ``rs``'s dynamic columns into a matrix row (idempotent).

        Current values are copied in, then the attributes become row
        views — zero-copy from here on.  Any store row is stamp-reset so
        a recycled row can never serve a previous occupant's scores.
        """
        if len(rs) != self.p:
            raise ValueError(
                f"cannot attach a {len(rs)}-processor state to a "
                f"p={self.p} stack"
            )
        row = self._rows.get(id(rs))
        if row is not None:
            return row
        if not self._free:
            self._grow()
        row = self._free.pop()
        self.delay[row] = rs.delay
        self.pinned_count[row] = rs.pinned_count
        self.has_program[row] = rs.has_program
        self.prog_remaining[row] = rs.prog_remaining
        self.speed_w[row] = rs.speed_w
        self.col_stamp[row] = rs.col_stamp
        for _values, stamps in self._stores.values():
            stamps[row] = -1
        self._bind(rs, row)
        self._attached[row] = rs
        self._rows[id(rs)] = row
        return row

    def detach(self, rs: RoundState) -> None:
        """Restore ``rs`` to private arrays and free its row.

        The demotion contract (DESIGN.md §14): a member leaving the
        cohort must not keep views into a row the free list will hand to
        the next admit.  Values are copied back bit-for-bit, including
        ``col_stamp`` as a Python list again (its pre-attach form).
        """
        row = self._rows.pop(id(rs), None)
        if row is None:
            return
        del self._attached[row]
        rs.delay = self.delay[row].copy()
        rs.pinned_count = self.pinned_count[row].copy()
        rs.has_program = self.has_program[row].copy()
        rs.prog_remaining = self.prog_remaining[row].copy()
        rs.speed_w = self.speed_w[row].copy()
        rs.col_stamp = self.col_stamp[row].tolist()
        self._free.append(row)

    def store(self, kind, factor: int) -> Tuple[np.ndarray, np.ndarray]:
        """The persistent (values, stamps) matrices for ``(kind, factor)``.

        ``kind`` keys the score family (scheduler class); ``factor`` the
        contention factor the row was scored at.  Stamps start at -1
        (never equal to a live stamp), so fresh rows always miss.
        """
        key = (kind, factor)
        pair = self._stores.get(key)
        if pair is None:
            values = np.zeros((self._capacity, self.p), dtype=np.float64)
            stamps = np.full((self._capacity, self.p), -1, dtype=np.int64)
            pair = self._stores[key] = (values, stamps)
        return pair
