"""Name → factory registry for all scheduling heuristics.

The experiment harness refers to heuristics by the names used in the
paper's tables (lower-cased): ``random``, ``random1`` … ``random4w``,
``mct``, ``mct*``, ``emct``, ``emct*``, ``lw``, ``lw*``, ``ud``, ``ud*`` —
seventeen in total — plus this package's extensions (``passive``,
``ud-exact``, ``ud*-exact``).

Factories return a *fresh* scheduler instance per call: several heuristics
cache per-processor quantities keyed by processor index (and, on the array
path, per-round score rows keyed by the round state's refresh token), so
instances must not be shared between platforms.

Every registry heuristic runs on both scheduler APIs (DESIGN.md §8): the
batch :meth:`~repro.core.heuristics.base.Scheduler.place_array` path over
an array-backed ``RoundState`` — natively for the greedy/random/passive
families and the clairvoyant baseline, via the lazy compatibility shim for
the exact-UD ablations — and the legacy scalar ``place`` path, with
bit-identical placements (``tests/test_scheduler_api_equivalence.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Scheduler
from .lw import LwScheduler
from .mct import EmctScheduler, MctScheduler
from .passive import PassiveScheduler
from .random_based import RandomScheduler, make_random_variant
from .ud import UdScheduler

__all__ = [
    "HEURISTIC_FACTORIES",
    "PAPER_HEURISTICS",
    "TABLE2_ORDER",
    "GREEDY_HEURISTICS",
    "make_scheduler",
    "available_heuristics",
]

HEURISTIC_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "random": RandomScheduler,
    "random1": lambda: make_random_variant(1, weighted_by_speed=False),
    "random2": lambda: make_random_variant(2, weighted_by_speed=False),
    "random3": lambda: make_random_variant(3, weighted_by_speed=False),
    "random4": lambda: make_random_variant(4, weighted_by_speed=False),
    "random1w": lambda: make_random_variant(1, weighted_by_speed=True),
    "random2w": lambda: make_random_variant(2, weighted_by_speed=True),
    "random3w": lambda: make_random_variant(3, weighted_by_speed=True),
    "random4w": lambda: make_random_variant(4, weighted_by_speed=True),
    "mct": lambda: MctScheduler(contention=False),
    "mct*": lambda: MctScheduler(contention=True),
    "emct": lambda: EmctScheduler(contention=False),
    "emct*": lambda: EmctScheduler(contention=True),
    "lw": lambda: LwScheduler(contention=False),
    "lw*": lambda: LwScheduler(contention=True),
    "ud": lambda: UdScheduler(contention=False),
    "ud*": lambda: UdScheduler(contention=True),
    # Extensions beyond the paper:
    "ud-exact": lambda: UdScheduler(contention=False, exact=True),
    "ud*-exact": lambda: UdScheduler(contention=True, exact=True),
    "passive": PassiveScheduler,
}

#: The seventeen heuristics evaluated in the paper (Table 2 population).
PAPER_HEURISTICS: List[str] = [
    "random",
    "random1",
    "random2",
    "random3",
    "random4",
    "random1w",
    "random2w",
    "random3w",
    "random4w",
    "mct",
    "mct*",
    "emct",
    "emct*",
    "lw",
    "lw*",
    "ud",
    "ud*",
]

#: Row order of the paper's Table 2 (best to worst, as published).
TABLE2_ORDER: List[str] = [
    "emct",
    "emct*",
    "mct",
    "mct*",
    "ud*",
    "ud",
    "lw*",
    "lw",
    "random1w",
    "random2w",
    "random4w",
    "random3w",
    "random3",
    "random4",
    "random1",
    "random2",
    "random",
]

#: The eight greedy heuristics of Table 3 / Figure 2.
GREEDY_HEURISTICS: List[str] = [
    "mct",
    "mct*",
    "emct",
    "emct*",
    "lw",
    "lw*",
    "ud",
    "ud*",
]


def make_scheduler(name: str, *, platform=None) -> Scheduler:
    """Instantiate a heuristic by its registry name.

    Args:
        name: registry name (case-insensitive).
        platform: required only by platform-aware extensions (currently
            ``"clairvoyant"``, which peeks at the ground-truth availability
            sources); ignored by every paper heuristic.

    Raises:
        KeyError: with the list of known names, for unknown ``name``.
        ValueError: if a platform-aware heuristic is requested without a
            platform.
    """
    key = name.lower()
    if key == "clairvoyant":
        if platform is None:
            raise ValueError(
                "the clairvoyant baseline needs the simulation platform: "
                "make_scheduler('clairvoyant', platform=...)"
            )
        from .oracle import ClairvoyantScheduler

        return ClairvoyantScheduler(platform)
    try:
        factory = HEURISTIC_FACTORIES[key]
    except KeyError:
        known = ", ".join(sorted(HEURISTIC_FACTORIES) + ["clairvoyant"])
        raise KeyError(f"unknown heuristic {name!r}; known heuristics: {known}") from None
    return factory()


def available_heuristics() -> List[str]:
    """All registered heuristic names, sorted."""
    return sorted(HEURISTIC_FACTORIES)
