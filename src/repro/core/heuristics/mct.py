"""MCT-family heuristics (paper Section 6.3.1).

* **MCT** — assign each task to the processor minimising the estimated
  completion time ``CT(P_q, n_q + 1)`` of Equation 1.  MCT is the optimal
  policy for the contention-free offline problem (Proposition 2), applied
  online with the stay-UP/no-contention simplifications.
* **MCT\\*** — same, with Equation 2's contention correction: ``T_data`` is
  inflated by ``ceil(n_active / n_com)``, a coarse model of the master's
  channel budget being shared among active workers.
* **EMCT / EMCT\\*** — replace the raw ``CT`` by Theorem 2's conditional
  expectation :math:`E^{(q)}(CT)`, accounting for the slots the processor
  will likely spend RECLAIMED while executing the workload.  This is the
  paper's headline heuristic: ~10% better makespans than MCT overall.
"""

from __future__ import annotations

import numpy as np

from ..expectation import expected_next_up
from .base import (
    GreedyScheduler,
    ProcessorView,
    RoundState,
    SchedulingContext,
    completion_time_batch,
    completion_time_estimate,
)

__all__ = ["MctScheduler", "EmctScheduler"]


class MctScheduler(GreedyScheduler):
    """``MCT`` / ``MCT*``: minimum estimated completion time.

    Args:
        contention: enables Equation 2's correcting factor (the ``*``).
    """

    maximize = False
    batch_scoring = True

    def __init__(self, *, contention: bool = False):
        self.use_contention_factor = contention
        self.name = "mct*" if contention else "mct"

    def score(
        self,
        ctx: SchedulingContext,
        view: ProcessorView,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        return completion_time_estimate(
            view, nq_plus_one, ctx.t_data, contention_factor=contention_factor
        )

    def score_batch(
        self,
        rs: RoundState,
        indices: np.ndarray,
        nq_plus_one: np.ndarray,
        contention_factor,
    ) -> np.ndarray:
        ct = completion_time_batch(rs, indices, nq_plus_one, contention_factor)
        return ct.astype(np.float64)

    def score_one(
        self, rs: RoundState, q: int, nq_plus_one: int, contention_factor: int
    ) -> float:
        eff = contention_factor * rs.t_data
        speed = int(rs.speed_w[q])
        return float(
            int(rs.delay[q]) + eff + max(nq_plus_one - 1, 0) * max(eff, speed) + speed
        )

    def _score_ct_row(self, rs: RoundState, cache: dict, ct_row: list) -> list:
        return [float(ct) for ct in ct_row]

    def _score_ct_one(self, rs: RoundState, cache: dict, ct: int, i: int) -> float:
        return float(ct)

    def _stacked_scorer(self, rs: RoundState, cache: dict, factor):
        return lambda ct, i: float(ct)

    def score_batch_stacked(self, stacked, rows, factors, ct0, members):
        # The MCT score *is* the CT: one exact int64 → float64 cast of the
        # whole (K, p) matrix (lossless below 2**53, the simulator's slot
        # bound) equals the scalar ``float(ct)`` per element.
        return self._extract_stacked_rows(ct0.astype(np.float64), members)


class EmctScheduler(GreedyScheduler):
    """``EMCT`` / ``EMCT*``: expected completion time under Theorem 2.

    The workload fed to Theorem 2 is the (possibly contention-corrected)
    ``CT`` estimate, rounded up to a whole number of UP slots.  The
    expectation inflates the estimate by the RECLAIMED excursions the
    processor's chain predicts: for chains that rarely leave UP the two
    heuristics coincide; for flaky chains EMCT systematically deprioritises
    processors whose nominal speed hides poor availability.

    Implementation note: :math:`E(W) = 1 + (W-1) E(up)` is linear in ``W``,
    so we cache :math:`E(up)` per processor rather than recomputing the
    closed form for every candidate workload (the array path reads the same
    quantity from the round state's cached ``e_up`` belief column).
    """

    maximize = False
    batch_scoring = True
    _belief_needs = "EMCT needs one"

    def __init__(self, *, contention: bool = False):
        self.use_contention_factor = contention
        self.name = "emct*" if contention else "emct"
        self._e_up_cache: dict[int, float] = {}

    def _expected_slots(self, view: ProcessorView, workload: float) -> float:
        if view.belief is None:
            raise ValueError(
                f"processor {view.index} has no Markov belief; EMCT needs one"
            )
        e_up = self._e_up_cache.get(view.index)
        if e_up is None:
            e_up = expected_next_up(view.belief)
            self._e_up_cache[view.index] = e_up
        # Theorem 2 with a (real-valued) workload estimate: E = 1 + (W-1)·E(up).
        return 1.0 + max(workload - 1.0, 0.0) * e_up

    def score(
        self,
        ctx: SchedulingContext,
        view: ProcessorView,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        ct = completion_time_estimate(
            view, nq_plus_one, ctx.t_data, contention_factor=contention_factor
        )
        return self._expected_slots(view, ct)

    def score_batch(
        self,
        rs: RoundState,
        indices: np.ndarray,
        nq_plus_one: np.ndarray,
        contention_factor,
    ) -> np.ndarray:
        ct = completion_time_batch(rs, indices, nq_plus_one, contention_factor)
        e_up = rs.gather_belief("e_up", indices, "EMCT needs one")
        # Theorem 2: E = 1 + (W-1)·E(up), the scalar expression elementwise.
        return 1.0 + np.maximum(ct - 1.0, 0.0) * e_up

    def score_one(
        self, rs: RoundState, q: int, nq_plus_one: int, contention_factor: int
    ) -> float:
        if rs.beliefs[q] is None:
            raise ValueError(f"processor {q} has no Markov belief; EMCT needs one")
        eff = contention_factor * rs.t_data
        speed = int(rs.speed_w[q])
        ct = int(rs.delay[q]) + eff + max(nq_plus_one - 1, 0) * max(eff, speed) + speed
        return 1.0 + max(ct - 1.0, 0.0) * float(rs.belief_column("e_up")[q])

    def _score_ct_row(self, rs: RoundState, cache: dict, ct_row: list) -> list:
        e_up = self._gather_belief(rs, cache, "e_up", "EMCT needs one")
        return [
            1.0 + max(ct - 1.0, 0.0) * e for ct, e in zip(ct_row, e_up)
        ]

    def _score_ct_one(self, rs: RoundState, cache: dict, ct: int, i: int) -> float:
        e_up = self._gather_belief(rs, cache, "e_up", "EMCT needs one")
        return 1.0 + max(ct - 1.0, 0.0) * e_up[i]

    def _stacked_scorer(self, rs: RoundState, cache: dict, factor):
        e_up = self._gather_belief(rs, cache, "e_up", "EMCT needs one")
        return lambda ct, i: 1.0 + max(ct - 1.0, 0.0) * e_up[i]

    def score_batch_stacked(self, stacked, rows, factors, ct0, members):
        # Theorem 2's E = 1 + (W-1)·E(up) is sub/max/mul/add only — every
        # op vectorises to the identical IEEE-754 result elementwise (the
        # 1-ulp caveat is specific to ``pow``), so the whole cohort scores
        # in one (K, p) expression.  NaN e_up entries (missing beliefs)
        # propagate exactly as the scalar row does; the NaN routing in
        # ``place_array`` owns the error semantics either way.
        e_up = np.stack([rs.belief_column("e_up") for rs, _cache in members])
        return self._extract_stacked_rows(
            1.0 + np.maximum(ct0 - 1.0, 0.0) * e_up, members
        )
