"""Scheduler interface: the contract between the simulator and heuristics.

At each scheduling round the master builds a :class:`SchedulingContext`
containing, for every processor, a :class:`ProcessorView` snapshot: its
current state, its believed Markov chain, its speed, whether it holds the
program, and the paper's ``Delay(q)`` estimate.  The scheduler then *places*
a batch of task instances — the ``m - m'`` remaining (unpinned) tasks of the
current iteration, or a batch of replicas — onto UP processors.

All of the paper's heuristics share the same outer structure (Section 6.1:
"All heuristics assign tasks to processors one-by-one, until m tasks are
assigned"), so :class:`GreedyScheduler` and the random schedulers only
implement a per-task *selection rule*; the one-by-one loop, the per-round
``n_q`` bookkeeping and the ``n_active`` counter used by the
contention-corrected variants live here.

Two entry points realise that protocol:

* :meth:`Scheduler.place` — the legacy scalar path over an eagerly built
  :class:`SchedulingContext` of :class:`ProcessorView` snapshots;
* :meth:`Scheduler.place_array` — the array-backed path over a
  :class:`~repro.core.heuristics.round_state.RoundState`, scored in batch
  via :meth:`GreedyScheduler.score_batch`.  The two paths are **bit
  identical** — same scores (the batch implementations use the exact same
  IEEE-754 operations, falling back to scalar ``math.pow`` where numpy's
  SIMD ``np.power`` differs from libm by an ulp), same one-by-one greedy
  order, same lowest-index tie-break, same RNG draw sequence — which the
  equivalence suite asserts per registry heuristic.  Schedulers that do
  not opt into batch scoring transparently run the legacy path over the
  lazy compatibility shim (:meth:`RoundState.as_context`).
"""

from __future__ import annotations

import abc
import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...rng import default_scheduler_rng
from ...types import ProcState
from ..markov import MarkovAvailabilityModel
from .round_state import RoundState

#: Processor count from which the array-path round caches are assembled
#: with numpy gathers instead of Python list comprehensions.  Both
#: assemblies produce element-for-element identical values (exact int64
#: arithmetic / pure copies), so the threshold is a pure speed knob: below
#: it the fixed per-ufunc overhead loses to list ops, above it the numpy
#: path is the difference between O(p) Python and O(p) C per round.
_VECTOR_MIN_P = 128


def _is_bool_mask(allowed) -> bool:
    """True when ``allowed`` is a boolean eligibility mask over all p
    processors (the replication loop's native form at large p) rather
    than a sequence of processor indices."""
    return isinstance(allowed, np.ndarray) and allowed.dtype == np.bool_


def _allowed_as_mask(allowed, p: int) -> np.ndarray:
    """``allowed`` as a length-``p`` boolean mask (no copy if it is one)."""
    if _is_bool_mask(allowed):
        return allowed
    mask = np.zeros(p, dtype=bool)
    idx = np.asarray(allowed, dtype=np.intp)
    if idx.size:
        mask[idx] = True
    return mask


def _allowed_as_set(allowed) -> set:
    """``allowed`` as a set of processor indices (scalar-path form)."""
    if _is_bool_mask(allowed):
        return set(np.nonzero(allowed)[0].tolist())
    return {int(q) for q in allowed}

__all__ = [
    "ProcessorView",
    "SchedulingContext",
    "RoundState",
    "ReplanProbe",
    "Scheduler",
    "GreedyScheduler",
    "completion_time_estimate",
    "completion_time_batch",
    "pow_batch",
]


@dataclass
class ReplanProbe:
    """Inputs and outputs of the round-relevance hook (DESIGN.md §10).

    The master builds one probe per scheduling round it considers eliding
    and passes it to :meth:`Scheduler.would_replan`.  The probe describes
    the current *plan* — where every unpinned original currently sits —
    and what changed since the last executed round; the scheduler answers
    whether a re-plan could produce anything different.

    Attributes:
        n_tasks: number of unpinned originals the round would re-place
            (the context's ``m - m'``).
        hosts: current host per unpinned original, in ascending task
            order (``None`` for originals that are currently unplaced).
            A re-plan reproduces the plan exactly when its placement list
            equals this list.
        dirty_mask: snapshot of the :class:`RoundState` per-processor
            dirty flags *before* this round's refresh — the processors
            whose scheduler-visible columns moved since the last round.
            Purely informational for the built-in proof (which re-scores
            and compares), but lets cheaper heuristic-specific proofs
            skip untouched processors.
        placements: set by schedulers that compute the would-be placement
            while answering (the built-in greedy proof does): the master
            reuses it when the round must run after all, so a failed
            proof never costs a second scoring pass.
    """

    n_tasks: int
    hosts: List[Optional[int]]
    dirty_mask: bytes
    placements: Optional[List[Optional[int]]] = None


@dataclass
class ProcessorView:
    """Immutable-by-convention snapshot of one processor for one round.

    Attributes:
        index: processor index.
        speed_w: :math:`w_q`, UP slots per task.
        state: current ground-truth state (the master knows states via the
            heartbeat assumption, Section 3.2).
        belief: the Markov chain the scheduler believes governs this
            processor (``None`` only in contexts where no Markov-informed
            heuristic is in use).
        has_program: True when the worker currently holds the full program.
        delay: the paper's ``Delay(q)`` — slots before the worker finishes
            its already-pinned activities, under the stay-UP/no-contention
            simplification (Section 6.3.1).  Includes remaining program
            transfer time for workers that still need (part of) the program.
        pinned_count: number of task instances already pinned to the worker
            (used to seed the ``n_active`` counter).
        prog_remaining: program transfer slots still needed (0 when the
            worker holds the program).
        pinned_pipeline: per pinned instance, in service order, a tuple
            ``(data_remaining, compute_remaining, computing)``.  The paper's
            heuristics only consume the aggregate ``delay``; the detailed
            pipeline feeds extensions such as the clairvoyant baseline.
    """

    index: int
    speed_w: int
    state: ProcState
    belief: Optional[MarkovAvailabilityModel]
    has_program: bool
    delay: int
    pinned_count: int
    prog_remaining: int = 0
    pinned_pipeline: tuple = ()

    @property
    def is_up(self) -> bool:
        """True when the processor can currently be assigned work."""
        return self.state == ProcState.UP


@dataclass
class SchedulingContext:
    """Everything a heuristic may look at during one scheduling round.

    Attributes:
        slot: current time slot.
        t_prog: program transfer length (slots).
        t_data: task input transfer length (slots).
        ncom: master channel budget (``None`` = unbounded).
        processors: snapshot of all processors (indexable by processor
            index — the list is ordered).
        remaining_tasks: ``m - m'`` — tasks of the current iteration whose
            work has not begun anywhere.
        rng: RNG stream reserved for scheduler randomness (the random
            heuristic family), distinct from availability sampling streams.
            Pass an explicit stream whenever two contexts must not share
            randomness; when omitted, the default is the *seeded*
            :func:`~repro.rng.default_scheduler_rng` stream — an unseeded
            ``default_rng()`` here would silently fall back to OS entropy
            and make randomised heuristics unreproducible run-to-run.
    """

    slot: int
    t_prog: int
    t_data: int
    ncom: Optional[int]
    processors: List[ProcessorView]
    remaining_tasks: int
    rng: np.random.Generator = field(default_factory=default_scheduler_rng)

    def up_processors(self) -> List[ProcessorView]:
        """Views of the processors currently UP, ascending index."""
        return [view for view in self.processors if view.is_up]


def completion_time_estimate(
    view: ProcessorView,
    nq: int,
    t_data: int,
    *,
    contention_factor: int = 1,
) -> float:
    """The paper's ``CT(P_q, n_q)`` estimate (Equations 1 and 2).

    Equation 1 (``contention_factor == 1``):

    .. math::
       CT(P_q, n_q) = Delay(q) + T_{data}
                      + \\max(n_q - 1, 0)\\,\\max(T_{data}, w_q) + w_q

    Equation 2 replaces :math:`T_{data}` by
    :math:`\\lceil n_{active} / n_{com} \\rceil T_{data}` — the caller passes
    that ceiling as ``contention_factor``.

    Args:
        view: the processor snapshot (provides ``Delay(q)`` and ``w_q``).
        nq: number of tasks assigned to this processor *in this round*,
            including the candidate one (the paper evaluates
            ``CT(P_q, n_q + 1)``; callers pass the incremented value).
        t_data: the uncorrected data transfer time.
        contention_factor: ``ceil(n_active / n_com)`` for Equation 2.

    Returns:
        The estimated completion-time in slots (float to allow its use as
        the workload of Theorem 2's expectation).
    """
    if nq < 1:
        raise ValueError(f"nq must be >= 1 when estimating a placement, got {nq}")
    eff_t_data = contention_factor * t_data
    return (
        view.delay
        + eff_t_data
        + max(nq - 1, 0) * max(eff_t_data, view.speed_w)
        + view.speed_w
    )


def completion_time_batch(
    rs: RoundState,
    indices: np.ndarray,
    nq_plus_one,
    contention_factor,
) -> np.ndarray:
    """Vectorised ``CT(P_q, n_q)`` over a candidate set (Equations 1 / 2).

    The batch companion of :func:`completion_time_estimate`: pure int64
    arithmetic on the :class:`RoundState` columns, so every element is
    *exactly* the integer the scalar estimate computes (the later cast to
    float64 is lossless for any delay within the simulator's slot bound).

    Args:
        rs: the array-backed round state.
        indices: candidate processor indices (int array).
        nq_plus_one: per-candidate ``n_q + 1`` (int array or scalar).
        contention_factor: per-candidate ``ceil(n_active / n_com)`` (int
            array or scalar; 1 for Equation 1).
    """
    eff_t_data = contention_factor * rs.t_data
    speed = rs.speed_w[indices]
    return (
        rs.delay[indices]
        + eff_t_data
        + np.maximum(nq_plus_one - 1, 0) * np.maximum(eff_t_data, speed)
        + speed
    )


def pow_batch(base, exponent) -> np.ndarray:
    """Elementwise ``base ** exponent`` via scalar libm ``pow``.

    numpy's vectorised ``np.power`` dispatches to a SIMD implementation
    that differs from the C library ``pow`` by an ulp on a few percent of
    inputs, which would break bit-identity between the batch path and the
    legacy scalar path (Python's ``**`` *is* libm ``pow``).  The LW/UD
    probability scores therefore apply the exponentiation through
    ``math.pow`` per element — the candidate arrays are tiny (≤ p), so
    this costs nothing next to the vectorised CT arithmetic.
    """
    return np.array(
        [
            math.pow(b, e)
            for b, e in zip(np.asarray(base).tolist(), np.asarray(exponent).tolist())
        ],
        dtype=np.float64,
    )


class Scheduler(abc.ABC):
    """Base class for all scheduling heuristics.

    Subclasses implement :meth:`select`, choosing one processor for one
    task given the per-round load picture.  The shared :meth:`place` loop
    then realises the paper's one-by-one assignment protocol.

    Schedulers may be stateful across rounds (the passive baseline is), but
    all paper heuristics are round-stateless.
    """

    #: Registry name; subclasses set this (e.g. ``"emct*"``).
    name: str = "scheduler"

    def place(
        self,
        ctx: SchedulingContext,
        n_tasks: int,
        allowed: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Assign ``n_tasks`` task instances to processors, one by one.

        Args:
            ctx: the scheduling context.
            n_tasks: how many instances to place.
            allowed: optional subset of processor indices that may be used
                (the master restricts replica placement to idle workers).
                Defaults to all UP processors.

        Returns:
            A list of length ``n_tasks`` with the chosen processor index
            per instance, or ``None`` for instances that could not be
            placed (no eligible processor).
        """
        candidates = self._candidates(ctx, allowed)
        placements: List[Optional[int]] = []
        nq: Dict[int, int] = {view.index: 0 for view in candidates}
        n_active = sum(1 for view in candidates if view.pinned_count > 0)
        for _ in range(n_tasks):
            if not candidates:
                placements.append(None)
                continue
            choice = self.select(ctx, candidates, nq, n_active)
            if choice is None:
                placements.append(None)
                continue
            if nq[choice] == 0:
                view = next(v for v in candidates if v.index == choice)
                if view.pinned_count == 0:
                    n_active += 1
            nq[choice] += 1
            placements.append(choice)
        return placements

    def place_array(
        self,
        rs: RoundState,
        n_tasks: int,
        allowed: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Assign ``n_tasks`` instances from an array-backed round state.

        The array-path twin of :meth:`place`; the master calls this with
        its incrementally maintained :class:`RoundState`.  The base
        implementation is the compatibility shim: it materialises the lazy
        legacy context (:meth:`RoundState.as_context`) and runs the scalar
        path, so any external :class:`Scheduler` subclass keeps working —
        and keeps producing bit-identical placements — without changes.
        Batch-capable subclasses override this.
        """
        return self.place(rs.as_context(), n_tasks, allowed)

    def would_replan(self, rs: RoundState, probe: "ReplanProbe") -> bool:
        """Whether a scheduling round now could change the current plan.

        Part of the round-relevance contract (DESIGN.md §10): the master
        asks this before mutating any queue, and *elides* the round —
        skipping the drop/re-place churn entirely, bit-identically — when
        the answer is ``False``.  ``False`` is a **proof obligation**: it
        asserts that re-placing ``probe.n_tasks`` unpinned originals
        against ``rs`` right now would reproduce ``probe.hosts`` exactly
        (same hosts, same one-by-one order) while consuming no scheduler
        randomness.  The conservative default is ``True`` — always replan
        — which is correct for every scheduler: stateful schedulers (the
        passive baseline mutates its memory per round), randomized ones
        (a skipped round would skip RNG draws and desynchronise the
        stream), and any external subclass this package knows nothing
        about.
        """
        return True

    def _candidates(
        self, ctx: SchedulingContext, allowed: Optional[Sequence[int]]
    ) -> List[ProcessorView]:
        ups = ctx.up_processors()
        if allowed is None:
            return ups
        allowed_set = _allowed_as_set(allowed)
        return [view for view in ups if view.index in allowed_set]

    @abc.abstractmethod
    def select(
        self,
        ctx: SchedulingContext,
        candidates: List[ProcessorView],
        nq: Dict[int, int],
        n_active: int,
    ) -> Optional[int]:
        """Choose the processor for the next task.

        Args:
            ctx: the scheduling context.
            candidates: UP processors eligible for this placement batch.
            nq: tasks assigned per processor so far *in this round* (keyed
                by processor index; counts exclude pinned work, which is
                captured by ``Delay``).
            n_active: the paper's ``n_active`` counter — processors that
                have (or just received) work, used by the Equation 2
                contention correction.

        Returns:
            The chosen processor index, or ``None`` to leave the task
            unassigned this round.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class GreedyScheduler(Scheduler):
    """Shared skeleton for score-based greedy heuristics (MCT/LW/UD family).

    Subclasses implement :meth:`score`; the candidate minimising (or
    maximising, per :attr:`maximize`) the score wins.  Ties break toward
    the lower processor index, matching the deterministic tie-break used
    throughout the package.

    **Batch contract.**  Subclasses that additionally implement
    :meth:`score_batch` (and set :attr:`batch_scoring`) get the array-path
    :meth:`place_array`: one vectorised scoring pass seeds the lazy heap,
    and the per-placement re-scores go through the scalar :meth:`score_one`
    twin.  Both must satisfy the same monotonicity requirement the lazy
    heap already relies on — scores monotone (non-decreasing for minimised
    scores, non-increasing for maximised ones) in both ``n_q`` and
    ``n_active`` — and must be bit-identical to each other and to
    :meth:`score` for every ``(q, n_q, factor)``: use exactly the same
    IEEE-754 operation sequence, and route exponentiation through
    :func:`pow_batch` / ``math.pow`` rather than ``np.power``.
    """

    #: Whether higher scores are better (LW/UD maximise probabilities).
    maximize: bool = False

    #: Whether Equation 2's contention factor replaces ``t_data``.
    use_contention_factor: bool = False

    #: True when the instance implements :meth:`score_batch` /
    #: :meth:`score_one`; False routes :meth:`place_array` through the
    #: legacy-path compatibility shim (external heuristics, trace walkers).
    batch_scoring: bool = False

    #: The missing-belief error suffix for heuristics whose score needs a
    #: Markov belief (``None`` for belief-free scores).  The array path's
    #: score rows span the whole UP set, so belief checks happen against
    #: the *candidates* of each placement call — matching the legacy
    #: scalar loop, which only ever scores candidates.
    _belief_needs: Optional[str] = None

    def contention_factor(self, ctx: SchedulingContext, n_active: int) -> int:
        """``ceil(n_active / ncom)`` when enabled and bounded, else 1."""
        if not self.use_contention_factor or ctx.ncom is None:
            return 1
        return max(1, -(-n_active // ctx.ncom))

    @abc.abstractmethod
    def score(
        self,
        ctx: SchedulingContext,
        view: ProcessorView,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        """Score of placing the next task on ``view``."""

    def score_batch(
        self,
        rs: RoundState,
        indices: np.ndarray,
        nq_plus_one: np.ndarray,
        contention_factor,
    ) -> np.ndarray:
        """Scores for all candidates at once (float64, aligned with
        ``indices``).  Subclasses setting :attr:`batch_scoring` implement
        this against the :class:`RoundState` columns."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batch scoring"
        )

    def score_one(
        self,
        rs: RoundState,
        q: int,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        """Scalar twin of :meth:`score_batch` for heap re-validation.

        The default funnels through :meth:`score_batch` with length-1
        arrays, which is always bit-consistent; the built-in heuristics
        override it with plain-scalar arithmetic for speed.
        """
        return float(
            self.score_batch(
                rs,
                np.array([q], dtype=np.intp),
                np.array([nq_plus_one], dtype=np.int64),
                np.array([contention_factor], dtype=np.int64),
            )[0]
        )

    def _factor_for(self, rs: RoundState, n_active: int) -> int:
        """Scalar ``ceil(n_active / ncom)`` against a round state."""
        if not self.use_contention_factor or rs.ncom is None:
            return 1
        return max(1, -(-n_active // rs.ncom))

    def select(
        self,
        ctx: SchedulingContext,
        candidates: List[ProcessorView],
        nq: Dict[int, int],
        n_active: int,
    ) -> Optional[int]:
        # n_active counts this candidate placement as active, matching the
        # paper's "incremented when a task is assigned to a newly enrolled
        # processor": the transfer we are costing will itself be active.
        best_index: Optional[int] = None
        best_score = 0.0
        for view in candidates:
            value = self._speculative_score(ctx, view, nq[view.index], n_active)
            if best_index is None:
                best_index, best_score = view.index, value
            elif self.maximize and value > best_score:
                best_index, best_score = view.index, value
            elif not self.maximize and value < best_score:
                best_index, best_score = view.index, value
        return best_index

    def _speculative_score(
        self, ctx: SchedulingContext, view: ProcessorView, nq_view: int, n_active: int
    ) -> float:
        speculative_active = n_active
        if nq_view == 0 and view.pinned_count == 0:
            speculative_active += 1
        factor = self.contention_factor(ctx, speculative_active)
        return self.score(ctx, view, nq_view + 1, factor)

    def place(
        self,
        ctx: SchedulingContext,
        n_tasks: int,
        allowed: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Greedy placement via a lazy-revalidation heap.

        Produces exactly the same assignments as the generic one-by-one
        loop (same scores, same lowest-index tie-break) but evaluates the
        score function ~``p + n_tasks`` times per round instead of
        ``p × n_tasks``.  Correctness of the lazy heap relies on scores
        being monotone in both ``n_q`` and ``n_active`` (``CT`` grows with
        both, so minimised scores only grow stale-upward and maximised
        probabilities only grow stale-downward); a popped entry is
        re-scored and re-pushed if it no longer matches.
        """
        candidates = self._candidates(ctx, allowed)
        placements: List[Optional[int]] = []
        if not candidates:
            return [None] * n_tasks
        nq: Dict[int, int] = {view.index: 0 for view in candidates}
        n_active = sum(1 for view in candidates if view.pinned_count > 0)
        sign = -1.0 if self.maximize else 1.0
        heap = [
            (
                sign * self._speculative_score(ctx, view, 0, n_active),
                view.index,
                view,
            )
            for view in candidates
        ]
        heapq.heapify(heap)
        for _ in range(n_tasks):
            while True:
                key, index, view = heap[0]
                current = sign * self._speculative_score(
                    ctx, view, nq[index], n_active
                )
                if current == key:
                    break
                heapq.heapreplace(heap, (current, index, view))
            placements.append(index)
            if nq[index] == 0 and view.pinned_count == 0:
                n_active += 1
            nq[index] += 1
            heapq.heapreplace(
                heap,
                (
                    sign * self._speculative_score(ctx, view, nq[index], n_active),
                    index,
                    view,
                ),
            )
        return placements

    def would_replan(self, rs: RoundState, probe: "ReplanProbe") -> bool:
        """Greedy proof: re-place and compare (DESIGN.md §10).

        The greedy families are deterministic and round-stateless, so the
        strongest valid proof is also the cheapest sound one: run the
        batch placement (one :meth:`place_array` call — exactly the call
        the round itself would make, sharing the per-round score cache)
        and compare against the current plan.  The computed placements
        are stashed on the probe, so when the answer is "must replan" the
        round reuses them instead of scoring twice.  Heuristics that do
        not implement batch scoring (the exact-UD ablation runs through
        the legacy shim) keep the conservative default.
        """
        if not self.batch_scoring:
            return True
        placements = self.place_array(rs, probe.n_tasks)
        probe.placements = placements
        return placements != probe.hosts

    # -- per-round cache for the array path -------------------------------
    _round_version = None
    _round_cache: Optional[dict] = None
    # -- cross-round persistent cache (delta-patched, DESIGN.md §8/§14) ---
    _persist: Optional[dict] = None
    # -- cross-round persistent score rows (DESIGN.md §11/§12) ------------
    _row_store: Optional[dict] = None
    _row_store_rs = None
    # -- stacked-round precomputed plan (DESIGN.md §14) -------------------
    #: ``(rs.version, n_tasks, placements)`` installed by the cohort
    #: driver; consumed (and cleared) by the next unrestricted
    #: ``place_array`` call against the same round-state version.
    _stacked_plan: Optional[tuple] = None
    #: Candidate-set instrumentation (DESIGN.md §12): score evaluations
    #: actually run vs. stamped rows reused verbatim from the persistent
    #: store.  ``rows_scored`` after warm-up is the candidate-set size —
    #: it scales with the workers whose columns moved since their score
    #: was last computed, not with p.
    rows_scored = 0
    rows_reused = 0

    def _round_setup(self, rs: RoundState) -> dict:
        """Per-round candidate/score cache, keyed on ``rs.version``.

        A scheduling round issues several ``place_array`` calls against an
        unchanged round state (the main placement batch plus one call per
        replica), and within a round a score depends only on
        ``(q, n_q + 1, factor)``.  The cache holds the UP candidate list,
        the per-factor CT coefficients and nq-zero score rows, and belief
        gathers.  At the paper's p ≈ 20 everything is assembled as plain
        Python lists (the fixed per-ufunc numpy overhead dwarfs
        per-element Python arithmetic there); from ``_VECTOR_MIN_P``
        processors up, the assembly runs as numpy gathers over the column
        arrays instead — exact integer/copy operations, so the resulting
        lists are element-for-element identical — and the UP index array
        is kept (``up_arr``) for the vectorised single-placement path.
        Every replication placement and heap re-validation then runs on
        list lookups and scalar ops.
        """
        if self._round_version != rs.version:
            up_state = int(ProcState.UP)
            if len(rs) >= _VECTOR_MIN_P:
                up_arr = np.nonzero(rs.state == up_state)[0]
                up_list = up_arr.tolist()
                pinned_zero_arr = rs.pinned_count[up_arr] == 0
                pinned_zero = pinned_zero_arr.tolist()
            else:
                up_arr = None
                pinned_zero_arr = None
                state_list = rs.state.tolist()
                up_list = [q for q, s in enumerate(state_list) if s == up_state]
                cache = self._delta_reuse(rs, up_list)
                if cache is not None:
                    self._round_cache = cache
                    self._round_version = rs.version
                    return cache
                pinned_list = rs.pinned_count.tolist()
                pinned_zero = [pinned_list[q] == 0 for q in up_list]
            self._round_cache = {
                "up_list": up_list,
                "up_arr": up_arr,
                "pinned_zero": pinned_zero,
                "pinned_zero_arr": pinned_zero_arr,
                "row0": {},
                "row0_arr": {},
                "row0_nan": {},
                "row0_keys": {},
                "ct": {},
                "gathers": None,
                "belief": {},
            }
            self._round_version = rs.version
            if (
                up_arr is None
                and rs.stamped
                and self.batch_scoring
                and self._score_ct_one is not None
            ):
                # Seed the persistent cache (DESIGN.md §8): the artifacts
                # this round assembles into the cache dict are kept and
                # delta-patched next round instead of being rebuilt.
                self._persist = {
                    "rs": rs,
                    "serial": rs._stamp_serial,
                    "pos": {q: i for i, q in enumerate(up_list)},
                    "cache": self._round_cache,
                }
            else:
                self._persist = None
        return self._round_cache

    def _delta_reuse(self, rs: RoundState, up_list: list) -> Optional[dict]:
        """Delta-patch last round's cache instead of rebuilding it.

        The ROADMAP-named persistent per-factor score-row cache: when the
        UP set is unchanged and the stamp history covers the gap since
        the cache was last current, only the processors that were
        actually stamped (dirty) since then have moved — so the CT bases,
        ``n_q = 0`` score rows, signed key lists, pinned flags and delay
        gathers are patched in place at exactly those positions (via the
        same ``_score_ct_one`` scalar the full build would call, hence
        bit-identical) and everything else is reused verbatim.  Falls
        back to ``None`` — a full rebuild — when the UP set moved, the
        history window was exceeded, or the state does not maintain the
        stamp contract.
        """
        persist = self._persist
        if persist is None or persist["rs"] is not rs or not rs.stamped:
            return None
        cache = persist["cache"]
        if up_list != cache["up_list"]:
            return None
        changed = rs.changed_since(persist["serial"])
        if changed is None:
            return None
        persist["serial"] = rs._stamp_serial
        if not changed:
            return cache
        pos = persist["pos"]
        touched = [(pos[q], q) for q in changed if q in pos]
        if not touched:
            return cache
        pinned_zero = cache["pinned_zero"]
        pinned_count = rs.pinned_count
        for i, q in touched:
            pinned_zero[i] = int(pinned_count[q]) == 0
        row0 = cache["row0"]
        keys_map = cache["row0_keys"]
        # Score rows without CT coefficients (installed whole by the
        # stacked driver) cannot be patched per position — drop them so
        # they recompute instead of serving stale values.
        for stale in [f for f in row0 if f not in cache["ct"]]:
            del row0[stale]
            keys_map.pop(stale, None)
        gathers = cache["gathers"]
        if gathers is not None:
            delay_list, speed_list = gathers
            delay_col = rs.delay
            for i, q in touched:
                delay_list[i] = int(delay_col[q])
            t_data = rs.t_data
            sign = -1.0 if self.maximize else 1.0
            score_one = self._score_ct_one
            reused = len(up_list) - len(touched)
            for factor, (base, _step) in cache["ct"].items():
                eff = factor * t_data
                row = row0.get(factor)
                keys = keys_map.get(factor)
                for i, _q in touched:
                    ct = delay_list[i] + eff + speed_list[i]
                    base[i] = ct
                    if row is not None:
                        value = score_one(rs, cache, ct, i)
                        row[i] = value
                        if keys is not None:
                            keys[i] = sign * value
                if row is not None:
                    self.rows_scored += len(touched)
                    self.rows_reused += reused
        return cache

    def _gather_belief(self, rs: RoundState, cache: dict, name: str,
                       needs: str) -> list:
        """Belief column over the round's UP set as a Python float list.

        Memoised per round (the full-column list is static and cached on
        the round state).  NaN entries (missing beliefs) pass through:
        score rows cover the whole UP set while a placement call may be
        restricted to a subset, and the legacy contract only raises when
        a belief-less processor is an actual *candidate* — which
        ``place_array`` enforces against its candidate keys.
        """
        gathered = cache["belief"].get(name)
        if gathered is None:
            up_arr = cache["up_arr"]
            if up_arr is not None:
                gathered = rs.belief_column(name)[up_arr].tolist()
            else:
                up_list = cache["up_list"]
                column = rs.belief_column_list(name)
                gathered = [column[q] for q in up_list]
            cache["belief"][name] = gathered
        return gathered

    def _ct_bases(self, rs: RoundState, cache: dict, factor: int) -> tuple:
        """Per-factor CT coefficients over the UP set, memoised per round.

        ``CT(P_q, nq + 1) = base_q + nq · step_q`` with
        ``base_q = Delay(q) + eff + w_q`` and ``step_q = max(eff, w_q)``
        where ``eff = factor · t_data`` — integer arithmetic, hence
        exactly associative and bit-identical to the scalar
        :func:`completion_time_estimate` at every ``(q, nq, factor)``,
        whether assembled element-wise or as int64 numpy expressions
        (the large-p branch).
        """
        ct_bases = cache["ct"].get(factor)
        if ct_bases is None:
            gathers = cache["gathers"]
            if gathers is None:
                up_arr = cache["up_arr"]
                if up_arr is not None:
                    gathers = cache["gathers"] = (
                        rs.delay[up_arr],
                        rs.speed_w[up_arr],
                    )
                else:
                    up_list = cache["up_list"]
                    delay_list = rs.delay.tolist()
                    speed_list = rs.speed_list()
                    gathers = cache["gathers"] = (
                        [delay_list[q] for q in up_list],
                        [speed_list[q] for q in up_list],
                    )
            delay, speed = gathers
            eff = factor * rs.t_data
            if isinstance(delay, np.ndarray):
                ct_bases = cache["ct"][factor] = (
                    (delay + (eff + speed)).tolist(),
                    np.maximum(eff, speed).tolist(),
                )
            else:
                ct_bases = cache["ct"][factor] = (
                    [d + eff + w for d, w in zip(delay, speed)],
                    [eff if eff > w else w for w in speed],
                )
        return ct_bases

    #: CT-based subclasses implement these two hooks to get the pure-
    #: Python scoring fast path: ``_score_ct_row`` maps one list of
    #: integer CT values (candidate order) to a list of float scores,
    #: ``_score_ct_one`` maps a single ``(ct, up-position)`` pair to one
    #: score.  Both must repeat the scalar ``score`` path's IEEE-754
    #: operation sequence exactly.  None falls back to
    #: :meth:`score_batch` / :meth:`score_one` (the clairvoyant walker).
    _score_ct_row = None
    _score_ct_one = None

    def _place_one(self, rs: RoundState, cache: dict, allowed):
        """Fused single-placement path (the replication-call shape).

        One placement is the lazy heap's first pop — the minimum
        ``(score, index)`` pair — so when the contention factor is uniform
        across the candidates this selects it in a single pass over the
        cached ``n_q = 0`` score row, with no candidate lists, heap, or
        re-scores.  Returns ``NotImplemented`` when the factor genuinely
        varies (two initial factors straddle a ``ncom`` boundary), sending
        the caller to the general path.  From ``_VECTOR_MIN_P`` processors
        the whole call — allowed mask, active count, and the final masked
        argmin — runs vectorised (:meth:`_place_one_large`).
        """
        if cache["up_arr"] is not None:
            return self._place_one_large(rs, cache, allowed)
        up_list = cache["up_list"]
        allowed_set = None if allowed is None else _allowed_as_set(allowed)
        if not self.use_contention_factor or rs.ncom is None:
            factor = 1
        else:
            pinned_zero = cache["pinned_zero"]
            n_active = 0
            k = 0
            if allowed_set is None:
                k = len(up_list)
                n_active = k - sum(pinned_zero)
            else:
                for i, q in enumerate(up_list):
                    if q in allowed_set:
                        k += 1
                        if not pinned_zero[i]:
                            n_active += 1
            if k == 0:
                return [None]
            ncom = rs.ncom
            upper = n_active + (2 if n_active < k else 1)
            if upper > k:
                upper = k
            factor = max(1, -(-n_active // ncom))
            if factor != max(1, -(-upper // ncom)):
                return NotImplemented  # mixed factors: general path
        row0 = self._row0(rs, cache, factor)
        return self._place_one_scan(rs, cache, row0, allowed_set)

    def _place_one_large(self, rs: RoundState, cache: dict, allowed):
        """Vectorised :meth:`_place_one` twin for large platforms.

        The allowed set becomes a boolean mask over the UP array, the
        contention active-count becomes two masked ``count_nonzero``
        calls, and the selection is one masked argmin — ``argmin``
        returns the first occurrence of the minimum and ``up_list`` is
        ascending, so the tie-break (lowest index) matches the scalar
        scan exactly.  NaN keys (missing beliefs among the candidates)
        fall back to the scalar scan, which owns the error semantics.
        """
        up_list = cache["up_list"]
        if not up_list:
            return [None]
        up_arr = cache["up_arr"]
        sel = None
        if allowed is not None:
            sel = _allowed_as_mask(allowed, len(rs))[up_arr]
            k = int(np.count_nonzero(sel))
            if k == 0:
                return [None]
        else:
            k = len(up_list)
        if not self.use_contention_factor or rs.ncom is None:
            factor = 1
        else:
            pinned_zero = cache["pinned_zero_arr"]
            if sel is None:
                n_active = k - int(np.count_nonzero(pinned_zero))
            else:
                n_active = int(np.count_nonzero(sel & ~pinned_zero))
            ncom = rs.ncom
            upper = n_active + (2 if n_active < k else 1)
            if upper > k:
                upper = k
            factor = max(1, -(-n_active // ncom))
            if factor != max(1, -(-upper // ncom)):
                return NotImplemented  # mixed factors: general path
        keys = self._row0_keys(rs, cache, factor)
        if self._row0_nan(rs, cache, factor):
            row0 = self._row0(rs, cache, factor)
            allowed_set = None if allowed is None else _allowed_as_set(allowed)
            return self._place_one_scan(rs, cache, row0, allowed_set)
        if sel is not None:
            keys = np.where(sel, keys, np.inf)
        return [up_list[int(keys.argmin())]]

    def _place_one_scan(self, rs: RoundState, cache: dict, row0: list,
                        allowed_set) -> list:
        """The scalar single-placement scan over the ``n_q = 0`` row.

        Shared tail of both :meth:`_place_one` paths; also the owner of
        the legacy missing-belief error semantics (raise on the first
        NaN-scored *candidate* in ascending index order).
        """
        sign = -1.0 if self.maximize else 1.0
        needs = self._belief_needs
        best_q = None
        best_key = 0.0
        for i, q in enumerate(cache["up_list"]):
            if allowed_set is not None and q not in allowed_set:
                continue
            key = sign * row0[i]
            if key != key and needs is not None:  # NaN: candidate lacks belief
                rs.require_beliefs((q,), needs)
            if best_q is None or key < best_key or (key == best_key and q < best_q):
                best_q = q
                best_key = key
        return [best_q] if best_q is not None else [None]

    def _row0(self, rs: RoundState, cache: dict, factor: int) -> list:
        """Every UP processor's score at ``n_q = 0``, memoised per round.

        This is the row every placement call starts from (and the only
        full-width scoring work a round pays): the CT at ``nq = 0`` is the
        ``base`` coefficient itself, and non-CT heuristics go through one
        :meth:`score_batch` call.
        """
        row = cache["row0"].get(factor)
        if row is None:
            score_row = self._score_ct_row
            if score_row is not None:
                base, _step = self._ct_bases(rs, cache, factor)
                if rs.stamped and self._score_ct_one is not None:
                    row = self._row0_stamped(rs, cache, factor, base)
                else:
                    row = score_row(rs, cache, base)
                    self.rows_scored += len(row)
            else:
                up = np.array(cache["up_list"], dtype=np.intp)
                row = self.score_batch(
                    rs, up, np.ones(up.size, dtype=np.int64), factor
                ).tolist()
                self.rows_scored += len(row)
            cache["row0"][factor] = row
        return row

    def _row0_keys_list(self, rs: RoundState, cache: dict, factor: int) -> list:
        """The ``n_q = 0`` row as a signed float list, memoised per round.

        Small-p twin of :meth:`_row0_keys`: the unrestricted placement
        and replication calls of one round (and, with the persistent
        cache, of every delta-reused round) share one ``sign * value``
        materialisation instead of rebuilding the listcomp per call.
        Callers must treat the list as read-only.
        """
        keys = cache["row0_keys"].get(factor)
        if keys is None:
            sign = -1.0 if self.maximize else 1.0
            keys = [sign * value for value in self._row0(rs, cache, factor)]
            cache["row0_keys"][factor] = keys
        return keys

    def _row0_keys(self, rs: RoundState, cache: dict, factor: int) -> np.ndarray:
        """The ``n_q = 0`` row as a signed float64 array, memoised per round.

        ``sign * value`` in float64 is the same operation element-wise or
        vectorised, so these keys equal the scalar paths' keys bit for
        bit.  Hoisting the list→ndarray conversion here (one per round ×
        factor, instead of one per *placement*) is what keeps a large-p
        replication round from paying O(up) conversions per replica.
        """
        keys = cache["row0_arr"].get(factor)
        if keys is None:
            sign = -1.0 if self.maximize else 1.0
            keys = sign * np.asarray(
                self._row0(rs, cache, factor), dtype=np.float64
            )
            cache["row0_arr"][factor] = keys
            cache["row0_nan"][factor] = bool(np.isnan(keys).any())
        return keys

    def _row0_nan(self, rs: RoundState, cache: dict, factor: int) -> bool:
        """Whether the signed ``n_q = 0`` row holds any NaN, memoised.

        A NaN key means a candidate lacks a belief, and every vectorised
        argmin must yield to the scalar scan that owns those error
        semantics (``argmin`` would select the NaN first; the scalar
        comparisons never do).  The answer is a per-round constant, so
        checking the full row once here replaces an O(up) ``isnan`` per
        placement.  The full-row check is a conservative superset of any
        masked subset: a NaN outside the allowed mask also routes to the
        scalar scan, which simply skips it.
        """
        nan_any = cache["row0_nan"].get(factor)
        if nan_any is None:
            self._row0_keys(rs, cache, factor)
            nan_any = cache["row0_nan"][factor]
        return nan_any

    def _row0_stamped(self, rs: RoundState, cache: dict, factor: int,
                      base: list) -> list:
        """Assemble the ``n_q = 0`` row from a cross-round persistent store.

        The CT-family scores at ``n_q = 0`` are pure functions of the
        stamped worker columns (``delay``, via the CT base), the static
        speed/belief columns and the factor — so a processor whose
        :attr:`RoundState.col_stamp` did not move since its value was
        last computed keeps that value verbatim, and only stamped-out
        entries re-run :meth:`_score_ct_one` (the exact elementwise twin
        of :meth:`_score_ct_row`, DESIGN.md §8).  This *is* the
        candidate-set scoring of the large-p engine (DESIGN.md §12): the
        set of workers re-scored per round is exactly the set whose
        stamped columns moved since their last score — availability,
        queue, or belief churn — while the greedy *selection* still
        compares every UP worker's (cached or fresh) score, which is why
        a non-candidate can never silently overtake an incumbent: its
        key is present in every comparison, just not recomputed.
        Schedulers without the hooks (``batch_scoring`` False, or no
        ``_score_ct_one``) take the conservative full-scan path above.
        Active only when the
        state owner maintains the stamp contract (``rs.stamped``); the
        store is keyed on the RoundState object so a scheduler reused
        against another state can never mix rows.
        """
        if self._row_store_rs is not rs:
            self._row_store_rs = rs
            self._row_store = {}
        up_arr = cache["up_arr"]
        if up_arr is not None:
            # Large-p store: float64/int64 columns, so the hit test and
            # the row gather are two vector ops and only the misses (the
            # candidate set) run Python at all.
            per_factor = self._row_store.get(factor)
            if per_factor is None:
                per_factor = self._row_store[factor] = (
                    np.zeros(len(rs), dtype=np.float64),
                    np.full(len(rs), -1, dtype=np.int64),
                )
            values, stamps = per_factor
            current = np.asarray(rs.col_stamp, dtype=np.int64)[up_arr]
            miss = np.nonzero(stamps[up_arr] != current)[0]
            if miss.size:
                score_one = self._score_ct_one
                up_list = cache["up_list"]
                for i in miss.tolist():
                    q = up_list[i]
                    values[q] = score_one(rs, cache, base[i], i)
                stamps[up_arr[miss]] = current[miss]
            scored = int(miss.size)
            self.rows_scored += scored
            self.rows_reused += len(up_arr) - scored
            return values[up_arr].tolist()
        per_factor = self._row_store.get(factor)
        if per_factor is None:
            per_factor = self._row_store[factor] = (
                [0.0] * len(rs),
                [-1] * len(rs),
            )
        values, stamps = per_factor
        col_stamp = rs.col_stamp
        score_one = self._score_ct_one
        row = []
        append = row.append
        scored = 0
        for i, q in enumerate(cache["up_list"]):
            stamp = col_stamp[q]
            if stamps[q] == stamp:
                append(values[q])
            else:
                value = score_one(rs, cache, base[i], i)
                values[q] = value
                stamps[q] = stamp
                append(value)
                scored += 1
        self.rows_scored += scored
        self.rows_reused += len(row) - scored
        return row

    # -- stacked-round scoring (DESIGN.md §14) ----------------------------
    def score_batch_stacked(self, stacked, rows, factors, ct0, members):
        """Cohort-wide ``n_q = 0`` score rows in one pass, or ``None``.

        The stacked-round driver calls this once per (scheduler kind,
        contention factor profile) group with the full-width integer CT
        matrix ``ct0`` (shape ``(K, p)``: ``Delay + factor·t_data + w``
        per member row — exact int64, only UP positions meaningful) and
        asks for every member's ``n_q = 0`` score row at once.

        Args:
            stacked: the cohort's
                :class:`~repro.core.heuristics.round_state.StackedRoundState`.
            rows: each member's stacked row index, aligned with ``ct0``.
            factors: each member's (uniform) contention factor.
            ct0: the ``(K, p)`` int64 CT matrix at ``n_q = 0``.
            members: aligned ``(rs, cache)`` pairs — the member's
                :class:`RoundState` and its current ``_round_setup`` dict.

        Returns:
            A list of K Python float lists — member ``k``'s score row
            aligned with its ``cache["up_list"]`` — or ``None`` when the
            heuristic has no stacked kernel (the driver then leaves that
            group to the per-run path, bit-identically).  Every returned
            value must be bit-identical to what :meth:`_score_ct_row`
            would produce for the same ``(ct, position)``: elementwise
            add/mul/max vectorise exactly, while exponentiation must stay
            scalar ``math.pow`` (the 1-ulp rule, see :func:`pow_batch`)
            — LW/UD therefore route through the stamped store
            (:meth:`_stacked_rows_via_store`) rather than ``np.power``.
        """
        return None

    def _stacked_rows_via_store(self, stacked, rows, factors, ct0, members):
        """Stacked score rows through the cohort-wide persistent store.

        The :class:`StackedRoundState` keeps ``(values, stamps)`` (C, p)
        matrices per (scheduler kind, factor): a member's score at ``q``
        is reused verbatim while ``col_stamp[row, q]`` has not moved —
        the cohort twin of :meth:`_row0_stamped` — and only stamped-out
        entries re-run the scalar :meth:`_score_ct_one` (preserving the
        ``math.pow`` 1-ulp rule, which is why the pow-based LW/UD rows
        cannot be a single vectorised expression).  Scores depend only on
        the stamped columns, the member-static ``t_data``/beliefs and the
        factor, and rows are stamp-reset on attach, so a hit can never
        serve another occupant's (or a stale) value.
        """
        kind = type(self).__name__
        out = []
        for k, (rs, cache) in enumerate(members):
            row = rows[k]
            values, stamps = stacked.store(kind, factors[k])
            value_row = values[row]
            stamp_row = stamps[row]
            ix = cache.get("up_ix")
            if ix is None:
                ix = cache["up_ix"] = np.array(cache["up_list"], dtype=np.intp)
            cur = stacked.col_stamp[row][ix]
            misses = np.nonzero(stamp_row[ix] != cur)[0]
            if misses.size == 0:
                member_row = value_row[ix].tolist()
                self.rows_reused += len(member_row)
            elif 2 * int(misses.size) >= ix.size:
                # Mostly stale (fresh attach, factor flip): one hoisted
                # full-row pass — `_score_ct_row` is the documented
                # bit-identical twin of per-position `_score_ct_one`.
                member_row = self._score_ct_row(rs, cache, ct0[k][ix].tolist())
                value_row[ix] = member_row
                stamp_row[ix] = cur
                self.rows_scored += len(member_row)
            else:
                member_row = value_row[ix].tolist()
                scorer = self._stacked_scorer(rs, cache, factors[k])
                cts = ct0[k][ix].tolist()
                miss_list = misses.tolist()
                for i in miss_list:
                    member_row[i] = scorer(cts[i], i)
                value_row[ix[misses]] = [member_row[i] for i in miss_list]
                stamp_row[ix[misses]] = cur[misses]
                self.rows_scored += len(miss_list)
                self.rows_reused += len(member_row) - len(miss_list)
            out.append(member_row)
        return out

    def _stacked_scorer(self, rs: RoundState, cache: dict, factor):
        """A hoisted ``(ct, i) -> score`` closure for tight re-score loops.

        Bit-identical to :meth:`_score_ct_one` by construction — the
        subclasses hoist their belief gathers out of the per-call body
        (the values are member-static for the round), nothing else
        changes.  Returns ``None`` when the scheduler has no scalar CT
        hook."""
        score_one = self._score_ct_one
        if score_one is None:
            return None
        return lambda ct, i: score_one(rs, cache, ct, i)

    def _extract_stacked_rows(self, scores, members):
        """Gather each member's UP positions out of a full-width (K, p)
        float64 score matrix (the tail shared by the vectorisable stacked
        kernels).  ``tolist`` round-trips float64 exactly, so the lists
        equal the scalar assemblies bit for bit."""
        out = []
        for k, (_rs, cache) in enumerate(members):
            up_list = cache["up_list"]
            row = scores[k].take(up_list).tolist() if up_list else []
            self.rows_scored += len(row)
            out.append(row)
        return out

    def place_array(
        self,
        rs: RoundState,
        n_tasks: int,
        allowed: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Array-path greedy placement over cached per-round score rows.

        The ``n_q = 0`` score row (memoised per round and factor, shared
        with every replication placement) seeds the lazy heap; the
        one-by-one loop, ``n_q``/``n_active`` bookkeeping, and
        lowest-index tie-break are the legacy :meth:`place` loop verbatim,
        with re-scores computed per element from the cached CT
        coefficients.  Two exact shortcuts replace the legacy re-validation
        re-scores: without contention a heap entry can never go stale (its
        key is refreshed whenever its ``n_q`` moves, and nothing else
        enters its score), and with contention an entry is stale only when
        its applicable factor differs from the factor it was scored at —
        in both cases the comparison the legacy loop performs would
        succeed, so popping directly is bit-identical.  Heap keys are the
        same float64 values in the same ``(key, index)`` order as the
        scalar path, so the produced assignments are too.
        """
        if not self.batch_scoring:
            return super().place_array(rs, n_tasks, allowed)
        if n_tasks == 0:
            # Nothing to place: skip candidate setup and scoring entirely.
            # (The legacy loop still seeds its heap here, so on a platform
            # with belief-less UP processors it would raise where this
            # path returns — irrelevant to any simulated outcome.)
            return []
        plan = self._stacked_plan
        if plan is not None:
            # Stacked-round precompute (DESIGN.md §14): the cohort driver
            # already ran this exact unrestricted placement through the
            # cohort-wide argmin loop.  The plan is a pure function of
            # (columns at ``rs.version``, ``n_tasks``) — the same
            # invariant the version-keyed ``_round_setup`` cache rests
            # on — so it persists and keeps serving (relevance-gate
            # probe, the post-gate placement, elided-round re-probes)
            # until a column write bumps ``rs.version`` and retires it.
            plan_version, plan_count, placed = plan
            if (
                allowed is None
                and plan_version == rs.version
                and plan_count == n_tasks
            ):
                return placed
            if plan_version != rs.version:
                self._stacked_plan = None
        cache = self._round_setup(rs)
        if n_tasks == 1:
            single = self._place_one(rs, cache, allowed)
            if single is not NotImplemented:
                return single
        up_list = cache["up_list"]
        if allowed is None:
            positions = None  # identity: candidate j is UP position j
            cand_list = up_list
            pinned_zero = cache["pinned_zero"]
        elif cache["up_arr"] is not None:
            up_arr = cache["up_arr"]
            sel = _allowed_as_mask(allowed, len(rs))[up_arr]
            positions = np.nonzero(sel)[0].tolist()
            cand_list = up_arr[sel].tolist()
            pinned_zero = cache["pinned_zero_arr"][sel].tolist()
        else:
            allowed_set = _allowed_as_set(allowed)
            positions = [i for i, q in enumerate(up_list) if q in allowed_set]
            cand_list = [up_list[i] for i in positions]
            all_pinned_zero = cache["pinned_zero"]
            pinned_zero = [all_pinned_zero[i] for i in positions]
        k = len(cand_list)
        if k == 0:
            return [None] * n_tasks
        no_pinned = sum(pinned_zero)
        n_active = k - no_pinned
        sign = -1.0 if self.maximize else 1.0
        contended = self.use_contention_factor and rs.ncom is not None
        ncom = rs.ncom

        # Resolve the contention factor up front where possible: within
        # this call every factor evaluation sees an active count in
        # ``[n_active, min(k, n_active + min(no_pinned, n_tasks) + 1)]``
        # (``n_active`` only grows, by one per first placement on a
        # pinned-free candidate), and ``ceil(·/ncom)`` is monotone — so if
        # the two endpoints agree the factor is provably constant and the
        # whole call runs the cheap uniform path, exactly as the scalar
        # loop would have computed it.
        if not contended:
            uniform_factor: Optional[int] = 1
        else:
            growth = no_pinned if no_pinned < n_tasks else n_tasks
            upper = n_active + growth + 1
            if upper > k:
                upper = k
            factor_low = max(1, -(-n_active // ncom))
            factor_high = max(1, -(-upper // ncom))
            uniform_factor = factor_low if factor_low == factor_high else None

        # Initial speculative scores: nq = 0 everywhere, so each candidate
        # speculates itself newly active iff it has no pinned work; at
        # most two distinct contention factors occur among them.
        keys_arr = None
        keys_factor = None
        if uniform_factor is not None:
            if cache["up_arr"] is not None:
                karr = self._row0_keys(rs, cache, uniform_factor)
                keys_arr = karr if positions is None else karr.take(positions)
                keys_factor = uniform_factor
                keys = None  # materialised lazily on the scalar paths
            else:
                if positions is None:
                    keys = self._row0_keys_list(rs, cache, uniform_factor)
                else:
                    row0 = self._row0(rs, cache, uniform_factor)
                    keys = [sign * row0[i] for i in positions]
        else:
            factor_base = max(1, -(-n_active // ncom))
            factor_spec = max(1, -(-(n_active + 1) // ncom))
            row_base = self._row0(rs, cache, factor_base)
            if factor_spec == factor_base:
                if cache["up_arr"] is not None:
                    karr = self._row0_keys(rs, cache, factor_base)
                    keys_arr = (
                        karr if positions is None else karr.take(positions)
                    )
                    keys_factor = factor_base
                    keys = None  # materialised lazily on the scalar paths
                elif positions is None:
                    keys = self._row0_keys_list(rs, cache, factor_base)
                else:
                    keys = [sign * row_base[i] for i in positions]
                entry_factor = [factor_base] * k
            else:
                row_spec = self._row0(rs, cache, factor_spec)
                keys = []
                entry_factor = []
                for j in range(k):
                    i = j if positions is None else positions[j]
                    if pinned_zero[j]:
                        keys.append(sign * row_spec[i])
                        entry_factor.append(factor_spec)
                    else:
                        keys.append(sign * row_base[i])
                        entry_factor.append(factor_base)
        # Conservative per-round constant (see :meth:`_row0_nan`): a NaN
        # anywhere in the source row — even outside ``positions`` — routes
        # this call to the scalar paths, which own the NaN semantics.
        nan_any = (
            self._row0_nan(rs, cache, keys_factor)
            if keys_arr is not None
            else None
        )
        if self._belief_needs is not None:
            nan_hit = (
                nan_any
                if nan_any is not None
                else any(key != key for key in keys)
            )
            if nan_hit:
                # A NaN key means a *candidate* lacks a belief model: raise
                # the legacy error for the first such candidate, as the
                # scalar heap-init scoring (ascending candidate order) would.
                rs.require_beliefs(cand_list, self._belief_needs)
        if n_tasks == 1:
            # Replication fast path: one placement is the heap's first pop,
            # i.e. the minimum (key, index) pair — no heap, no re-scores.
            # ``cand_list`` ascends with ``j``, so the vectorised argmin's
            # first-occurrence rule is the same lexicographic minimum (the
            # scalar loop never *selects* a NaN key, so argmin — where NaN
            # wins — only applies to NaN-free keys).
            if keys_arr is not None and not nan_any:
                return [cand_list[int(keys_arr.argmin())]]
            if keys is None:
                keys = keys_arr.tolist()
            best_j = 0
            for j in range(1, k):
                if (keys[j], cand_list[j]) < (keys[best_j], cand_list[best_j]):
                    best_j = j
            return [cand_list[best_j]]
        placements: List[Optional[int]] = []
        score_ct = self._score_ct_one
        if (
            uniform_factor is not None
            and keys_arr is not None
            and not nan_any
            and score_ct is not None
        ):
            # Large-p uniform-factor loop over the key *array*: each pop is
            # an argmin (first occurrence of the minimum = the heap's
            # (key, cand, j) lexicographic minimum, since ``cand_list``
            # ascends with ``j`` and keys are NaN-free) and each replace
            # is one store — no O(k) tuple-heap build per call.
            base, step = self._ct_bases(rs, cache, uniform_factor)
            working = keys_arr.copy()
            nq = [0] * k
            for _ in range(n_tasks):
                j = int(working.argmin())
                placements.append(cand_list[j])
                count = nq[j] + 1
                nq[j] = count
                i = j if positions is None else positions[j]
                working[j] = sign * score_ct(
                    rs, cache, base[i] + count * step[i], i
                )
            return placements
        if keys is None:
            keys = keys_arr.tolist()
        heap = [(keys[j], cand_list[j], j) for j in range(k)]
        heapq.heapify(heap)
        nq = [0] * k

        if uniform_factor is not None:
            # Tight loop: every heap entry is always current (the factor is
            # constant, and the placed candidate's key is refreshed on the
            # spot), so each placement is pop + one fresh score + replace.
            factor = uniform_factor
            if score_ct is not None:
                base, step = self._ct_bases(rs, cache, factor)
                for _ in range(n_tasks):
                    key, index, j = heap[0]
                    placements.append(index)
                    count = nq[j] + 1
                    nq[j] = count
                    i = j if positions is None else positions[j]
                    heapq.heapreplace(
                        heap,
                        (
                            sign * score_ct(rs, cache, base[i] + count * step[i], i),
                            index,
                            j,
                        ),
                    )
            else:
                for _ in range(n_tasks):
                    key, index, j = heap[0]
                    placements.append(index)
                    count = nq[j] + 1
                    nq[j] = count
                    heapq.heapreplace(
                        heap,
                        (
                            sign * self.score_one(rs, index, count + 1, factor),
                            index,
                            j,
                        ),
                    )
            return placements

        # Contended loop: a heap entry goes stale only when its applicable
        # factor moved (entry_factor tracks the factor it was scored at).
        ct_cache = cache["ct"]

        def rescore(j: int, f: int) -> float:
            if score_ct is not None:
                bases = ct_cache.get(f)
                if bases is None:
                    bases = self._ct_bases(rs, cache, f)
                base, step = bases
                i = j if positions is None else positions[j]
                return sign * score_ct(rs, cache, base[i] + nq[j] * step[i], i)
            return sign * self.score_one(rs, cand_list[j], nq[j] + 1, f)

        for _ in range(n_tasks):
            while True:
                key, index, j = heap[0]
                spec = n_active + (1 if nq[j] == 0 and pinned_zero[j] else 0)
                f = max(1, -(-spec // ncom))
                if f == entry_factor[j]:
                    break
                current = rescore(j, f)
                entry_factor[j] = f
                if current == key:
                    break
                heapq.heapreplace(heap, (current, index, j))
            placements.append(index)
            if nq[j] == 0 and pinned_zero[j]:
                n_active += 1
            nq[j] += 1
            # nq[j] > 0 now, so the speculative n_active is just n_active.
            f = max(1, -(-n_active // ncom))
            entry_factor[j] = f
            heapq.heapreplace(heap, (rescore(j, f), index, j))
        return placements
