"""Scheduler interface: the contract between the simulator and heuristics.

At each scheduling round the master builds a :class:`SchedulingContext`
containing, for every processor, a :class:`ProcessorView` snapshot: its
current state, its believed Markov chain, its speed, whether it holds the
program, and the paper's ``Delay(q)`` estimate.  The scheduler then *places*
a batch of task instances — the ``m - m'`` remaining (unpinned) tasks of the
current iteration, or a batch of replicas — onto UP processors.

All of the paper's heuristics share the same outer structure (Section 6.1:
"All heuristics assign tasks to processors one-by-one, until m tasks are
assigned"), so :class:`GreedyScheduler` and the random schedulers only
implement a per-task *selection rule*; the one-by-one loop, the per-round
``n_q`` bookkeeping and the ``n_active`` counter used by the
contention-corrected variants live here.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...types import ProcState
from ..markov import MarkovAvailabilityModel

__all__ = [
    "ProcessorView",
    "SchedulingContext",
    "Scheduler",
    "GreedyScheduler",
    "completion_time_estimate",
]


@dataclass
class ProcessorView:
    """Immutable-by-convention snapshot of one processor for one round.

    Attributes:
        index: processor index.
        speed_w: :math:`w_q`, UP slots per task.
        state: current ground-truth state (the master knows states via the
            heartbeat assumption, Section 3.2).
        belief: the Markov chain the scheduler believes governs this
            processor (``None`` only in contexts where no Markov-informed
            heuristic is in use).
        has_program: True when the worker currently holds the full program.
        delay: the paper's ``Delay(q)`` — slots before the worker finishes
            its already-pinned activities, under the stay-UP/no-contention
            simplification (Section 6.3.1).  Includes remaining program
            transfer time for workers that still need (part of) the program.
        pinned_count: number of task instances already pinned to the worker
            (used to seed the ``n_active`` counter).
        prog_remaining: program transfer slots still needed (0 when the
            worker holds the program).
        pinned_pipeline: per pinned instance, in service order, a tuple
            ``(data_remaining, compute_remaining, computing)``.  The paper's
            heuristics only consume the aggregate ``delay``; the detailed
            pipeline feeds extensions such as the clairvoyant baseline.
    """

    index: int
    speed_w: int
    state: ProcState
    belief: Optional[MarkovAvailabilityModel]
    has_program: bool
    delay: int
    pinned_count: int
    prog_remaining: int = 0
    pinned_pipeline: tuple = ()

    @property
    def is_up(self) -> bool:
        """True when the processor can currently be assigned work."""
        return self.state == ProcState.UP


@dataclass
class SchedulingContext:
    """Everything a heuristic may look at during one scheduling round.

    Attributes:
        slot: current time slot.
        t_prog: program transfer length (slots).
        t_data: task input transfer length (slots).
        ncom: master channel budget (``None`` = unbounded).
        processors: snapshot of all processors (indexable by processor
            index — the list is ordered).
        remaining_tasks: ``m - m'`` — tasks of the current iteration whose
            work has not begun anywhere.
        rng: RNG stream reserved for scheduler randomness (the random
            heuristic family), distinct from availability sampling streams.
    """

    slot: int
    t_prog: int
    t_data: int
    ncom: Optional[int]
    processors: List[ProcessorView]
    remaining_tasks: int
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def up_processors(self) -> List[ProcessorView]:
        """Views of the processors currently UP, ascending index."""
        return [view for view in self.processors if view.is_up]


def completion_time_estimate(
    view: ProcessorView,
    nq: int,
    t_data: int,
    *,
    contention_factor: int = 1,
) -> float:
    """The paper's ``CT(P_q, n_q)`` estimate (Equations 1 and 2).

    Equation 1 (``contention_factor == 1``):

    .. math::
       CT(P_q, n_q) = Delay(q) + T_{data}
                      + \\max(n_q - 1, 0)\\,\\max(T_{data}, w_q) + w_q

    Equation 2 replaces :math:`T_{data}` by
    :math:`\\lceil n_{active} / n_{com} \\rceil T_{data}` — the caller passes
    that ceiling as ``contention_factor``.

    Args:
        view: the processor snapshot (provides ``Delay(q)`` and ``w_q``).
        nq: number of tasks assigned to this processor *in this round*,
            including the candidate one (the paper evaluates
            ``CT(P_q, n_q + 1)``; callers pass the incremented value).
        t_data: the uncorrected data transfer time.
        contention_factor: ``ceil(n_active / n_com)`` for Equation 2.

    Returns:
        The estimated completion-time in slots (float to allow its use as
        the workload of Theorem 2's expectation).
    """
    if nq < 1:
        raise ValueError(f"nq must be >= 1 when estimating a placement, got {nq}")
    eff_t_data = contention_factor * t_data
    return (
        view.delay
        + eff_t_data
        + max(nq - 1, 0) * max(eff_t_data, view.speed_w)
        + view.speed_w
    )


class Scheduler(abc.ABC):
    """Base class for all scheduling heuristics.

    Subclasses implement :meth:`select`, choosing one processor for one
    task given the per-round load picture.  The shared :meth:`place` loop
    then realises the paper's one-by-one assignment protocol.

    Schedulers may be stateful across rounds (the passive baseline is), but
    all paper heuristics are round-stateless.
    """

    #: Registry name; subclasses set this (e.g. ``"emct*"``).
    name: str = "scheduler"

    def place(
        self,
        ctx: SchedulingContext,
        n_tasks: int,
        allowed: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Assign ``n_tasks`` task instances to processors, one by one.

        Args:
            ctx: the scheduling context.
            n_tasks: how many instances to place.
            allowed: optional subset of processor indices that may be used
                (the master restricts replica placement to idle workers).
                Defaults to all UP processors.

        Returns:
            A list of length ``n_tasks`` with the chosen processor index
            per instance, or ``None`` for instances that could not be
            placed (no eligible processor).
        """
        candidates = self._candidates(ctx, allowed)
        placements: List[Optional[int]] = []
        nq: Dict[int, int] = {view.index: 0 for view in candidates}
        n_active = sum(1 for view in candidates if view.pinned_count > 0)
        for _ in range(n_tasks):
            if not candidates:
                placements.append(None)
                continue
            choice = self.select(ctx, candidates, nq, n_active)
            if choice is None:
                placements.append(None)
                continue
            if nq[choice] == 0:
                view = next(v for v in candidates if v.index == choice)
                if view.pinned_count == 0:
                    n_active += 1
            nq[choice] += 1
            placements.append(choice)
        return placements

    def _candidates(
        self, ctx: SchedulingContext, allowed: Optional[Sequence[int]]
    ) -> List[ProcessorView]:
        ups = ctx.up_processors()
        if allowed is None:
            return ups
        allowed_set = set(allowed)
        return [view for view in ups if view.index in allowed_set]

    @abc.abstractmethod
    def select(
        self,
        ctx: SchedulingContext,
        candidates: List[ProcessorView],
        nq: Dict[int, int],
        n_active: int,
    ) -> Optional[int]:
        """Choose the processor for the next task.

        Args:
            ctx: the scheduling context.
            candidates: UP processors eligible for this placement batch.
            nq: tasks assigned per processor so far *in this round* (keyed
                by processor index; counts exclude pinned work, which is
                captured by ``Delay``).
            n_active: the paper's ``n_active`` counter — processors that
                have (or just received) work, used by the Equation 2
                contention correction.

        Returns:
            The chosen processor index, or ``None`` to leave the task
            unassigned this round.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class GreedyScheduler(Scheduler):
    """Shared skeleton for score-based greedy heuristics (MCT/LW/UD family).

    Subclasses implement :meth:`score`; the candidate minimising (or
    maximising, per :attr:`maximize`) the score wins.  Ties break toward
    the lower processor index, matching the deterministic tie-break used
    throughout the package.
    """

    #: Whether higher scores are better (LW/UD maximise probabilities).
    maximize: bool = False

    #: Whether Equation 2's contention factor replaces ``t_data``.
    use_contention_factor: bool = False

    def contention_factor(self, ctx: SchedulingContext, n_active: int) -> int:
        """``ceil(n_active / ncom)`` when enabled and bounded, else 1."""
        if not self.use_contention_factor or ctx.ncom is None:
            return 1
        return max(1, -(-n_active // ctx.ncom))

    @abc.abstractmethod
    def score(
        self,
        ctx: SchedulingContext,
        view: ProcessorView,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        """Score of placing the next task on ``view``."""

    def select(
        self,
        ctx: SchedulingContext,
        candidates: List[ProcessorView],
        nq: Dict[int, int],
        n_active: int,
    ) -> Optional[int]:
        # n_active counts this candidate placement as active, matching the
        # paper's "incremented when a task is assigned to a newly enrolled
        # processor": the transfer we are costing will itself be active.
        best_index: Optional[int] = None
        best_score = 0.0
        for view in candidates:
            value = self._speculative_score(ctx, view, nq[view.index], n_active)
            if best_index is None:
                best_index, best_score = view.index, value
            elif self.maximize and value > best_score:
                best_index, best_score = view.index, value
            elif not self.maximize and value < best_score:
                best_index, best_score = view.index, value
        return best_index

    def _speculative_score(
        self, ctx: SchedulingContext, view: ProcessorView, nq_view: int, n_active: int
    ) -> float:
        speculative_active = n_active
        if nq_view == 0 and view.pinned_count == 0:
            speculative_active += 1
        factor = self.contention_factor(ctx, speculative_active)
        return self.score(ctx, view, nq_view + 1, factor)

    def place(
        self,
        ctx: SchedulingContext,
        n_tasks: int,
        allowed: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Greedy placement via a lazy-revalidation heap.

        Produces exactly the same assignments as the generic one-by-one
        loop (same scores, same lowest-index tie-break) but evaluates the
        score function ~``p + n_tasks`` times per round instead of
        ``p × n_tasks``.  Correctness of the lazy heap relies on scores
        being monotone in both ``n_q`` and ``n_active`` (``CT`` grows with
        both, so minimised scores only grow stale-upward and maximised
        probabilities only grow stale-downward); a popped entry is
        re-scored and re-pushed if it no longer matches.
        """
        candidates = self._candidates(ctx, allowed)
        placements: List[Optional[int]] = []
        if not candidates:
            return [None] * n_tasks
        nq: Dict[int, int] = {view.index: 0 for view in candidates}
        n_active = sum(1 for view in candidates if view.pinned_count > 0)
        sign = -1.0 if self.maximize else 1.0
        heap = [
            (
                sign * self._speculative_score(ctx, view, 0, n_active),
                view.index,
                view,
            )
            for view in candidates
        ]
        heapq.heapify(heap)
        for _ in range(n_tasks):
            while True:
                key, index, view = heap[0]
                current = sign * self._speculative_score(
                    ctx, view, nq[index], n_active
                )
                if current == key:
                    break
                heapq.heapreplace(heap, (current, index, view))
            placements.append(index)
            if nq[index] == 0 and view.pinned_count == 0:
                n_active += 1
            nq[index] += 1
            heapq.heapreplace(
                heap,
                (
                    sign * self._speculative_score(ctx, view, nq[index], n_active),
                    index,
                    view,
                ),
            )
        return placements
