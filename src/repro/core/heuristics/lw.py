"""LW — "Likely to Work" heuristics (paper Section 6.3.2).

LW ranks processors by the probability of surviving (no DOWN state) long
enough to complete the estimated workload, using Lemma 1's per-UP-slot
survival probability:

.. math::
   q_0 = \\arg\\max_q \\left(P^{(q)}_+\\right)^{CT(P_q,\\,n_q+1)}

``LW*`` uses Equation 2's contention-corrected ``CT`` as the exponent.

Note the workload enters only through the *exponent*; unlike UD the
probability base ignores the time spent RECLAIMED, which is why UD
dominates LW in the paper's results (and in ours).
"""

from __future__ import annotations

import math

import numpy as np

from ..expectation import p_plus
from .base import (
    GreedyScheduler,
    ProcessorView,
    RoundState,
    SchedulingContext,
    completion_time_batch,
    completion_time_estimate,
    pow_batch,
)

__all__ = ["LwScheduler"]


class LwScheduler(GreedyScheduler):
    """``LW`` / ``LW*``: maximise the UP-run survival probability.

    Args:
        contention: enables Equation 2's correcting factor (the ``*``).
    """

    maximize = True
    batch_scoring = True
    _belief_needs = "LW needs one"

    def __init__(self, *, contention: bool = False):
        self.use_contention_factor = contention
        self.name = "lw*" if contention else "lw"
        self._p_plus_cache: dict[int, float] = {}

    def _p_plus(self, view: ProcessorView) -> float:
        if view.belief is None:
            raise ValueError(
                f"processor {view.index} has no Markov belief; LW needs one"
            )
        cached = self._p_plus_cache.get(view.index)
        if cached is None:
            cached = p_plus(view.belief)
            self._p_plus_cache[view.index] = cached
        return cached

    def score(
        self,
        ctx: SchedulingContext,
        view: ProcessorView,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        ct = completion_time_estimate(
            view, nq_plus_one, ctx.t_data, contention_factor=contention_factor
        )
        return self._p_plus(view) ** ct

    def score_batch(
        self,
        rs: RoundState,
        indices: np.ndarray,
        nq_plus_one: np.ndarray,
        contention_factor,
    ) -> np.ndarray:
        ct = completion_time_batch(rs, indices, nq_plus_one, contention_factor)
        return pow_batch(rs.gather_belief("p_plus", indices, "LW needs one"), ct)

    def score_one(
        self, rs: RoundState, q: int, nq_plus_one: int, contention_factor: int
    ) -> float:
        if rs.beliefs[q] is None:
            raise ValueError(f"processor {q} has no Markov belief; LW needs one")
        eff = contention_factor * rs.t_data
        speed = int(rs.speed_w[q])
        ct = int(rs.delay[q]) + eff + max(nq_plus_one - 1, 0) * max(eff, speed) + speed
        return math.pow(float(rs.belief_column("p_plus")[q]), ct)

    def _score_ct_row(self, rs: RoundState, cache: dict, ct_row: list) -> list:
        p_plus_up = self._gather_belief(rs, cache, "p_plus", "LW needs one")
        return [math.pow(base, ct) for base, ct in zip(p_plus_up, ct_row)]

    def _score_ct_one(self, rs: RoundState, cache: dict, ct: int, i: int) -> float:
        p_plus_up = self._gather_belief(rs, cache, "p_plus", "LW needs one")
        return math.pow(p_plus_up[i], ct)

    def _stacked_scorer(self, rs: RoundState, cache: dict, factor):
        p_plus_up = self._gather_belief(rs, cache, "p_plus", "LW needs one")
        pow_ = math.pow
        return lambda ct, i: pow_(p_plus_up[i], ct)

    # The LW score ends in ``pow``, which must stay scalar libm ``pow``
    # (the 1-ulp rule, :func:`~.base.pow_batch`) — so the stacked kernel
    # is the stamped-store path: vectorised reuse, scalar misses.
    score_batch_stacked = GreedyScheduler._stacked_rows_via_store
