"""The random heuristic family (paper Section 6.2).

``Random`` picks uniformly among UP processors.  ``Random1``–``Random4``
weight the pick by a reliability signal derived from the processor's Markov
belief:

1. **Random1 — Long time UP**: weight :math:`P^{(q)}_{u,u}` — favours
   processors that stay UP for long stretches.
2. **Random2 — Likely to work more**: weight :math:`P^{(q)}_+` (Lemma 1) —
   favours processors likely to be UP again before crashing.
3. **Random3 — Often UP**: weight :math:`\\pi^{(q)}_u` — favours processors
   with a large steady-state UP fraction.
4. **Random4 — Rarely DOWN**: weight :math:`1 - \\pi^{(q)}_d` — penalises
   processors that are often DOWN.

Each variant also exists with the weight divided by :math:`w_q`
(suffix ``w``: ``Random1w`` … ``Random4w``), folding speed into the
reliability signal.  The paper finds the ``w`` variants uniformly better
(Table 2), which our reproduction confirms.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..expectation import p_plus
from ..markov import MarkovAvailabilityModel
from .base import ProcessorView, RoundState, Scheduler, SchedulingContext

__all__ = [
    "RandomScheduler",
    "WeightedRandomScheduler",
    "make_random_variant",
    "RANDOM_WEIGHTS",
    "RANDOM_WEIGHT_COLUMNS",
]


def _require_belief(view: ProcessorView) -> MarkovAvailabilityModel:
    if view.belief is None:
        raise ValueError(
            f"processor {view.index} has no Markov belief; the weighted random "
            "heuristics need one (use Processor.from_markov or pass belief=...)"
        )
    return view.belief


#: The paper's four reliability weights, keyed by variant number.
RANDOM_WEIGHTS: Dict[int, Callable[[ProcessorView], float]] = {
    1: lambda view: _require_belief(view).p_uu,
    2: lambda view: p_plus(_require_belief(view)),
    3: lambda view: _require_belief(view).pi_u,
    4: lambda view: 1.0 - _require_belief(view).pi_d,
}

#: The same four weights as (column name, post-gather transform) pairs
#: against the :class:`RoundState` cached belief columns.
RANDOM_WEIGHT_COLUMNS: Dict[int, tuple] = {
    1: ("p_uu", False),
    2: ("p_plus", False),
    3: ("pi_u", False),
    4: ("pi_d", True),  # weight is 1 - pi_d
}

_MISSING_BELIEF = (
    "the weighted random heuristics need one (use Processor.from_markov or "
    "pass belief=...)"
)


class RandomScheduler(Scheduler):
    """``Random``: uniform choice among UP processors."""

    name = "random"

    def select(
        self,
        ctx: SchedulingContext,
        candidates: List[ProcessorView],
        nq: Dict[int, int],
        n_active: int,
    ) -> Optional[int]:
        if not candidates:
            return None
        pick = int(ctx.rng.integers(len(candidates)))
        return candidates[pick].index

    def place_array(
        self,
        rs: RoundState,
        n_tasks: int,
        allowed: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Array path: same per-task uniform draws over the UP index array."""
        cand = rs.up_candidates(allowed)
        if cand.size == 0:
            return [None] * n_tasks
        cand_list = [int(q) for q in cand]
        rng = rs.rng
        return [cand_list[int(rng.integers(len(cand_list)))] for _ in range(n_tasks)]


class WeightedRandomScheduler(Scheduler):
    """``RandomX``/``RandomXw``: reliability-weighted random choice.

    Args:
        weight_fn: maps a processor view to a non-negative weight.
        divide_by_speed: the ``w`` suffix — divide the weight by
            :math:`w_q` to also favour fast processors.
        name: registry name.
        variant: the paper's variant number (1–4) when ``weight_fn`` is one
            of :data:`RANDOM_WEIGHTS`; enables the vectorised array path
            (weights gathered from the round state's cached belief
            columns).  ``None`` — e.g. a custom weight function — routes
            :meth:`place_array` through the legacy-path shim instead.
    """

    def __init__(
        self,
        weight_fn: Callable[[ProcessorView], float],
        *,
        divide_by_speed: bool = False,
        name: str = "random-weighted",
        variant: Optional[int] = None,
    ):
        self._weight_fn = weight_fn
        self._divide_by_speed = divide_by_speed
        self.name = name
        if variant is not None and variant not in RANDOM_WEIGHT_COLUMNS:
            raise ValueError(f"variant must be 1..4 or None, got {variant}")
        self._variant = variant

    def weight(self, view: ProcessorView) -> float:
        """The (possibly speed-normalised) sampling weight for ``view``."""
        value = float(self._weight_fn(view))
        if value < 0:
            raise ValueError(
                f"weight function returned negative weight {value} for "
                f"processor {view.index}"
            )
        if self._divide_by_speed:
            value /= view.speed_w
        return value

    def select(
        self,
        ctx: SchedulingContext,
        candidates: List[ProcessorView],
        nq: Dict[int, int],
        n_active: int,
    ) -> Optional[int]:
        if not candidates:
            return None
        weights = np.array([self.weight(view) for view in candidates], dtype=float)
        total = weights.sum()
        if total <= 0.0:
            # All weights vanished (e.g. every candidate believed hopeless);
            # degrade gracefully to a uniform pick rather than stalling.
            pick = int(ctx.rng.integers(len(candidates)))
            return candidates[pick].index
        probabilities = weights / total
        pick = int(
            np.searchsorted(np.cumsum(probabilities), ctx.rng.random(), side="right")
        )
        pick = min(pick, len(candidates) - 1)  # guard against fp rounding
        return candidates[pick].index

    def weight_batch(self, rs: RoundState, cand: np.ndarray) -> np.ndarray:
        """Sampling weights for ``cand``, gathered from belief columns.

        The cached columns hold the same floats the per-view weight
        functions return, and the speed normalisation is the same IEEE
        division, so the weight vector is bit-identical to the one the
        legacy ``select`` builds per call.
        """
        column, complement = RANDOM_WEIGHT_COLUMNS[self._variant]
        weights = rs.gather_belief(column, cand, _MISSING_BELIEF)
        if complement:
            weights = 1.0 - weights
        if self._divide_by_speed:
            weights = weights / rs.speed_w[cand]
        return weights

    def place_array(
        self,
        rs: RoundState,
        n_tasks: int,
        allowed: Optional[Sequence[int]] = None,
    ) -> List[Optional[int]]:
        """Array path: one vectorised weight gather, then per-task draws.

        The legacy loop recomputes the (unchanging) weight vector on every
        placement; here the cumulative distribution is built once and each
        task costs a single inverse-CDF lookup — with the identical RNG
        draw sequence (one ``rng.random()`` per task, or ``rng.integers``
        in the all-weights-vanished fallback).
        """
        if self._variant is None:
            return self.place(rs.as_context(), n_tasks, allowed)
        cand = rs.up_candidates(allowed)
        if cand.size == 0:
            return [None] * n_tasks
        cand_list = [int(q) for q in cand]
        rng = rs.rng
        weights = self.weight_batch(rs, cand)
        total = weights.sum()
        if total <= 0.0:
            # All weights vanished: degrade to uniform, as the scalar path.
            return [
                cand_list[int(rng.integers(len(cand_list)))] for _ in range(n_tasks)
            ]
        cumulative = np.cumsum(weights / total)
        last = len(cand_list) - 1
        placements: List[Optional[int]] = []
        for _ in range(n_tasks):
            pick = int(np.searchsorted(cumulative, rng.random(), side="right"))
            placements.append(cand_list[min(pick, last)])
        return placements


def make_random_variant(variant: int, weighted_by_speed: bool) -> Scheduler:
    """Factory for ``Random1``..``Random4`` and their ``w`` variants.

    Args:
        variant: 1–4, selecting the paper's weight definition.
        weighted_by_speed: True for the ``w`` suffix.
    """
    if variant not in RANDOM_WEIGHTS:
        raise ValueError(f"variant must be 1..4, got {variant}")
    suffix = "w" if weighted_by_speed else ""
    return WeightedRandomScheduler(
        RANDOM_WEIGHTS[variant],
        divide_by_speed=weighted_by_speed,
        name=f"random{variant}{suffix}",
        variant=variant,
    )
