"""Clairvoyant baseline: greedy MCT with the *true* future availability.

An extension beyond the paper, used as a reference in dfb studies: this
scheduler is identical in structure to MCT, but instead of estimating a
processor's completion time under the stay-UP assumption, it *walks the
processor's actual availability trace* (the simulator's ground truth) and
computes the real slot at which the candidate task would finish — pinned
pipeline, RECLAIMED pauses and all.

Two caveats keep it a baseline rather than an optimum:

* like MCT it ignores network contention (the walk assumes the worker gets
  a channel whenever it wants one), so the Section 4 counterexample still
  defeats it;
* it cannot foresee DOWN-induced losses of *other* workers' tasks, nor
  re-plan around its own future crashes beyond what the walk reveals.

It is nevertheless a strictly better-informed MCT, which makes it a useful
"how much is Markov information worth?" yardstick next to EMCT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...types import ProcState
from .base import GreedyScheduler, ProcessorView, RoundState, SchedulingContext

__all__ = ["ClairvoyantScheduler"]


class ClairvoyantScheduler(GreedyScheduler):
    """Greedy minimum *true* completion time (oracle baseline).

    Args:
        platform: the simulation platform whose availability sources are
            the ground truth to peek at.  Must be the same object the
            simulator runs on.
        horizon: walk limit per evaluation; candidates that cannot finish
            within it score ``slot + horizon`` (effectively last).
    """

    maximize = False
    #: The trace walk is inherently per-candidate, but it consumes the
    #: RoundState directly (scalars + the lazily materialised pipeline
    #: view), so the array path's heap drives it without the shim.
    batch_scoring = True

    def __init__(self, platform, *, horizon: int = 100_000):
        self.name = "clairvoyant"
        self._platform = platform
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self._horizon = horizon

    def score(
        self,
        ctx: SchedulingContext,
        view: ProcessorView,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        return float(self._walk(ctx.slot, ctx.t_data, view, nq_plus_one))

    def score_batch(
        self,
        rs: RoundState,
        indices: np.ndarray,
        nq_plus_one: np.ndarray,
        contention_factor,
    ) -> np.ndarray:
        return np.array(
            [
                float(self._walk(rs.slot, rs.t_data, rs.view(q), n))
                for q, n in zip(
                    np.asarray(indices).tolist(), np.asarray(nq_plus_one).tolist()
                )
            ],
            dtype=np.float64,
        )

    def score_one(
        self, rs: RoundState, q: int, nq_plus_one: int, contention_factor: int
    ) -> float:
        return float(self._walk(rs.slot, rs.t_data, rs.view(q), nq_plus_one))

    def _true_completion_slot(
        self, ctx: SchedulingContext, view: ProcessorView, n_new: int
    ) -> int:
        """Legacy entry point kept for external callers; see :meth:`_walk`."""
        return self._walk(ctx.slot, ctx.t_data, view, n_new)

    def _walk(self, slot: int, t_data: int, view: ProcessorView, n_new: int) -> int:
        """Walk the true trace: finish pinned work, then ``n_new`` tasks.

        Mirrors the simulator's slot semantics (compute step before the
        transfer step; both only on UP slots; prefetch overlap).  The walk
        is slightly optimistic in one respect: it lets the channel run
        ahead of the one-task prefetch bound, so its completion estimate
        is a lower bound on the simulator's realised time — fine for a
        ranking criterion, and consistent with MCT's own optimism about
        contention.
        """
        source = self._platform[view.index].availability
        # Communication queue: program, pinned data, then new tasks' data.
        comm_queue = []
        if view.prog_remaining > 0:
            comm_queue.append(("prog", view.prog_remaining))
        compute_queue = []  # (compute_remaining, data_ready: bool)
        for data_rem, comp_rem, computing in view.pinned_pipeline:
            if data_rem > 0:
                comm_queue.append(("data", data_rem))
            compute_queue.append([comp_rem, data_rem == 0 or computing])
        for _ in range(n_new):
            if t_data > 0:
                comm_queue.append(("data", t_data))
                compute_queue.append([view.speed_w, False])
            else:
                compute_queue.append([view.speed_w, True])

        comm_idx = 0
        # Map each data transfer in the comm queue to its compute entry.
        data_targets = [
            i for i, (_rem, ready) in enumerate(compute_queue) if not ready
        ]
        data_seen = 0

        start = slot
        limit = start + self._horizon
        while slot < limit:
            pending_compute = any(rem > 0 for rem, _ready in compute_queue)
            if comm_idx >= len(comm_queue) and not pending_compute:
                return slot - 1  # finished at the previous slot
            if int(source.state_at(slot)) == int(ProcState.UP):
                # Compute step: first ready task with work left.
                for entry in compute_queue:
                    if entry[1] and entry[0] > 0:
                        entry[0] -= 1
                        break
                # Transfer step: one slot of service to the comm queue.
                if comm_idx < len(comm_queue):
                    kind, rem = comm_queue[comm_idx]
                    rem -= 1
                    if rem == 0:
                        if kind == "data":
                            compute_queue[data_targets[data_seen]][1] = True
                            data_seen += 1
                        comm_idx += 1
                    else:
                        comm_queue[comm_idx] = (kind, rem)
            slot += 1
        return limit

    def describe(self) -> str:
        """Provenance string for reports."""
        return f"clairvoyant MCT over platform of {len(self._platform)} processors"


def make_clairvoyant(platform) -> Optional[ClairvoyantScheduler]:
    """Factory matching the registry's calling convention."""
    return ClairvoyantScheduler(platform)
