"""Passive baseline (paper Section 6.1's first heuristic class).

The paper sketches three heuristic classes — passive, dynamic, proactive —
and evaluates only dynamic ones.  We implement the passive class as an
ablation baseline: it keeps whatever processor received a task until that
processor goes DOWN, never migrating planned work to better processors that
come UP later.

Concretely, :class:`PassiveScheduler` wraps an inner selection heuristic
(MCT by default).  The first time a task slot must be placed it consults
the inner heuristic; on later rounds it re-issues the *same* processor for
each remembered task position as long as that processor is UP or
RECLAIMED, and only falls back to the inner heuristic for positions whose
processor went DOWN.

Because the dynamic simulator re-collects unpinned tasks each round, the
memory is positional: remembered choices are replayed in order for the
remaining (unpinned) tasks of the current iteration.  That reproduces the
defining passive behaviour — "the current configuration is changed only
when one of the enrolled processors becomes DOWN" — without needing task
identity to survive the re-planning boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...types import ProcState
from .base import RoundState, Scheduler, SchedulingContext
from .mct import MctScheduler

__all__ = ["PassiveScheduler"]


class PassiveScheduler(Scheduler):
    """Sticky assignment baseline: re-plan only on DOWN.

    Args:
        inner: heuristic used for initial placements and DOWN replacements
            (default: plain MCT).
    """

    def __init__(self, inner: Optional[Scheduler] = None):
        self._inner = inner if inner is not None else MctScheduler()
        self.name = f"passive({self._inner.name})"
        self._memory: List[int] = []  # processor per remaining-task position
        self._iteration_key: Optional[int] = None

    def place(
        self,
        ctx: SchedulingContext,
        n_tasks: int,
        allowed=None,
    ) -> List[Optional[int]]:
        # Replica batches (restricted `allowed`) go straight to the inner
        # heuristic: replication is orthogonal to passivity.
        if allowed is not None:
            return self._inner.place(ctx, n_tasks, allowed)

        states: Dict[int, ProcState] = {
            view.index: view.state for view in ctx.processors
        }
        # Keep remembered choices whose processor is not DOWN.
        self._memory = [
            proc
            for proc in self._memory
            if states.get(proc, ProcState.DOWN) != ProcState.DOWN
        ]
        placements: List[Optional[int]] = []
        reused = 0
        for position in range(n_tasks):
            if position < len(self._memory):
                placements.append(self._memory[position])
                reused += 1
            else:
                placements.append(None)
        missing = n_tasks - reused
        if missing > 0:
            fresh = self._inner.place(ctx, missing, None)
            for offset, choice in enumerate(fresh):
                placements[reused + offset] = choice
                if choice is not None:
                    self._memory.append(choice)
        return placements

    def place_array(
        self,
        rs: RoundState,
        n_tasks: int,
        allowed=None,
    ) -> List[Optional[int]]:
        """Array path: the sticky-memory logic over the state column.

        Same structure as :meth:`place` — replica batches delegate to the
        inner heuristic, remembered choices survive unless their processor
        is DOWN (read straight from ``rs.state``), and only the missing
        tail consults the inner heuristic's array path.
        """
        if allowed is not None:
            return self._inner.place_array(rs, n_tasks, allowed)
        down = int(ProcState.DOWN)
        state = rs.state
        self._memory = [q for q in self._memory if int(state[q]) != down]
        placements: List[Optional[int]] = []
        reused = 0
        for position in range(n_tasks):
            if position < len(self._memory):
                placements.append(self._memory[position])
                reused += 1
            else:
                placements.append(None)
        missing = n_tasks - reused
        if missing > 0:
            fresh = self._inner.place_array(rs, missing, None)
            for offset, choice in enumerate(fresh):
                placements[reused + offset] = choice
                if choice is not None:
                    self._memory.append(choice)
        return placements

    def select(self, ctx, candidates, nq, n_active):  # pragma: no cover
        # place() is fully overridden; select() is never reached.
        raise NotImplementedError("PassiveScheduler overrides place()")

    def reset(self) -> None:
        """Forget all sticky choices (called between simulations)."""
        self._memory.clear()
