"""UD — "Unlikely Down" heuristics (paper Section 6.3.3).

UD estimates, via Theorem 2, the *wall-clock* number of slots
:math:`k = E^{(q)}(CT(P_q, n_q + 1))` the processor will need for its
workload — counting the slots it will spend RECLAIMED — and ranks
processors by the probability of not crashing during those ``k`` slots,
using the paper's rank-1 approximation of :math:`P_{UD}(k)`:

.. math::
   P^{(q)}_{UD}(k) \\approx (1 - P^{(q)}_{u,d})
   \\left(1 - \\frac{P^{(q)}_{u,d}\\pi^{(q)}_u + P^{(q)}_{r,d}\\pi^{(q)}_r}
   {\\pi^{(q)}_u + \\pi^{(q)}_r}\\right)^{k-2}

``UD*`` uses Equation 2's contention-corrected ``CT`` inside the
expectation.  An ``exact`` switch replaces the approximation by the
matrix-power form (with ``k`` rounded to the nearest integer) — an
extension used by the ablation benchmarks to quantify how much the paper's
approximation costs.
"""

from __future__ import annotations

from ..expectation import (
    expected_next_up,
    p_no_down_approx,
    p_no_down_exact,
)
from .base import (
    GreedyScheduler,
    ProcessorView,
    SchedulingContext,
    completion_time_estimate,
)

__all__ = ["UdScheduler"]


class UdScheduler(GreedyScheduler):
    """``UD`` / ``UD*``: maximise the probability of no crash before finish.

    Args:
        contention: enables Equation 2's correcting factor (the ``*``).
        exact: use the exact matrix-power :math:`P_{UD}` instead of the
            paper's rank-1 approximation (ablation extension; the registry
            names these ``ud-exact`` / ``ud*-exact``).
    """

    maximize = True

    def __init__(self, *, contention: bool = False, exact: bool = False):
        self.use_contention_factor = contention
        self.exact = exact
        base = "ud*" if contention else "ud"
        self.name = base + ("-exact" if exact else "")
        self._e_up_cache: dict[int, float] = {}

    def _expected_slots(self, view: ProcessorView, workload: float) -> float:
        if view.belief is None:
            raise ValueError(
                f"processor {view.index} has no Markov belief; UD needs one"
            )
        e_up = self._e_up_cache.get(view.index)
        if e_up is None:
            e_up = expected_next_up(view.belief)
            self._e_up_cache[view.index] = e_up
        return 1.0 + max(workload - 1.0, 0.0) * e_up

    def score(
        self,
        ctx: SchedulingContext,
        view: ProcessorView,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        ct = completion_time_estimate(
            view, nq_plus_one, ctx.t_data, contention_factor=contention_factor
        )
        k = self._expected_slots(view, ct)
        if self.exact:
            return p_no_down_exact(view.belief, max(1, round(k)))
        return p_no_down_approx(view.belief, max(1.0, k))
