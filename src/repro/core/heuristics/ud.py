"""UD — "Unlikely Down" heuristics (paper Section 6.3.3).

UD estimates, via Theorem 2, the *wall-clock* number of slots
:math:`k = E^{(q)}(CT(P_q, n_q + 1))` the processor will need for its
workload — counting the slots it will spend RECLAIMED — and ranks
processors by the probability of not crashing during those ``k`` slots,
using the paper's rank-1 approximation of :math:`P_{UD}(k)`:

.. math::
   P^{(q)}_{UD}(k) \\approx (1 - P^{(q)}_{u,d})
   \\left(1 - \\frac{P^{(q)}_{u,d}\\pi^{(q)}_u + P^{(q)}_{r,d}\\pi^{(q)}_r}
   {\\pi^{(q)}_u + \\pi^{(q)}_r}\\right)^{k-2}

``UD*`` uses Equation 2's contention-corrected ``CT`` inside the
expectation.  An ``exact`` switch replaces the approximation by the
matrix-power form (with ``k`` rounded to the nearest integer) — an
extension used by the ablation benchmarks to quantify how much the paper's
approximation costs.
"""

from __future__ import annotations

import math

import numpy as np

from ..expectation import (
    expected_next_up,
    p_no_down_approx,
    p_no_down_exact,
)
from .base import (
    GreedyScheduler,
    ProcessorView,
    RoundState,
    SchedulingContext,
    completion_time_batch,
    completion_time_estimate,
    pow_batch,
)

__all__ = ["UdScheduler"]


class UdScheduler(GreedyScheduler):
    """``UD`` / ``UD*``: maximise the probability of no crash before finish.

    Args:
        contention: enables Equation 2's correcting factor (the ``*``).
        exact: use the exact matrix-power :math:`P_{UD}` instead of the
            paper's rank-1 approximation (ablation extension; the registry
            names these ``ud-exact`` / ``ud*-exact``).  The matrix power
            does not vectorise over candidates, so the exact variants run
            through the legacy-path compatibility shim instead of batch
            scoring — same placements, scalar cost.
    """

    maximize = True
    _belief_needs = "UD needs one"

    def __init__(self, *, contention: bool = False, exact: bool = False):
        self.use_contention_factor = contention
        self.exact = exact
        self.batch_scoring = not exact
        base = "ud*" if contention else "ud"
        self.name = base + ("-exact" if exact else "")
        self._e_up_cache: dict[int, float] = {}

    def _expected_slots(self, view: ProcessorView, workload: float) -> float:
        if view.belief is None:
            raise ValueError(
                f"processor {view.index} has no Markov belief; UD needs one"
            )
        e_up = self._e_up_cache.get(view.index)
        if e_up is None:
            e_up = expected_next_up(view.belief)
            self._e_up_cache[view.index] = e_up
        return 1.0 + max(workload - 1.0, 0.0) * e_up

    def score(
        self,
        ctx: SchedulingContext,
        view: ProcessorView,
        nq_plus_one: int,
        contention_factor: int,
    ) -> float:
        ct = completion_time_estimate(
            view, nq_plus_one, ctx.t_data, contention_factor=contention_factor
        )
        k = self._expected_slots(view, ct)
        if self.exact:
            return p_no_down_exact(view.belief, max(1, round(k)))
        return p_no_down_approx(view.belief, max(1.0, k))

    def score_batch(
        self,
        rs: RoundState,
        indices: np.ndarray,
        nq_plus_one: np.ndarray,
        contention_factor,
    ) -> np.ndarray:
        ct = completion_time_batch(rs, indices, nq_plus_one, contention_factor)
        e_up = rs.gather_belief("e_up", indices, "UD needs one")
        # Theorem 2 expectation, then the paper's rank-1 P_UD — the exact
        # scalar expression sequence of p_no_down_approx, elementwise.
        k = np.maximum(1.0, 1.0 + np.maximum(ct - 1.0, 0.0) * e_up)
        base = rs.belief_column("ud_base")[indices]
        avg_down = rs.belief_column("ud_avg_down")[indices]
        exponent = np.maximum(k - 2.0, 0.0)
        survive = pow_batch(1.0 - avg_down, exponent)
        out = base * survive
        degenerate = rs.belief_column("ud_degenerate")[indices] > 0.0
        if degenerate.any():
            # Legacy special case for chains that are almost surely DOWN.
            out = np.where(degenerate, np.where(k > 2.0, 0.0, base), out)
        return out

    def score_one(
        self, rs: RoundState, q: int, nq_plus_one: int, contention_factor: int
    ) -> float:
        if rs.beliefs[q] is None:
            raise ValueError(f"processor {q} has no Markov belief; UD needs one")
        eff = contention_factor * rs.t_data
        speed = int(rs.speed_w[q])
        ct = int(rs.delay[q]) + eff + max(nq_plus_one - 1, 0) * max(eff, speed) + speed
        k = max(1.0, 1.0 + max(ct - 1.0, 0.0) * float(rs.belief_column("e_up")[q]))
        base = float(rs.belief_column("ud_base")[q])
        if rs.belief_column("ud_degenerate")[q] > 0.0:
            return 0.0 if k > 2.0 else base
        avg_down = float(rs.belief_column("ud_avg_down")[q])
        return base * math.pow(1.0 - avg_down, max(k - 2.0, 0.0))

    def _score_ct_row(self, rs: RoundState, cache: dict, ct_row: list) -> list:
        e_up = self._gather_belief(rs, cache, "e_up", "UD needs one")
        base = self._gather_belief(rs, cache, "ud_base", "UD needs one")
        avg_down = self._gather_belief(rs, cache, "ud_avg_down", "UD needs one")
        degenerate = self._gather_belief(rs, cache, "ud_degenerate", "UD needs one")
        row = []
        for ct, e, b, a, dg in zip(ct_row, e_up, base, avg_down, degenerate):
            k = max(1.0, 1.0 + max(ct - 1.0, 0.0) * e)
            if dg > 0.0:
                row.append(0.0 if k > 2.0 else b)
            else:
                row.append(b * math.pow(1.0 - a, max(k - 2.0, 0.0)))
        return row

    def _score_ct_one(self, rs: RoundState, cache: dict, ct: int, i: int) -> float:
        e = self._gather_belief(rs, cache, "e_up", "UD needs one")[i]
        b = self._gather_belief(rs, cache, "ud_base", "UD needs one")[i]
        k = max(1.0, 1.0 + max(ct - 1.0, 0.0) * e)
        if self._gather_belief(rs, cache, "ud_degenerate", "UD needs one")[i] > 0.0:
            return 0.0 if k > 2.0 else b
        a = self._gather_belief(rs, cache, "ud_avg_down", "UD needs one")[i]
        return b * math.pow(1.0 - a, max(k - 2.0, 0.0))

    def _stacked_scorer(self, rs: RoundState, cache: dict, factor):
        e_up = self._gather_belief(rs, cache, "e_up", "UD needs one")
        base = self._gather_belief(rs, cache, "ud_base", "UD needs one")
        avg_down = self._gather_belief(rs, cache, "ud_avg_down", "UD needs one")
        degenerate = self._gather_belief(rs, cache, "ud_degenerate", "UD needs one")
        pow_ = math.pow

        def scorer(ct, i):
            k = max(1.0, 1.0 + max(ct - 1.0, 0.0) * e_up[i])
            if degenerate[i] > 0.0:
                return 0.0 if k > 2.0 else base[i]
            return base[i] * pow_(1.0 - avg_down[i], max(k - 2.0, 0.0))

        return scorer

    # Like LW, the UD survival probability ends in ``pow`` and must stay
    # scalar libm ``pow`` per element — the stacked kernel is the
    # stamped-store path (vectorised reuse, scalar misses).  The exact
    # ablation variants never reach it: ``batch_scoring`` is False there,
    # which also keeps them off the stacked admission path.
    score_batch_stacked = GreedyScheduler._stacked_rows_via_store
