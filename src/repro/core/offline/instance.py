"""Offline problem instances (paper Section 4).

In the offline setting the availability vectors :math:`S_q` are known in
advance.  :class:`OfflineInstance` packages everything the Off-Line problem
needs: the trace matrix, per-processor speeds, transfer lengths, the
channel budget and the task count of the single iteration to complete.

The module also implements the paper's DOWN-state elimination (top of
Section 4): any instance can be rewritten into an equivalent one whose
traces only use UP and RECLAIMED, by splitting each processor at its first
DOWN slot into a "before" processor (RECLAIMED from the crash onwards) and
an "after" processor (RECLAIMED until the crash, then mirroring the rest of
the trace).  Repeating per DOWN occurrence multiplies the processor count
by at most the trace length — a polynomial blow-up, as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..._validation import require_nonnegative_int, require_positive_int
from ...types import ProcState, states_from_codes

__all__ = ["OfflineInstance", "eliminate_down_states"]


@dataclass(frozen=True)
class OfflineInstance:
    """One instance of the Off-Line problem.

    Attributes:
        traces: ``(p, N)`` uint8 matrix of :class:`~repro.types.ProcState`
            values — ``traces[q, t]`` is :math:`S_q[t]` (0-indexed slots).
        t_prog: program transfer length, slots.
        t_data: per-task data transfer length, slots.
        speeds: per-processor :math:`w_q` (length ``p``).
        ncom: master channel budget; ``None`` means unbounded
            (the polynomial case of Proposition 2).
        m: number of tasks in the iteration to complete.
    """

    traces: np.ndarray
    t_prog: int
    t_data: int
    speeds: tuple
    ncom: Optional[int]
    m: int

    def __post_init__(self) -> None:
        traces = np.asarray(self.traces, dtype=np.uint8)
        if traces.ndim != 2 or traces.shape[0] == 0 or traces.shape[1] == 0:
            raise ValueError(f"traces must be a non-empty 2-D matrix, got {traces.shape}")
        if traces.max(initial=0) > 2:
            raise ValueError("trace entries must be ProcState values (0, 1, 2)")
        traces.setflags(write=False)
        object.__setattr__(self, "traces", traces)
        require_nonnegative_int(self.t_prog, "t_prog")
        require_nonnegative_int(self.t_data, "t_data")
        speeds = tuple(int(w) for w in self.speeds)
        if len(speeds) != traces.shape[0]:
            raise ValueError(
                f"speeds has {len(speeds)} entries for {traces.shape[0]} processors"
            )
        for w in speeds:
            require_positive_int(w, "speed")
        object.__setattr__(self, "speeds", speeds)
        if self.ncom is not None:
            require_positive_int(self.ncom, "ncom")
        require_positive_int(self.m, "m")

    @property
    def p(self) -> int:
        """Number of processors."""
        return int(self.traces.shape[0])

    @property
    def horizon(self) -> int:
        """Trace length ``N`` in slots."""
        return int(self.traces.shape[1])

    @property
    def is_homogeneous(self) -> bool:
        """True when all speeds coincide (the NP-hardness setting)."""
        return len(set(self.speeds)) == 1

    def state(self, q: int, t: int) -> ProcState:
        """State of processor ``q`` at slot ``t`` (RECLAIMED past the end).

        Padding with RECLAIMED keeps the DOWN-elimination property: a
        rewritten instance never re-introduces DOWN.
        """
        if t < self.horizon:
            return ProcState(int(self.traces[q, t]))
        return ProcState.RECLAIMED

    @classmethod
    def from_codes(
        cls,
        rows: Sequence[str],
        *,
        t_prog: int,
        t_data: int,
        speeds: Union[int, Sequence[int]],
        ncom: Optional[int],
        m: int,
    ) -> "OfflineInstance":
        """Build from paper-style ``"uurd..."`` strings (one per processor).

        ``speeds`` may be a single int (homogeneous) or a per-processor
        sequence.
        """
        if not rows:
            raise ValueError("need at least one trace row")
        length = len(rows[0])
        if any(len(row) != length for row in rows):
            raise ValueError("all trace rows must have equal length")
        traces = np.vstack([states_from_codes(row) for row in rows])
        if isinstance(speeds, (int, np.integer)):
            speeds = [int(speeds)] * len(rows)
        return cls(
            traces=traces,
            t_prog=t_prog,
            t_data=t_data,
            speeds=tuple(speeds),
            ncom=ncom,
            m=m,
        )


def eliminate_down_states(instance: OfflineInstance) -> OfflineInstance:
    """Rewrite an instance to use only UP and RECLAIMED states (Section 4).

    Every processor with a DOWN slot at time ``t`` is replaced by two
    processors: one matching the original before ``t`` and RECLAIMED from
    ``t`` on, and one RECLAIMED through ``t`` and matching the original
    after.  The transformation is iterated until no DOWN slot remains.

    The rewritten instance admits exactly the same achievable schedules:
    work placed on the original before the crash maps to the "before"
    processor (whose program/data would have been lost at the crash anyway,
    and a permanently RECLAIMED processor likewise contributes nothing
    after ``t``), and work after the repair maps to the "after" processor,
    which must re-receive the program from scratch — just as the crashed
    processor would.

    Returns:
        An equivalent instance with no DOWN slots, at most ``p × N``
        processors, and the same ``m``/transfer/channel parameters.  Speeds
        are duplicated alongside their processors.
    """
    rows: List[np.ndarray] = [instance.traces[q].copy() for q in range(instance.p)]
    speeds: List[int] = list(instance.speeds)

    changed = True
    while changed:
        changed = False
        for q in range(len(rows)):
            down_slots = np.nonzero(rows[q] == int(ProcState.DOWN))[0]
            if down_slots.size == 0:
                continue
            t = int(down_slots[0])
            before = rows[q].copy()
            before[t:] = int(ProcState.RECLAIMED)
            after = rows[q].copy()
            after[: t + 1] = int(ProcState.RECLAIMED)
            rows[q] = before
            rows.append(after)
            speeds.append(speeds[q])
            changed = True
            break  # restart scan: `after` may still contain DOWN slots

    return OfflineInstance(
        traces=np.vstack(rows),
        t_prog=instance.t_prog,
        t_data=instance.t_data,
        speeds=tuple(speeds),
        ncom=instance.ncom,
        m=instance.m,
    )
