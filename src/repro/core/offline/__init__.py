"""Offline complexity toolkit (paper Section 4)."""

from .counterexample import analyze as analyze_counterexample
from .counterexample import extended_counterexample, paper_counterexample
from .exact import ExactSolverResult, exact_offline_makespan
from .instance import OfflineInstance, eliminate_down_states
from .mct import OfflineMctResult, offline_mct, pipeline_completion_slot
from .sat_reduction import (
    PAPER_FIGURE1_FORMULA,
    Sat3Instance,
    assignment_from_schedule,
    brute_force_sat,
    reduction_instance,
    render_gadget,
    schedule_from_assignment,
    verify_schedule,
)

__all__ = [
    "OfflineInstance",
    "eliminate_down_states",
    "offline_mct",
    "OfflineMctResult",
    "pipeline_completion_slot",
    "exact_offline_makespan",
    "ExactSolverResult",
    "Sat3Instance",
    "PAPER_FIGURE1_FORMULA",
    "reduction_instance",
    "schedule_from_assignment",
    "assignment_from_schedule",
    "verify_schedule",
    "render_gadget",
    "brute_force_sat",
    "paper_counterexample",
    "extended_counterexample",
    "analyze_counterexample",
]
