"""The Section 4 worked example: MCT is not optimal when ``ncom`` is finite.

The paper ends Section 4 with a two-processor instance showing that the
greedy of Proposition 2 loses its optimality as soon as the channel budget
binds: ``Tprog = Tdata = 2``, two tasks, two identical processors with
``w = 2``, ``ncom = 1``, and availability vectors

* :math:`S_1` = ``uuuuuurrr`` (UP for six slots, then reclaimed),
* :math:`S_2` = ``ruuuuuuuu`` (reclaimed one slot, then UP).

The optimal schedule *waits one slot* and then serves only :math:`P_2`:
program on slots 1–2, data for the first task on slots 3–4, compute on 5–6
overlapped with the second task's data, compute on 7–8 — both tasks done
in 9 slots.  MCT, greedy and contention-blind, starts :math:`P_1`
immediately and cannot finish by slot 9.

:func:`analyze` packages the full comparison: the exact solver confirms the
optimal makespan of 9, and the online simulator running the MCT heuristic
on the same (extended) traces shows the realised makespan of the greedy
choice.  The extension appends UP slots to :math:`S_1` after the reclaimed
window so MCT's run terminates with a finite (and strictly worse) makespan
instead of stalling forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exact import exact_offline_makespan
from .instance import OfflineInstance
from .mct import offline_mct

__all__ = [
    "paper_counterexample",
    "extended_counterexample",
    "CounterexampleAnalysis",
    "analyze",
]

#: The paper's availability vectors (9 slots, 1-indexed in the text).
S1_CODES = "uuuuuurrr"
S2_CODES = "ruuuuuuuu"


def paper_counterexample() -> OfflineInstance:
    """The exact instance from the end of Section 4."""
    return OfflineInstance.from_codes(
        [S1_CODES, S2_CODES],
        t_prog=2,
        t_data=2,
        speeds=2,
        ncom=1,
        m=2,
    )


def extended_counterexample(extra_up_slots: int = 6) -> OfflineInstance:
    """The same instance with :math:`P_1` returning UP after its preemption.

    Appending UP slots (to both processors) lets greedy schedules that
    stranded work on :math:`P_1` eventually finish, so their makespan can
    be *measured* rather than just declared infeasible.
    """
    if extra_up_slots < 0:
        raise ValueError("extra_up_slots must be >= 0")
    return OfflineInstance.from_codes(
        [S1_CODES + "u" * extra_up_slots, S2_CODES + "u" * extra_up_slots],
        t_prog=2,
        t_data=2,
        speeds=2,
        ncom=1,
        m=2,
    )


@dataclass(frozen=True)
class CounterexampleAnalysis:
    """Comparison of optimal vs MCT on the counterexample.

    Attributes:
        optimal_makespan: exact optimum on the paper's 9-slot instance
            (the paper states 9).
        mct_online_makespan: makespan of the online MCT heuristic on the
            extended traces (strictly greater than 9).
        mct_first_choice_processor: the processor offline MCT assigns the
            first task to (the paper argues it is :math:`P_1`, index 0).
    """

    optimal_makespan: int
    mct_online_makespan: int
    mct_first_choice_processor: int


def analyze(extra_up_slots: int = 6) -> CounterexampleAnalysis:
    """Run the complete counterexample comparison.

    Returns the exact optimum (expected: 9), the online-MCT realised
    makespan on the extended instance (expected: > 9), and offline MCT's
    first-task choice (expected: processor 0, i.e. :math:`P_1`).
    """
    # Exact optimum on the paper's instance.
    exact = exact_offline_makespan(paper_counterexample())
    if exact.makespan is None:  # pragma: no cover - the instance is feasible
        raise RuntimeError("exact solver failed on the paper counterexample")

    # Offline MCT's first decision: evaluate both single-task completion
    # times on the original traces; the greedy picks the smaller.
    instance = paper_counterexample()
    mct_result = offline_mct(instance)
    # The greedy assigns both tasks; its *first* choice is the processor
    # with the smaller single-task completion slot.
    from .mct import pipeline_completion_slot

    t1 = pipeline_completion_slot(instance, 0, 1)
    t2 = pipeline_completion_slot(instance, 1, 1)
    first_choice = 0 if (t1 is not None and (t2 is None or t1 <= t2)) else 1
    del mct_result  # the assignment itself is exercised in tests

    # Online MCT on the extended instance.
    from ...workload.application import IterativeApplication
    from ...sim.master import MasterSimulator, SimulatorOptions
    from ...sim.platform import Platform, Processor
    from ..heuristics.mct import MctScheduler

    extended = extended_counterexample(extra_up_slots)
    processors = [
        Processor.from_trace(q, extended.speeds[q], extended.traces[q])
        for q in range(extended.p)
    ]
    platform = Platform(processors, ncom=extended.ncom)
    app = IterativeApplication(
        tasks_per_iteration=extended.m,
        iterations=1,
        t_prog=extended.t_prog,
        t_data=extended.t_data,
    )
    sim = MasterSimulator(
        platform,
        app,
        MctScheduler(),
        options=SimulatorOptions(replication=False, audit=True),
    )
    report = sim.run(max_slots=extended.horizon + 1)
    mct_makespan = (
        report.makespan if report.makespan is not None else extended.horizon + 1
    )

    return CounterexampleAnalysis(
        optimal_makespan=exact.makespan,
        mct_online_makespan=mct_makespan,
        mct_first_choice_processor=first_choice,
    )
