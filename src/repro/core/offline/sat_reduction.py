"""The 3SAT reduction of Theorem 1, made executable (paper Section 4).

The paper proves Off-Line NP-hard by mapping a 3SAT instance with ``n``
variables and ``m`` clauses to an Off-Line instance with:

* ``m`` tasks, ``p = 2n`` processors, ``ncom = 1``;
* ``Tprog = m``, ``Tdata = 0``, ``w = 1``, horizon ``N = m (n + 1)``;
* availability (1-indexed in the paper; 0-indexed here): during the first
  ``m`` slots, processor :math:`P_{2i-1}` (the *positive* literal of
  variable *i*) is UP at slot *j* iff :math:`x_i \\in C_j`, and
  :math:`P_{2i}` (the *negative* literal) is UP iff
  :math:`\\bar{x}_i \\in C_j`; the remaining horizon is split into ``n``
  blocks of ``m`` slots, block *i* having exactly :math:`P_{2i-1}` and
  :math:`P_{2i}` UP and everyone else RECLAIMED.

A truth assignment picks one literal-processor per variable; the channel
budget of 1 means at most one processor can absorb program bytes per slot,
and the construction makes "absorbing a program byte at slot *j*" possible
exactly when the chosen literal satisfies clause *j*.  The chosen
processors then finish their program in their block and compute one task
per remaining slot — all ``m`` tasks complete within ``N`` iff every
clause was satisfied.

This module constructs the instance (:func:`reduction_instance`), converts
certificates in both directions (:func:`schedule_from_assignment`,
:func:`assignment_from_schedule`), verifies schedules against the model
(:func:`verify_schedule`), and renders the Figure 1 gadget
(:func:`render_gadget`, reproduced for the exact formula in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...types import ProcState
from .instance import OfflineInstance

__all__ = [
    "Sat3Instance",
    "reduction_instance",
    "schedule_from_assignment",
    "assignment_from_schedule",
    "verify_schedule",
    "render_gadget",
    "PAPER_FIGURE1_FORMULA",
    "brute_force_sat",
]

Literal = int  # +k means x_k, -k means NOT x_k (1-based variable index)
Clause = Tuple[Literal, ...]


@dataclass(frozen=True)
class Sat3Instance:
    """A 3SAT instance: clauses over variables ``1..n_vars``.

    Literals are non-zero ints: ``+k`` for :math:`x_k`, ``-k`` for
    :math:`\\bar{x}_k`.
    """

    n_vars: int
    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        if self.n_vars <= 0:
            raise ValueError("n_vars must be positive")
        if not self.clauses:
            raise ValueError("need at least one clause")
        mentioned = set()
        for clause in self.clauses:
            if not 1 <= len(clause) <= 3:
                raise ValueError(f"clauses must have 1..3 literals, got {clause}")
            for lit in clause:
                if lit == 0 or abs(lit) > self.n_vars:
                    raise ValueError(f"literal {lit} out of range for n={self.n_vars}")
                mentioned.add(abs(lit))
        if mentioned != set(range(1, self.n_vars + 1)):
            raise ValueError(
                "every variable must appear in at least one clause "
                "(the paper's reduction assumes this)"
            )

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        """True when ``assignment`` (0-indexed by variable-1) satisfies all."""
        if len(assignment) != self.n_vars:
            raise ValueError("assignment length must equal n_vars")
        for clause in self.clauses:
            if not any(
                assignment[abs(lit) - 1] == (lit > 0) for lit in clause
            ):
                return False
        return True


#: The exact formula of the paper's Figure 1:
#: (x̄1∨x3∨x4)(x1∨x̄2∨x̄3)(x2∨x3∨x̄4)(x1∨x2∨x4)(x̄1∨x̄2∨x̄4)(x̄2∨x3∨x4).
PAPER_FIGURE1_FORMULA = Sat3Instance(
    n_vars=4,
    clauses=(
        (-1, 3, 4),
        (1, -2, -3),
        (2, 3, -4),
        (1, 2, 4),
        (-1, -2, -4),
        (-2, 3, 4),
    ),
)


def _literal_processor(variable: int, positive: bool) -> int:
    """0-indexed processor for a literal: ``P_{2i-1}`` / ``P_{2i}`` (paper).

    Variable ``i`` (1-based) maps to processors ``2i-2`` (positive literal)
    and ``2i-1`` (negative literal) in 0-indexed form.
    """
    return 2 * (variable - 1) + (0 if positive else 1)


def reduction_instance(sat: Sat3Instance) -> OfflineInstance:
    """Theorem 1: build the Off-Line instance for a 3SAT instance."""
    n, m = sat.n_vars, sat.n_clauses
    p = 2 * n
    horizon = m * (n + 1)
    traces = np.full((p, horizon), int(ProcState.RECLAIMED), dtype=np.uint8)

    # Clause window: slots 0..m-1 (paper's 1..m).
    for j, clause in enumerate(sat.clauses):
        for lit in clause:
            q = _literal_processor(abs(lit), lit > 0)
            traces[q, j] = int(ProcState.UP)

    # Variable blocks: block i (1-based) covers slots m*i .. m*(i+1)-1.
    for i in range(1, n + 1):
        for q in (_literal_processor(i, True), _literal_processor(i, False)):
            traces[q, m * i : m * (i + 1)] = int(ProcState.UP)

    return OfflineInstance(
        traces=traces,
        t_prog=m,
        t_data=0,
        speeds=tuple([1] * p),
        ncom=1,
        m=m,
    )


# --------------------------------------------------------------------------- #
# Schedules for the reduction instance.
#
# Because Tdata = 0 and w = 1, a schedule is fully described by the program
# service: which processor receives one program slot at each time slot.
# Computation is then automatic (an UP processor holding the full program
# computes one task per slot while tasks remain).
# --------------------------------------------------------------------------- #
Schedule = List[Optional[int]]  # per slot, processor receiving program service


def verify_schedule(instance: OfflineInstance, schedule: Schedule) -> Optional[int]:
    """Check a program-service schedule against the model; return makespan.

    The schedule names at most one processor per slot (``ncom = 1``).  The
    verifier enforces: service only to UP processors, at most ``Tprog``
    slots of service accumulate per processor, and computation follows the
    pipeline semantics (one task per UP slot after the program completed on
    an earlier slot).  Only valid for ``Tdata = 0`` instances.

    Returns:
        The completion slot count (makespan) if all ``m`` tasks finish
        within the horizon, else ``None``.

    Raises:
        ValueError: if the schedule violates the model.
    """
    if instance.t_data != 0:
        raise ValueError("verify_schedule only supports Tdata = 0 instances")
    if len(schedule) > instance.horizon:
        raise ValueError("schedule longer than the instance horizon")
    prog = [0] * instance.p
    comp_rem = [0] * instance.p
    done = 0
    started = 0

    for slot in range(instance.horizon):
        # Compute phase (program must have completed on an earlier slot).
        for q in range(instance.p):
            if instance.state(q, slot) != ProcState.UP:
                continue
            if comp_rem[q] > 0:
                comp_rem[q] -= 1
                if comp_rem[q] == 0:
                    done += 1
                    if done >= instance.m:
                        return slot + 1
            elif prog[q] >= instance.t_prog and started < instance.m:
                started += 1
                comp_rem[q] = instance.speeds[q] - 1
                if comp_rem[q] == 0:
                    done += 1
                    if done >= instance.m:
                        return slot + 1
        # Transfer phase.
        q = schedule[slot] if slot < len(schedule) else None
        if q is not None:
            if not 0 <= q < instance.p:
                raise ValueError(f"slot {slot}: unknown processor {q}")
            if instance.state(q, slot) != ProcState.UP:
                raise ValueError(
                    f"slot {slot}: processor {q} served while not UP"
                )
            if prog[q] >= instance.t_prog:
                raise ValueError(
                    f"slot {slot}: processor {q} served beyond Tprog"
                )
            prog[q] += 1
    return None


def schedule_from_assignment(
    sat: Sat3Instance, assignment: Sequence[bool]
) -> Schedule:
    """Forward certificate map: satisfying assignment → valid schedule.

    Follows the proof of Theorem 1: at clause slot *j*, serve the processor
    of one (arbitrarily chosen) true literal of :math:`C_j`; in block *i*,
    serve the chosen processor of variable *i* until its program completes,
    after which it computes.

    Raises:
        ValueError: if ``assignment`` does not satisfy the formula (the map
            is only defined on yes-certificates).
    """
    if not sat.satisfied_by(assignment):
        raise ValueError("assignment does not satisfy the formula")
    n, m = sat.n_vars, sat.n_clauses
    chosen = [
        _literal_processor(i + 1, assignment[i]) for i in range(n)
    ]  # processor p(i) per variable, per the proof
    schedule: Schedule = [None] * (m * (n + 1))

    # Clause window: one true literal's processor per clause slot.
    for j, clause in enumerate(sat.clauses):
        true_lits = [
            lit for lit in clause if assignment[abs(lit) - 1] == (lit > 0)
        ]
        lit = true_lits[0]
        schedule[j] = _literal_processor(abs(lit), lit > 0)

    # Blocks: finish each chosen processor's program.
    served = [0] * (2 * n)
    for j in range(m):
        if schedule[j] is not None:
            served[schedule[j]] += 1
    for i in range(1, n + 1):
        q = chosen[i - 1]
        remaining = m - served[q]
        for offset in range(remaining):
            schedule[m * i + offset] = q
    return schedule


def assignment_from_schedule(
    sat: Sat3Instance, schedule: Schedule
) -> List[bool]:
    """Backward certificate map: valid schedule → satisfying assignment.

    Follows the converse direction of the proof: for each variable *i*,
    set :math:`x_i` true iff :math:`P_{2i-1}` (its positive-literal
    processor) computes at least one task under the schedule; variables
    whose processors compute nothing default to False (the proof's
    ``p(i) = 2i`` convention).

    The resulting assignment is guaranteed to satisfy the formula whenever
    the schedule completes all ``m`` tasks within the horizon (checked).
    """
    instance = reduction_instance(sat)
    if verify_schedule(instance, schedule) is None:
        raise ValueError("schedule does not complete all tasks within the horizon")

    # Replay to find which processors compute tasks.
    prog = [0] * instance.p
    comp_count = [0] * instance.p
    started = 0
    for slot in range(instance.horizon):
        for q in range(instance.p):
            if instance.state(q, slot) != ProcState.UP:
                continue
            if prog[q] >= instance.t_prog and started < instance.m:
                started += 1
                comp_count[q] += 1
        q = schedule[slot] if slot < len(schedule) else None
        if q is not None:
            prog[q] += 1

    assignment = []
    for i in range(1, sat.n_vars + 1):
        positive = _literal_processor(i, True)
        assignment.append(comp_count[positive] > 0)
    return assignment


def brute_force_sat(sat: Sat3Instance) -> Optional[List[bool]]:
    """Exhaustive satisfiability check (for tests; ``n_vars <= ~20``)."""
    for mask in range(1 << sat.n_vars):
        assignment = [(mask >> i) & 1 == 1 for i in range(sat.n_vars)]
        if sat.satisfied_by(assignment):
            return assignment
    return None


def render_gadget(sat: Sat3Instance) -> str:
    """ASCII rendering of the Figure 1 availability gadget.

    Rows are literal processors (x1, x̄1, x2, ...), columns the clause
    window C1..Cm; ``#`` marks UP slots, ``.`` RECLAIMED — visually
    matching the paper's Figure 1 (which shows only the clause window).
    """
    instance = reduction_instance(sat)
    m = sat.n_clauses
    header = "      " + " ".join(f"C{j + 1}" for j in range(m))
    lines = [header]
    for i in range(1, sat.n_vars + 1):
        for positive, label in ((True, f"x{i}  "), (False, f"~x{i} ")):
            q = _literal_processor(i, positive)
            cells = " ".join(
                " #" if instance.state(q, j) == ProcState.UP else " ."
                for j in range(m)
            )
            lines.append(f"{label:>5} {cells}")
    return "\n".join(lines)
