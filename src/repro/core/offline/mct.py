"""Offline MCT — the polynomial algorithm for ``ncom = ∞`` (Proposition 2).

With an unbounded channel budget the master can serve every worker
simultaneously, so processors are fully independent: send the program to
everyone as early as possible, then assign tasks one by one, each to the
processor that would finish it soonest given the tasks already on its
queue.  The paper proves this Minimum-Completion-Time greedy is *optimal*
in that setting (and exhibits a counterexample for ``ncom = 1``; see
:mod:`repro.core.offline.counterexample`).

The per-processor completion times are computed by
:func:`pipeline_completion_slot`, an exact walk of the worker pipeline over
the known availability trace (same semantics as the online simulator:
program → per-task data → compute, transfer and compute both advance only
on UP slots, data for the next task overlaps the current computation, a
computation starts the slot after its data completes, prefetch bounded to
one task ahead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...types import ProcState
from .instance import OfflineInstance

__all__ = ["pipeline_completion_slot", "offline_mct", "OfflineMctResult"]


def pipeline_completion_slot(
    instance: OfflineInstance,
    q: int,
    n_tasks: int,
    *,
    max_slots: Optional[int] = None,
) -> Optional[int]:
    """Slot at which processor ``q`` completes ``n_tasks`` tasks, alone.

    Assumes no channel contention (each worker has its own dedicated
    bandwidth ``bw``, which is exactly the ``ncom = ∞`` regime).  The walk
    mirrors the online simulator's slot order: compute first (so a task
    whose data finished at slot *t* starts computing at *t + 1*), then one
    slot of transfer service if the worker is UP.  A DOWN slot applies the
    crash semantics: the program and any partially transferred or computed
    task are lost, and the in-flight tasks return to the (per-processor)
    pool.  (The paper's Proposition 2 setting eliminates DOWN states first
    — Section 4's rewriting — but the walker handles them so it can also
    cross-validate the online simulator on crashy traces.)

    Args:
        instance: the offline instance (provides the trace and timings).
        q: processor index.
        n_tasks: number of tasks to complete (``0`` returns ``-1``,
            meaning "already done before slot 0").
        max_slots: walk limit; defaults to the instance horizon (states
            beyond the trace are RECLAIMED, so nothing can complete there).

    Returns:
        The 0-indexed slot of the final task's completion, or ``None`` if
        ``n_tasks`` cannot complete within the limit.
    """
    if n_tasks == 0:
        return -1
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    limit = max_slots if max_slots is not None else instance.horizon
    w = instance.speeds[q]
    t_prog, t_data = instance.t_prog, instance.t_data

    prog_rem = t_prog
    buffered: Optional[int] = None  # remaining data slots of the prefetched task
    comp_rem = 0
    started = 0  # tasks whose data transfer has begun (or compute, if t_data=0)
    done = 0

    for slot in range(limit):
        state = instance.state(q, slot)
        if state == ProcState.DOWN:
            # Crash: program and in-flight tasks lost; each `started` task
            # was counted once (at data-open, or at compute-start when
            # t_data == 0), so each lost task restores one pool slot.
            prog_rem = t_prog
            if buffered is not None:
                buffered = None
                started -= 1
            if comp_rem > 0:
                comp_rem = 0
                started -= 1
            continue
        if state != ProcState.UP:
            continue
        # Compute step.
        if comp_rem > 0:
            comp_rem -= 1
            if comp_rem == 0:
                done += 1
                if done >= n_tasks:
                    return slot
        elif prog_rem == 0:
            if t_data == 0:
                if started < n_tasks:
                    started += 1
                    comp_rem = w - 1
                    if comp_rem == 0:
                        done += 1
                        if done >= n_tasks:
                            return slot
            elif buffered == 0:
                buffered = None
                comp_rem = w - 1
                if comp_rem == 0:
                    done += 1
                    if done >= n_tasks:
                        return slot
        # Transfer step (one slot of service; worker-side bandwidth).
        if prog_rem > 0:
            prog_rem -= 1
        elif t_data > 0:
            if buffered is not None and buffered > 0:
                buffered -= 1
            elif buffered is None and started < n_tasks:
                started += 1
                buffered = t_data - 1
    return None


@dataclass(frozen=True)
class OfflineMctResult:
    """Outcome of the offline MCT greedy.

    Attributes:
        makespan: slots to complete all ``m`` tasks (``None`` when the
            instance cannot finish within its horizon even greedily).
        assignment: tasks per processor, length ``p``.
        completion_slots: per-processor completion slot of its last task
            (``-1`` for processors with no tasks).
    """

    makespan: Optional[int]
    assignment: tuple
    completion_slots: tuple


def offline_mct(instance: OfflineInstance) -> OfflineMctResult:
    """Run the MCT greedy of Proposition 2 on an offline instance.

    Tasks are assigned one by one; each goes to the processor that would
    complete its queue (including the new task) soonest, ties broken toward
    the lower processor index.  Processors that cannot complete the
    augmented queue within the horizon are skipped; if no processor can
    take a task, the instance is infeasible for this greedy and
    ``makespan`` is ``None``.

    Note this ignores ``instance.ncom`` by design: MCT is only optimal —
    and only well-defined as stated in the paper — without contention.
    Comparing its decisions against the exact solver *with* contention is
    precisely the paper's counterexample.
    """
    p = instance.p
    counts: List[int] = [0] * p

    for _task in range(instance.m):
        best_q: Optional[int] = None
        best_slot: Optional[int] = None
        for q in range(p):
            finish = pipeline_completion_slot(instance, q, counts[q] + 1)
            if finish is None:
                continue
            if best_slot is None or finish < best_slot:
                best_q, best_slot = q, finish
        if best_q is None:
            return OfflineMctResult(
                makespan=None,
                assignment=tuple(counts),
                completion_slots=tuple(
                    pipeline_completion_slot(instance, q, counts[q]) or -1
                    for q in range(p)
                ),
            )
        counts[best_q] += 1

    completion = []
    for q in range(p):
        slot = pipeline_completion_slot(instance, q, counts[q])
        completion.append(slot if slot is not None else -1)
    makespan = max(completion) + 1 if completion else 0
    return OfflineMctResult(
        makespan=makespan,
        assignment=tuple(counts),
        completion_slots=tuple(completion),
    )
