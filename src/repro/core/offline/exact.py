"""Exact offline solver (small instances) — breadth-first over slot states.

The Off-Line problem is NP-hard (Theorem 1), so no polynomial exact solver
exists unless P = NP.  For *small* instances, however, the optimal makespan
can be found by breadth-first search over the joint pipeline state, one
slot at a time: BFS layers correspond to slots, so the first layer in which
any state has all ``m`` tasks done yields the optimal makespan.

The state of one processor is ``(prog_rem, buffered, comp_rem)``:

* ``prog_rem`` — program transfer slots still needed;
* ``buffered`` — data slots still needed by the prefetched task
  (``None`` = no task buffered, ``0`` = buffered and complete);
* ``comp_rem`` — compute slots remaining on the current task
  (``0`` = idle).

The global state adds ``pool`` (tasks not yet begun anywhere) and ``done``.
Each slot the solver enumerates every subset of at most ``ncom``
transfer-eligible UP processors — including *proper* subsets, because
deliberately idling the channel can be optimal (the paper's Section 4
worked example waits one slot before serving the better processor, and
this solver reproduces that makespan of 9).

Semantics match the online simulator and
:func:`~repro.core.offline.mct.pipeline_completion_slot`: compute advances
before transfers within a slot, so a computation starts the slot after its
data completed; transfers and compute only progress on UP slots; prefetch
is bounded to one task beyond the one computing.

Optional ``allow_abandon`` transitions return a buffered or in-compute task
to the pool (losing its data/progress) — the "un-enrol" freedom of the
model.  They enlarge the search space and are off by default; no test
instance in this repository needs them to reach the optimum, but the switch
lets users check that for their own instances.

Complexity is exponential in ``p`` and the pipeline depths — intended for
``p <= 4``, ``m <= 4``-scale instances (tests, the counterexample, random
cross-validation against MCT under ``ncom = ∞``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ...types import ProcState
from .instance import OfflineInstance

__all__ = ["exact_offline_makespan", "ExactSolverResult"]

ProcPipeline = Tuple[int, Optional[int], int]  # (prog_rem, buffered, comp_rem)
GlobalState = Tuple[int, int, Tuple[ProcPipeline, ...]]  # (pool, done, procs)


@dataclass(frozen=True)
class ExactSolverResult:
    """Outcome of the exact search.

    Attributes:
        makespan: optimal number of slots to complete ``m`` tasks, or
            ``None`` if infeasible within the explored horizon.
        explored_states: total states expanded (effort indicator).
        horizon: the slot limit that was searched.
    """

    makespan: Optional[int]
    explored_states: int
    horizon: int


def _compute_phase(
    pool: int, done: int, procs: List[ProcPipeline], up: List[bool], speeds, t_data: int
) -> Tuple[int, int, List[ProcPipeline]]:
    """Advance every processor's compute timeline by one slot."""
    new_procs: List[ProcPipeline] = []
    for q, (prog_rem, buffered, comp_rem) in enumerate(procs):
        if not up[q]:
            new_procs.append((prog_rem, buffered, comp_rem))
            continue
        if comp_rem > 0:
            comp_rem -= 1
            if comp_rem == 0:
                done += 1
        elif prog_rem == 0:
            if t_data == 0:
                if pool > 0:
                    pool -= 1
                    comp_rem = speeds[q] - 1
                    if comp_rem == 0:
                        done += 1
            elif buffered == 0:
                buffered = None
                comp_rem = speeds[q] - 1
                if comp_rem == 0:
                    done += 1
        new_procs.append((prog_rem, buffered, comp_rem))
    return pool, done, new_procs


def _transfer_eligible(
    pool: int, procs: List[ProcPipeline], up: List[bool], t_data: int
) -> List[int]:
    """Processors that could usefully receive one slot of service now."""
    eligible = []
    for q, (prog_rem, buffered, _comp) in enumerate(procs):
        if not up[q]:
            continue
        if prog_rem > 0:
            eligible.append(q)
        elif t_data > 0:
            if buffered is not None and buffered > 0:
                eligible.append(q)
            elif buffered is None and pool > 0:
                eligible.append(q)
    return eligible


def _apply_transfers(
    pool: int, procs: List[ProcPipeline], served: Iterable[int], t_data: int
) -> Tuple[int, Tuple[ProcPipeline, ...]]:
    new_procs = list(procs)
    for q in served:
        prog_rem, buffered, comp_rem = new_procs[q]
        if prog_rem > 0:
            prog_rem -= 1
        elif buffered is not None and buffered > 0:
            buffered -= 1
        else:  # open a new data transfer
            pool -= 1
            buffered = t_data - 1
        new_procs[q] = (prog_rem, buffered, comp_rem)
    return pool, tuple(new_procs)


def _abandon_variants(
    state: GlobalState,
) -> List[GlobalState]:
    """States reachable by returning buffered / computing tasks to the pool."""
    pool, done, procs = state
    variants: List[GlobalState] = [state]
    for q, (prog_rem, buffered, comp_rem) in enumerate(procs):
        extended: List[GlobalState] = []
        for v_pool, v_done, v_procs in variants:
            extended.append((v_pool, v_done, v_procs))
            vp = list(v_procs)
            if vp[q][1] is not None:
                vp2 = list(vp)
                vp2[q] = (vp[q][0], None, vp[q][2])
                extended.append((v_pool + 1, v_done, tuple(vp2)))
            if vp[q][2] > 0:
                vp3 = list(vp)
                vp3[q] = (vp[q][0], vp[q][1], 0)
                extended.append((v_pool + 1, v_done, tuple(vp3)))
            if vp[q][1] is not None and vp[q][2] > 0:
                vp4 = list(vp)
                vp4[q] = (vp[q][0], None, 0)
                extended.append((v_pool + 2, v_done, tuple(vp4)))
        variants = extended
    return list(dict.fromkeys(variants))


def exact_offline_makespan(
    instance: OfflineInstance,
    *,
    max_slots: Optional[int] = None,
    allow_abandon: bool = False,
    state_limit: int = 2_000_000,
) -> ExactSolverResult:
    """Optimal makespan of an offline instance by exhaustive slot BFS.

    Args:
        instance: the instance to solve (DOWN states are handled: a DOWN
            slot freezes the processor *and* wipes its pipeline, matching
            the online model).
        max_slots: horizon to search (default: the trace length — states
            beyond it are RECLAIMED and nothing further can complete).
        allow_abandon: also branch on returning started tasks to the pool.
        state_limit: abort with :class:`MemoryError` beyond this many
            states in one BFS layer (guard against oversized instances).

    Returns:
        :class:`ExactSolverResult` with the optimal makespan (slots), or
        ``None`` if the instance cannot finish within the horizon.
    """
    horizon = max_slots if max_slots is not None else instance.horizon
    t_data = instance.t_data
    speeds = instance.speeds
    p = instance.p
    ncom = instance.ncom if instance.ncom is not None else p

    initial: GlobalState = (
        instance.m,
        0,
        tuple((instance.t_prog, None, 0) for _ in range(p)),
    )
    frontier: FrozenSet[GlobalState] = frozenset([initial])
    explored = 0

    for slot in range(horizon):
        up = [instance.state(q, slot) == ProcState.UP for q in range(p)]
        down = [instance.state(q, slot) == ProcState.DOWN for q in range(p)]
        next_frontier: set[GlobalState] = set()
        for state in frontier:
            explored += 1
            pool, done, procs = state
            # DOWN wipes pipelines; originals return to the pool.
            if any(down):
                procs = list(procs)
                for q in range(p):
                    if not down[q]:
                        continue
                    prog_rem, buffered, comp_rem = procs[q]
                    if buffered is not None:
                        pool += 1
                    if comp_rem > 0:
                        pool += 1
                    procs[q] = (instance.t_prog, None, 0)
                procs = tuple(procs)

            candidates = (
                _abandon_variants((pool, done, procs))
                if allow_abandon
                else [(pool, done, procs)]
            )
            for c_pool, c_done, c_procs in candidates:
                n_pool, n_done, n_procs = _compute_phase(
                    c_pool, c_done, list(c_procs), up, speeds, t_data
                )
                if n_done >= instance.m:
                    return ExactSolverResult(
                        makespan=slot + 1, explored_states=explored, horizon=horizon
                    )
                eligible = _transfer_eligible(n_pool, n_procs, up, t_data)
                limit = min(ncom, len(eligible))
                for size in range(limit + 1):
                    for served in combinations(eligible, size):
                        # Guard: opening several new data transfers must not
                        # overdraw the pool.
                        new_opens = sum(
                            1
                            for q in served
                            if n_procs[q][0] == 0
                            and (n_procs[q][1] is None)
                        )
                        if new_opens > n_pool:
                            continue
                        s_pool, s_procs = _apply_transfers(
                            n_pool, n_procs, served, t_data
                        )
                        next_frontier.add((s_pool, n_done, s_procs))
        if len(next_frontier) > state_limit:
            raise MemoryError(
                f"exact solver frontier exceeded {state_limit} states at slot "
                f"{slot}; instance too large for exhaustive search"
            )
        if not next_frontier:
            break
        frontier = frozenset(next_frontier)

    return ExactSolverResult(makespan=None, explored_states=explored, horizon=horizon)
