"""Core algorithms: availability analytics, heuristics, offline toolkit."""

from .expectation import (
    expected_completion_slots,
    expected_next_up,
    p_no_down_approx,
    p_no_down_exact,
    p_plus,
    success_probability,
)
from .markov import MarkovAvailabilityModel, paper_random_model

__all__ = [
    "MarkovAvailabilityModel",
    "paper_random_model",
    "p_plus",
    "expected_next_up",
    "expected_completion_slots",
    "success_probability",
    "p_no_down_exact",
    "p_no_down_approx",
]
