"""The 3-state Markov availability model (paper Section 5).

Each volatile processor :math:`P_q` is described by a recurrent aperiodic
Markov chain over the states UP, RECLAIMED, DOWN, defined by the nine
transition probabilities :math:`P^{(q)}_{i,j}` with
:math:`i, j \\in \\{u, r, d\\}`:  :math:`P^{(q)}_{i,j}` is the probability
that the processor moves from state *i* at slot *t* to state *j* at slot
*t+1* (time-homogeneous).  The chain has a limit distribution
:math:`(\\pi_u, \\pi_r, \\pi_d)` which several heuristics use as a
reliability signal (``Random3``, ``Random4``, ``UD``).

This module provides:

* :class:`MarkovAvailabilityModel` — validated transition matrix, stationary
  distribution, single-step and whole-trace sampling;
* :func:`paper_random_model` — the exact random instantiation used by the
  paper's evaluation (Section 7): each self-loop probability
  :math:`P_{x,x}` drawn uniformly in ``[0.90, 0.99]`` and the two outgoing
  probabilities set to :math:`(1 - P_{x,x})/2` each.

Trace sampling is vectorised over time via inverse-CDF lookups on a
pre-computed cumulative transition matrix, so generating the long traces
needed by the experiment harness stays cheap in pure Python/numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .._validation import require_positive_int
from ..types import ProcState

__all__ = [
    "MarkovAvailabilityModel",
    "paper_random_model",
    "stationary_distribution",
]

_STATES = (ProcState.UP, ProcState.RECLAIMED, ProcState.DOWN)


def stationary_distribution(matrix: np.ndarray) -> np.ndarray:
    """The stationary distribution of a row-stochastic matrix.

    Solves :math:`\\pi M = \\pi` with :math:`\\sum_i \\pi_i = 1` via the
    standard replace-one-equation linear system.  For the recurrent aperiodic
    chains the paper assumes, the solution is unique and strictly positive.

    Args:
        matrix: an ``(n, n)`` row-stochastic matrix.

    Returns:
        A length-``n`` probability vector.

    Raises:
        ValueError: if the matrix is not square/stochastic or the chain is
            reducible in a way that leaves the system singular.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"transition matrix must be square, got shape {matrix.shape}")
    n = matrix.shape[0]
    if np.any(matrix < -1e-12) or np.any(matrix > 1 + 1e-12):
        raise ValueError("transition probabilities must lie in [0, 1]")
    row_sums = matrix.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-9):
        raise ValueError(f"transition matrix rows must sum to 1, got sums {row_sums}")
    # pi (M - I) = 0  plus normalisation; transpose to a standard Ax = b.
    a = (matrix.T - np.eye(n)).copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        pi = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise ValueError(
            "stationary distribution is not unique (chain appears reducible)"
        ) from exc
    if np.any(pi < -1e-9):
        raise ValueError("stationary distribution has negative entries; chain invalid")
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()


@dataclass(frozen=True)
class MarkovAvailabilityModel:
    """A single processor's 3-state availability chain.

    The transition matrix is indexed by :class:`~repro.types.ProcState`
    (UP = 0, RECLAIMED = 1, DOWN = 2), i.e. ``matrix[0, 1]`` is
    :math:`P_{u,r}`.

    Attributes:
        matrix: the ``(3, 3)`` row-stochastic transition matrix.

    The constructor validates stochasticity; derived quantities (stationary
    distribution, cumulative rows for sampling) are computed lazily and
    cached — the object is otherwise immutable so it can be shared freely
    between heuristics and the trace generator.
    """

    matrix: np.ndarray
    _pi: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _cum: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=float)
        if m.shape != (3, 3):
            raise ValueError(f"availability matrix must be 3x3, got shape {m.shape}")
        if np.any(m < -1e-12) or np.any(m > 1 + 1e-12):
            raise ValueError("transition probabilities must lie in [0, 1]")
        if not np.allclose(m.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError(
                f"transition matrix rows must sum to 1, got {m.sum(axis=1)}"
            )
        m = np.clip(m, 0.0, 1.0)
        m = m / m.sum(axis=1, keepdims=True)
        m.setflags(write=False)
        object.__setattr__(self, "matrix", m)
        object.__setattr__(self, "_pi", None)
        object.__setattr__(self, "_cum", None)

    # ------------------------------------------------------------------ #
    # Named accessors mirroring the paper's notation.                     #
    # ------------------------------------------------------------------ #
    def p(self, src: ProcState, dst: ProcState) -> float:
        """Transition probability :math:`P_{src,dst}`."""
        return float(self.matrix[int(src), int(dst)])

    @property
    def p_uu(self) -> float:
        """:math:`P_{u,u}` — probability of remaining UP."""
        return float(self.matrix[0, 0])

    @property
    def p_ur(self) -> float:
        """:math:`P_{u,r}` — UP → RECLAIMED."""
        return float(self.matrix[0, 1])

    @property
    def p_ud(self) -> float:
        """:math:`P_{u,d}` — UP → DOWN."""
        return float(self.matrix[0, 2])

    @property
    def p_ru(self) -> float:
        """:math:`P_{r,u}` — RECLAIMED → UP."""
        return float(self.matrix[1, 0])

    @property
    def p_rr(self) -> float:
        """:math:`P_{r,r}` — probability of remaining RECLAIMED."""
        return float(self.matrix[1, 1])

    @property
    def p_rd(self) -> float:
        """:math:`P_{r,d}` — RECLAIMED → DOWN."""
        return float(self.matrix[1, 2])

    @property
    def p_du(self) -> float:
        """:math:`P_{d,u}` — DOWN → UP (repair)."""
        return float(self.matrix[2, 0])

    @property
    def p_dr(self) -> float:
        """:math:`P_{d,r}` — DOWN → RECLAIMED."""
        return float(self.matrix[2, 1])

    @property
    def p_dd(self) -> float:
        """:math:`P_{d,d}` — probability of remaining DOWN."""
        return float(self.matrix[2, 2])

    # ------------------------------------------------------------------ #
    # Derived quantities.                                                  #
    # ------------------------------------------------------------------ #
    @property
    def stationary(self) -> np.ndarray:
        """The limit distribution :math:`(\\pi_u, \\pi_r, \\pi_d)`."""
        if self._pi is None:
            pi = stationary_distribution(self.matrix)
            pi.setflags(write=False)
            object.__setattr__(self, "_pi", pi)
        return self._pi

    @property
    def pi_u(self) -> float:
        """Steady-state fraction of time UP."""
        return float(self.stationary[0])

    @property
    def pi_r(self) -> float:
        """Steady-state fraction of time RECLAIMED."""
        return float(self.stationary[1])

    @property
    def pi_d(self) -> float:
        """Steady-state fraction of time DOWN."""
        return float(self.stationary[2])

    def mean_sojourn(self, state: ProcState) -> float:
        """Expected consecutive slots spent in ``state`` per visit.

        A geometric sojourn with continuation probability :math:`P_{x,x}`
        has mean :math:`1 / (1 - P_{x,x})` (``inf`` for absorbing states).
        This is the quantity that bounds the span-stepped simulator's
        skip-ahead distance (DESIGN.md §6): between visits nothing about a
        processor's availability changes, so the paper's ``[0.90, 0.99]``
        self-loops yield mean sojourns of 10–100 slots.
        """
        p_stay = float(self.matrix[int(state), int(state)])
        if p_stay >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - p_stay)

    @property
    def _cumulative(self) -> np.ndarray:
        if self._cum is None:
            cum = np.cumsum(self.matrix, axis=1)
            cum[:, -1] = 1.0  # guard against rounding
            cum.setflags(write=False)
            object.__setattr__(self, "_cum", cum)
        return self._cum

    # ------------------------------------------------------------------ #
    # Sampling.                                                            #
    # ------------------------------------------------------------------ #
    def step(self, state: int, rng: np.random.Generator) -> int:
        """Sample the next state from ``state``."""
        u = rng.random()
        row = self._cumulative[int(state)]
        return int(np.searchsorted(row, u, side="right"))

    def sample_trace(
        self,
        length: int,
        rng: np.random.Generator,
        initial: Optional[int] = None,
    ) -> np.ndarray:
        """Sample an availability trace of ``length`` slots.

        Args:
            length: number of slots to generate.
            rng: the generator to draw from.
            initial: state at slot 0.  ``None`` samples the initial state
                from the stationary distribution, which is what the
                experiment harness uses so that runs start "mid-life" rather
                than artificially all-UP.

        Returns:
            A ``uint8`` array of :class:`~repro.types.ProcState` values.
        """
        length = require_positive_int(length, "length")
        trace = np.empty(length, dtype=np.uint8)
        if initial is None:
            initial = int(
                np.searchsorted(np.cumsum(self.stationary), rng.random(), side="right")
            )
        if initial not in (0, 1, 2):
            raise ValueError(f"initial state must be 0, 1 or 2, got {initial}")
        trace[0] = initial
        if length == 1:
            return trace
        self._walk_from_uniforms(trace, rng.random(length - 1), initial)
        return trace

    def _walk_from_uniforms(
        self, trace: np.ndarray, uniforms: np.ndarray, initial: int
    ) -> None:
        """Fill ``trace[1:]`` by the vectorised inverse-CDF walk.

        All uniforms are pre-drawn in one batch (identical stream to
        per-slot draws), then the chain is walked *run by run*:
        ``nxt[s][k]`` is the state slot ``k+1`` would enter if slot ``k``
        were in state ``s`` (the same two-threshold comparison the scalar
        loop made), and ``changes[s]`` the slots where that differs from
        ``s`` — so each sojourn costs one binary search plus one slice
        fill instead of a Python iteration per slot.  Shared by
        :meth:`sample_trace` and :meth:`sample_trace_batch` so the two
        can never diverge on walk arithmetic.
        """
        length = len(trace)
        cum = self._cumulative
        nxt = []
        changes = []
        for s in range(3):
            row = cum[s]
            nxt_s = (uniforms >= row[0]).view(np.uint8) + (
                uniforms >= row[1]
            ).view(np.uint8)
            nxt.append(nxt_s)
            changes.append(np.nonzero(nxt_s != s)[0])
        t = 0  # trace filled through index t
        state = int(initial)
        last = length - 1
        while t < last:
            jumps = changes[state]
            pos = int(np.searchsorted(jumps, t, side="left"))
            if pos == len(jumps):
                trace[t + 1 :] = state
                break
            j = int(jumps[pos])  # uniforms[j] leaves ``state``
            trace[t + 1 : j + 1] = state
            state = int(nxt[state][j])
            trace[j + 1] = state
            t = j + 1

    def sample_trace_batch(
        self,
        lengths: Sequence[int],
        rngs: Sequence[np.random.Generator],
        initials: Optional[Sequence[Optional[int]]] = None,
    ) -> list[np.ndarray]:
        """Sample several traces of this chain, one per generator.

        The batch engine's fused availability sweep (DESIGN.md §11):
        ``R`` chains advanced in one run-by-run pass, paying the
        cumulative-row and stationary setup once per batch instead of
        once per chain.

        Draw-order contract: chain ``i`` consumes draws from ``rngs[i]``
        *only*, in exactly the order :meth:`sample_trace` would — one
        initial-state uniform when ``initials[i]`` is ``None``, then one
        block of ``lengths[i] - 1`` transition uniforms — so the result
        is bit-identical to ``[self.sample_trace(lengths[i], rngs[i],
        initial=initials[i]) for i in range(R)]``.

        Args:
            lengths: slots to generate per chain (each ≥ 1).
            rngs: one generator per chain.
            initials: optional per-chain initial states (``None`` entries
                sample from the stationary distribution, as
                :meth:`sample_trace` does).

        Returns:
            One ``uint8`` trace per chain, in input order.
        """
        if len(rngs) != len(lengths):
            raise ValueError(
                f"got {len(lengths)} lengths but {len(rngs)} generators"
            )
        if initials is None:
            initials = [None] * len(lengths)
        elif len(initials) != len(lengths):
            raise ValueError(
                f"got {len(lengths)} lengths but {len(initials)} initials"
            )
        cum_pi: Optional[np.ndarray] = None
        traces: list[np.ndarray] = []
        for length, rng, initial in zip(lengths, rngs, initials):
            length = require_positive_int(length, "length")
            trace = np.empty(length, dtype=np.uint8)
            if initial is None:
                if cum_pi is None:
                    # Same values np.cumsum(self.stationary) yields per
                    # scalar call (deterministic), hoisted once.
                    cum_pi = np.cumsum(self.stationary)
                initial = int(np.searchsorted(cum_pi, rng.random(), side="right"))
            if initial not in (0, 1, 2):
                raise ValueError(f"initial state must be 0, 1 or 2, got {initial}")
            trace[0] = initial
            if length > 1:
                self._walk_from_uniforms(trace, rng.random(length - 1), initial)
            traces.append(trace)
        return traces

    def continue_trace(
        self, last_state: int, extra: int, rng: np.random.Generator
    ) -> np.ndarray:
        """The next ``extra`` slots after a trace ending in ``last_state``.

        The draw protocol — sample ``extra + 1`` slots seeded with the
        last state, drop the seed slot — is the single place the
        continuation rule lives; :meth:`extend_trace` and the RLE
        :class:`~repro.sim.availability.MarkovSource` both build on it,
        so their draw streams can never diverge.
        """
        extra = require_positive_int(extra, "extra")
        return self.sample_trace(extra + 1, rng, initial=int(last_state))[1:]

    def continue_trace_batch(
        self,
        last_states: Sequence[int],
        extras: Sequence[int],
        rngs: Sequence[np.random.Generator],
    ) -> list[np.ndarray]:
        """Batched :meth:`continue_trace`: one continuation per generator.

        Built on :meth:`sample_trace_batch` with the same seed-and-drop
        protocol as :meth:`continue_trace`, so a batched continuation
        consumes each generator exactly as ``R`` scalar continuations
        would and yields bit-identical tails.
        """
        extras = [require_positive_int(extra, "extra") for extra in extras]
        chunks = self.sample_trace_batch(
            [extra + 1 for extra in extras],
            rngs,
            initials=[int(state) for state in last_states],
        )
        return [chunk[1:] for chunk in chunks]

    def extend_trace(
        self, trace: np.ndarray, extra: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Append ``extra`` freshly sampled slots to an existing trace."""
        tail = self.continue_trace(int(trace[-1]), extra, rng)
        return np.concatenate([trace, tail])

    # ------------------------------------------------------------------ #
    # Construction helpers.                                                #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_probabilities(
        cls,
        *,
        p_uu: float,
        p_ur: float,
        p_ud: float,
        p_ru: float,
        p_rr: float,
        p_rd: float,
        p_du: float,
        p_dr: float,
        p_dd: float,
    ) -> "MarkovAvailabilityModel":
        """Build a model from the nine named probabilities of the paper."""
        return cls(
            np.array(
                [
                    [p_uu, p_ur, p_ud],
                    [p_ru, p_rr, p_rd],
                    [p_du, p_dr, p_dd],
                ]
            )
        )

    @classmethod
    def from_self_loops(
        cls, p_uu: float, p_rr: float, p_dd: float
    ) -> "MarkovAvailabilityModel":
        """The paper's symmetric construction (Section 7).

        Sets :math:`P_{x,y} = (1 - P_{x,x}) / 2` for each :math:`y \\ne x`.
        """
        def row(self_loop: float, position: int) -> list[float]:
            off = 0.5 * (1.0 - self_loop)
            r = [off, off, off]
            r[position] = self_loop
            return r

        return cls(np.array([row(p_uu, 0), row(p_rr, 1), row(p_dd, 2)]))


def paper_random_model(rng: np.random.Generator) -> MarkovAvailabilityModel:
    """Sample one processor's chain exactly as in the paper's evaluation.

    Section 7: *"We uniformly pick a random value between 0.90 and 0.99 for
    each* :math:`P^{(q)}_{x,x}` *value (for x = u, r, d).  We then set*
    :math:`P^{(q)}_{x,y} = 0.5 (1 - P^{(q)}_{x,x})` *for* :math:`x \\ne y`."
    """
    p_uu, p_rr, p_dd = rng.uniform(0.90, 0.99, size=3)
    return MarkovAvailabilityModel.from_self_loops(p_uu, p_rr, p_dd)


def empirical_state_frequencies(trace: Sequence[int]) -> np.ndarray:
    """Fraction of slots spent in each state — used by validation tests."""
    trace = np.asarray(trace)
    counts = np.bincount(trace.astype(np.int64), minlength=3)[:3]
    total = counts.sum()
    if total == 0:
        raise ValueError("trace is empty")
    return counts / total
