"""Closed-form availability expectations (paper Section 5 and 6.3.3).

This module implements the paper's analytic core:

* **Lemma 1** — :func:`p_plus`: knowing :math:`P_q` is UP now, the
  probability that it is UP again at some later slot without visiting DOWN
  in between:

  .. math:: P_+ = P_{u,u} + \\frac{P_{u,r} P_{r,u}}{1 - P_{r,r}}.

* **Theorem 2** — :func:`expected_completion_slots`: the conditional
  expectation :math:`E(W)` of the number of slots needed to accumulate
  ``W`` UP slots, conditioned on never entering DOWN before completion:

  .. math::
     E(W) = W + (W-1) \\; \\frac{P_{u,r} P_{r,u}}{1 - P_{r,r}} \\;
            \\frac{1}{P_{u,u}(1 - P_{r,r}) + P_{u,r} P_{r,u}}.

* **Section 6.3.3** — :func:`p_no_down_exact` (the matrix-power form of
  :math:`P_{UD}(k)`) and :func:`p_no_down_approx` (the paper's rank-1
  approximation that forgets the state after the first transition).

All formulas are also provided as Monte-Carlo estimators
(:func:`simulate_completion_slots`, :func:`simulate_p_plus`) so the closed
forms can be *verified* statistically in the test suite rather than merely
transcribed.

Edge cases (fixed here, asserted in tests):

* ``W = 1``: the workload finishes in the current slot, so
  :math:`E(1) = 1` and the success probability is 1 (the processor is
  already UP).  Both closed forms honour this.
* A chain that can never leave RECLAIMED (:math:`P_{r,r} = 1`) makes the
  geometric series in Lemma 1 degenerate: any excursion to RECLAIMED is
  absorbing, so :math:`P_+ = P_{u,u}` and the expected extra wait is 0
  (conditioned on success, the processor never visited RECLAIMED).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import require_positive_int
from ..types import ProcState
from .markov import MarkovAvailabilityModel

__all__ = [
    "p_plus",
    "expected_next_up",
    "expected_completion_slots",
    "success_probability",
    "p_no_down_exact",
    "p_no_down_approx",
    "simulate_completion_slots",
    "simulate_p_plus",
    "simulate_p_no_down",
]


def p_plus(model: MarkovAvailabilityModel) -> float:
    """Lemma 1: probability of another UP slot before any DOWN slot.

    Conditioned on being UP at slot :math:`t_1`, this is the probability
    that some :math:`t_2 > t_1` has the processor UP with no DOWN slot in
    :math:`(t_1, t_2)`.  The excursion through RECLAIMED contributes the
    geometric sum :math:`P_{u,r} \\sum_{t \\ge 0} P_{r,r}^t P_{r,u}`.
    """
    if model.p_rr >= 1.0:
        # RECLAIMED is absorbing: the only way to be UP again is to stay UP.
        return model.p_uu
    return model.p_uu + model.p_ur * model.p_ru / (1.0 - model.p_rr)


def expected_next_up(model: MarkovAvailabilityModel) -> float:
    """:math:`E(up)`: expected slots until the next UP slot, given success.

    This is the intermediate quantity in the proof of Theorem 2: the
    expected inter-UP gap conditioned on reaching UP again without crashing.
    With :math:`z = P_{u,r} P_{r,u} / (P_{u,u} (1 - P_{r,r}))`,

    .. math:: E(up) = 1 + \\frac{z}{(1 - P_{r,r})(1 + z)}.
    """
    if model.p_rr >= 1.0:
        return 1.0
    if model.p_uu == 0.0:
        # Every successful continuation goes through RECLAIMED.  Conditioned
        # on success the RECLAIMED sojourn is geometric with ratio P_rr:
        # E(up) = 2 + P_rr / (1 - P_rr) · 1 = 1 + 1/(1 - P_rr).
        return 1.0 + 1.0 / (1.0 - model.p_rr)
    z = model.p_ur * model.p_ru / (model.p_uu * (1.0 - model.p_rr))
    return 1.0 + z / ((1.0 - model.p_rr) * (1.0 + z))


def expected_completion_slots(model: MarkovAvailabilityModel, workload: int) -> float:
    """Theorem 2: :math:`E(W)` for a workload of ``workload`` UP slots.

    Conditioned on the processor being UP now and completing the workload
    without entering DOWN, this is the expected number of wall-clock slots
    from the current slot to the completing slot, inclusive:
    :math:`E(W) = 1 + (W - 1) E(up)`.

    Args:
        model: the processor's availability chain.
        workload: number of UP slots the work requires (:math:`W \\ge 1`).

    Returns:
        The conditional expectation, a float ``>= workload``.
    """
    w = require_positive_int(workload, "workload")
    return 1.0 + (w - 1) * expected_next_up(model)


def success_probability(model: MarkovAvailabilityModel, workload: int) -> float:
    """Probability of completing ``workload`` UP slots before any DOWN slot.

    The paper notes this is :math:`(P_+)^{W-1}` — the LW heuristic's
    ranking quantity (with the estimated completion time as exponent).
    """
    w = require_positive_int(workload, "workload")
    return p_plus(model) ** (w - 1)


# --------------------------------------------------------------------------- #
# P_UD — probability of not going DOWN during k slots (Section 6.3.3).
# --------------------------------------------------------------------------- #
def p_no_down_exact(model: MarkovAvailabilityModel, k: int) -> float:
    """Exact :math:`P_{UD}(k)`: no DOWN slot in the next ``k - 1`` steps.

    Starting UP, this is the total mass of the length-``k`` paths that never
    touch DOWN, computed with the sub-stochastic UP/RECLAIMED block:

    .. math::
       P_{UD}(k) = [1\\; 0] \\; \\begin{pmatrix} P_{u,u} & P_{u,r} \\\\
                   P_{r,u} & P_{r,r} \\end{pmatrix}^{k-1}
                   \\begin{pmatrix} 1 \\\\ 1 \\end{pmatrix}.

    ``k = 1`` means "no constraint" (the processor is UP now), giving 1.

    Note: the paper prints the bracketing vectors the other way around
    (:math:`[1\\,1] M^{k-1} [1\\,0]^T`), which with its row-stochastic
    block is the transposed quantity — for ``k = 2`` it would give
    :math:`P_{u,u} + P_{r,u}` instead of the correct
    :math:`P_{u,u} + P_{u,r} = 1 - P_{u,d}`.  Monte-Carlo simulation (see
    the test suite) confirms the orientation implemented here; the paper's
    own rank-1 approximation also starts from :math:`1 - P_{u,d}`.
    """
    k = require_positive_int(k, "k")
    if k == 1:
        return 1.0
    block = np.array(
        [[model.p_uu, model.p_ur], [model.p_ru, model.p_rr]], dtype=float
    )
    start = np.array([1.0, 0.0])
    powered = start @ np.linalg.matrix_power(block, k - 1)
    return float(powered.sum())


def p_no_down_approx(model: MarkovAvailabilityModel, k: float) -> float:
    """The paper's rank-1 approximation of :math:`P_{UD}(k)` (Section 6.3.3).

    After the first transition the chain state is forgotten and each
    subsequent step survives with the stationary-weighted average escape
    probability:

    .. math::
       P_{UD}(k) \\approx (1 - P_{u,d})
       \\left(1 - \\frac{P_{u,d}\\pi_u + P_{r,d}\\pi_r}{\\pi_u + \\pi_r}
       \\right)^{k-2}.

    Unlike the exact form this accepts a *real-valued* ``k``, because the
    UD heuristic plugs in the (fractional) expectation
    :math:`E(CT(P_q, n_q + 1))` from Theorem 2.  Values of ``k`` below 2
    clamp the exponent at 0, matching the paper's convention that the first
    transition is the only constrained one for tiny workloads.
    """
    k = float(k)
    if k < 1.0:
        raise ValueError(f"k must be >= 1, got {k}")
    pi_u, pi_r = model.pi_u, model.pi_r
    if pi_u + pi_r <= 0.0:
        # Degenerate chain that is almost surely DOWN; survival after the
        # first step is still (1 - p_ud), later steps are certain death.
        return 0.0 if k > 2 else 1.0 - model.p_ud
    avg_down = (model.p_ud * pi_u + model.p_rd * pi_r) / (pi_u + pi_r)
    exponent = max(k - 2.0, 0.0)
    return (1.0 - model.p_ud) * (1.0 - avg_down) ** exponent


# --------------------------------------------------------------------------- #
# Monte-Carlo estimators used to validate the closed forms.
# --------------------------------------------------------------------------- #
def simulate_completion_slots(
    model: MarkovAvailabilityModel,
    workload: int,
    rng: np.random.Generator,
    samples: int = 10_000,
    max_slots: Optional[int] = None,
) -> Tuple[float, float]:
    """Monte-Carlo estimate of (success probability, E[slots | success]).

    Runs ``samples`` independent walks starting UP; each walk accumulates
    UP slots until ``workload`` of them have occurred (success) or the chain
    hits DOWN (failure).  Returns the empirical success probability and the
    mean completion time among successes (``nan`` if none succeeded).

    ``max_slots`` guards against chains where RECLAIMED is effectively
    absorbing; walks exceeding it are counted as failures.
    """
    w = require_positive_int(workload, "workload")
    samples = require_positive_int(samples, "samples")
    if max_slots is None:
        max_slots = max(1000, 200 * w)
    successes = 0
    total_slots = 0.0
    for _ in range(samples):
        remaining = w - 1  # the current slot is the first UP slot
        slots = 1
        state = int(ProcState.UP)
        failed = False
        while remaining > 0:
            state = model.step(state, rng)
            slots += 1
            if state == int(ProcState.DOWN) or slots > max_slots:
                failed = True
                break
            if state == int(ProcState.UP):
                remaining -= 1
        if not failed:
            successes += 1
            total_slots += slots
    p_success = successes / samples
    mean_slots = total_slots / successes if successes else float("nan")
    return p_success, mean_slots


def simulate_p_plus(
    model: MarkovAvailabilityModel,
    rng: np.random.Generator,
    samples: int = 10_000,
    max_slots: int = 100_000,
) -> float:
    """Monte-Carlo estimate of Lemma 1's :math:`P_+`."""
    samples = require_positive_int(samples, "samples")
    hits = 0
    for _ in range(samples):
        state = int(ProcState.UP)
        for _ in range(max_slots):
            state = model.step(state, rng)
            if state == int(ProcState.UP):
                hits += 1
                break
            if state == int(ProcState.DOWN):
                break
        # Walks that exhaust max_slots in RECLAIMED count as failures, a
        # negligible bias for the chains we test (p_rr <= 0.99).
    return hits / samples


def simulate_p_no_down(
    model: MarkovAvailabilityModel,
    k: int,
    rng: np.random.Generator,
    samples: int = 10_000,
) -> float:
    """Monte-Carlo estimate of the exact :math:`P_{UD}(k)`."""
    k = require_positive_int(k, "k")
    samples = require_positive_int(samples, "samples")
    survived = 0
    for _ in range(samples):
        state = int(ProcState.UP)
        ok = True
        for _ in range(k - 1):
            state = model.step(state, rng)
            if state == int(ProcState.DOWN):
                ok = False
                break
        survived += ok
    return survived / samples
