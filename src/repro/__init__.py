"""repro — reproduction of *Scheduling Parallel Iterative Applications on
Volatile Resources* (Casanova, Dufossé, Robert, Vivien; IPDPS 2011).

The package implements the paper's entire system in pure Python:

* :mod:`repro.core.markov` / :mod:`repro.core.expectation` — the 3-state
  Markov availability model with the closed-form results (Lemma 1,
  Theorem 2, the :math:`P_{UD}` forms of Section 6.3.3);
* :mod:`repro.core.heuristics` — all seventeen online heuristics of the
  evaluation plus baselines and extensions;
* :mod:`repro.core.offline` — the Section 4 toolkit: the 3SAT reduction of
  Theorem 1, the polynomial ``ncom = ∞`` MCT of Proposition 2, an exact
  solver, and the MCT non-optimality counterexample;
* :mod:`repro.sim` — the volatile master–worker simulator with the bounded
  multi-port network model;
* :mod:`repro.workload` — the application model, the Section 7 scenario
  generator and trace (de)serialisation;
* :mod:`repro.experiments` — harness regenerating every table and figure.

Quickstart::

    from repro import (IterativeApplication, Platform, Processor,
                       RngFactory, make_scheduler, paper_random_model,
                       simulate)

    fac = RngFactory(42)
    procs = [
        Processor.from_markov(q, speed_w=5,
                              model=paper_random_model(fac.generator("chain", q)),
                              rng=fac.generator("trace", q))
        for q in range(20)
    ]
    report = simulate(
        Platform(procs, ncom=5),
        IterativeApplication(tasks_per_iteration=10, iterations=10,
                             t_prog=5, t_data=1),
        make_scheduler("emct*"),
        rng=fac.generator("sched"),
    )
    print(report.summary())
"""

from .core.expectation import (
    expected_completion_slots,
    p_no_down_approx,
    p_no_down_exact,
    p_plus,
    success_probability,
)
from .core.heuristics.base import Scheduler, SchedulingContext
from .core.heuristics.registry import (
    GREEDY_HEURISTICS,
    PAPER_HEURISTICS,
    available_heuristics,
    make_scheduler,
)
from .analysis.gantt import render_gantt
from .core.markov import MarkovAvailabilityModel, paper_random_model
from .rng import RngFactory
from .sim.events import EventLog
from .sim.master import MasterSimulator, SimulatorOptions, simulate
from .sim.metrics import SimulationReport
from .sim.platform import Platform, Processor
from .sim.timeline import TimelineRecorder
from .types import ProcState
from .workload.application import IterativeApplication

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # availability / analytics
    "MarkovAvailabilityModel",
    "paper_random_model",
    "p_plus",
    "expected_completion_slots",
    "success_probability",
    "p_no_down_exact",
    "p_no_down_approx",
    # scheduling
    "Scheduler",
    "SchedulingContext",
    "make_scheduler",
    "available_heuristics",
    "PAPER_HEURISTICS",
    "GREEDY_HEURISTICS",
    # simulation
    "MasterSimulator",
    "SimulatorOptions",
    "simulate",
    "SimulationReport",
    "Platform",
    "Processor",
    "ProcState",
    "IterativeApplication",
    "RngFactory",
    # observability
    "EventLog",
    "TimelineRecorder",
    "render_gantt",
]
