"""Application model, scenario generation, and availability traces."""

from .application import IterativeApplication

__all__ = ["IterativeApplication"]
