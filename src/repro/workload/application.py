"""The iterative master–worker application model (paper Section 3.1).

An application is a sequence of iterations; each iteration is the execution
of ``tasks_per_iteration`` same-size independent tasks with a barrier at the
end.  Each task consumes input data of ``Vdata`` bytes sent by the master;
before computing anything a worker must hold the application program of
``Vprog`` bytes.  With the bounded multi-port model, each worker
communication runs at the fixed bandwidth ``bw``, so transfer *times* are

.. math:: T_{prog} = V_{prog} / bw, \\qquad T_{data} = V_{data} / bw,

both integer numbers of slots (the paper assumes the discretisation makes
them integral).  The simulator and heuristics only ever consume
``t_prog``/``t_data``, so :class:`IterativeApplication` lets you specify
either bytes + bandwidth or slot counts directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require_nonnegative_int, require_positive_int

__all__ = ["IterativeApplication"]


@dataclass(frozen=True)
class IterativeApplication:
    """An iterative application described in time-slot units.

    Attributes:
        tasks_per_iteration: the number ``m`` of independent same-size tasks
            per iteration.
        iterations: the number of iterations to complete (the paper's
            evaluation fixes this to 10 and measures makespan).
        t_prog: slots needed to transfer the program to one worker
            (:math:`T_{prog} = V_{prog}/bw`).
        t_data: slots needed to transfer one task's input data
            (:math:`T_{data} = V_{data}/bw`).  ``0`` is allowed (the 3SAT
            reduction of Theorem 1 uses ``Tdata = 0``).
    """

    tasks_per_iteration: int
    iterations: int
    t_prog: int
    t_data: int

    def __post_init__(self) -> None:
        require_positive_int(self.tasks_per_iteration, "tasks_per_iteration")
        require_positive_int(self.iterations, "iterations")
        require_nonnegative_int(self.t_prog, "t_prog")
        require_nonnegative_int(self.t_data, "t_data")

    @classmethod
    def from_volumes(
        cls,
        *,
        tasks_per_iteration: int,
        iterations: int,
        v_prog: float,
        v_data: float,
        bw: float,
    ) -> "IterativeApplication":
        """Build from byte volumes and the per-worker bandwidth ``bw``.

        Transfer times are rounded up to whole slots (a partial slot of
        communication still occupies a channel for that slot).
        """
        if bw <= 0:
            raise ValueError(f"bw must be positive, got {bw}")
        if v_prog < 0 or v_data < 0:
            raise ValueError("volumes must be non-negative")
        t_prog = int(-(-v_prog // bw))  # ceil division for floats
        t_data = int(-(-v_data // bw))
        return cls(
            tasks_per_iteration=tasks_per_iteration,
            iterations=iterations,
            t_prog=t_prog,
            t_data=t_data,
        )

    @property
    def total_tasks(self) -> int:
        """Total committed tasks needed across the whole run."""
        return self.tasks_per_iteration * self.iterations

    def communication_to_computation_ratio(self, w: int) -> float:
        """``t_data / w`` for a worker of speed ``w`` — the paper's CCR.

        Section 7 calibrates ``Tdata = wmin`` so the fastest processor has a
        ratio of 1; this helper is used by scenario validation and docs.
        """
        w = require_positive_int(w, "w")
        return self.t_data / w
