"""Availability-trace serialisation and a synthetic trace archive.

The paper's future-work section points to the Failure Trace Archive (FTA)
as a source of real host availability.  The FTA distributes per-host
*event lists*: ordered ``(state, start, end)`` intervals.  Offline we
cannot ship FTA data, so this module provides (a) the interval-list format
itself — load/save plus conversion to/from flat slot traces — and (b) a
synthetic archive generator producing FTA-shaped data from any availability
source, so the trace-replay code path (:class:`repro.sim.availability.
TraceSource`) is exercised end to end exactly as it would be with real
archives.

File format (one trace set per JSON document)::

    {
      "format": "repro-trace-v1",
      "slot_seconds": 60.0,            # documentation only
      "hosts": [
        {"name": "host-0", "intervals": [["u", 120], ["r", 30], ...]},
        ...
      ]
    }

Interval durations are in slots; states use the paper's ``u``/``r``/``d``
codes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple, Union

import numpy as np

from .._validation import require_positive_int
from ..types import CODE_TO_STATE, STATE_CODES, ProcState

__all__ = [
    "HostTrace",
    "TraceArchive",
    "intervals_from_states",
    "states_from_intervals",
    "synthesize_archive",
]

FORMAT_TAG = "repro-trace-v1"

Interval = Tuple[str, int]  # (state code, duration in slots)


def intervals_from_states(states: Sequence[int]) -> List[Interval]:
    """Run-length encode a flat slot trace into FTA-style intervals.

    >>> intervals_from_states([0, 0, 1, 2, 2, 2])
    [('u', 2), ('r', 1), ('d', 3)]
    """
    states = np.asarray(states)
    if states.ndim != 1 or len(states) == 0:
        raise ValueError("states must be a non-empty 1-D sequence")
    intervals: List[Interval] = []
    current = int(states[0])
    run = 1
    for value in states[1:]:
        value = int(value)
        if value == current:
            run += 1
        else:
            intervals.append((STATE_CODES[ProcState(current)], run))
            current, run = value, 1
    intervals.append((STATE_CODES[ProcState(current)], run))
    return intervals


def states_from_intervals(intervals: Sequence[Interval]) -> np.ndarray:
    """Expand FTA-style intervals back into a flat slot trace."""
    if not intervals:
        raise ValueError("intervals must be non-empty")
    pieces = []
    for code, duration in intervals:
        duration = require_positive_int(duration, "interval duration")
        state = CODE_TO_STATE.get(code)
        if state is None:
            raise ValueError(f"unknown state code {code!r}")
        pieces.append(np.full(duration, int(state), dtype=np.uint8))
    return np.concatenate(pieces)


@dataclass(frozen=True)
class HostTrace:
    """One host's availability as an interval list."""

    name: str
    intervals: Tuple[Interval, ...]

    @property
    def total_slots(self) -> int:
        """Trace length in slots."""
        return sum(duration for _code, duration in self.intervals)

    def to_states(self) -> np.ndarray:
        """Flat slot trace (uint8 :class:`~repro.types.ProcState`)."""
        return states_from_intervals(self.intervals)

    def availability_fraction(self) -> float:
        """Fraction of slots spent UP."""
        up = sum(d for code, d in self.intervals if code == "u")
        return up / self.total_slots


@dataclass
class TraceArchive:
    """A set of host traces, FTA-shaped.

    Attributes:
        hosts: the host traces.
        slot_seconds: documentation-only wall-clock length of one slot.
    """

    hosts: List[HostTrace] = field(default_factory=list)
    slot_seconds: float = 60.0

    def __len__(self) -> int:
        return len(self.hosts)

    def save(self, path: Union[str, Path]) -> None:
        """Serialise to the JSON document format."""
        document = {
            "format": FORMAT_TAG,
            "slot_seconds": self.slot_seconds,
            "hosts": [
                {"name": host.name, "intervals": [list(iv) for iv in host.intervals]}
                for host in self.hosts
            ],
        }
        Path(path).write_text(json.dumps(document, indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceArchive":
        """Load a previously saved archive.

        Raises:
            ValueError: on format-tag mismatch or malformed intervals.
        """
        document = json.loads(Path(path).read_text())
        if document.get("format") != FORMAT_TAG:
            raise ValueError(
                f"unsupported trace file format {document.get('format')!r}; "
                f"expected {FORMAT_TAG!r}"
            )
        hosts = []
        for entry in document["hosts"]:
            intervals = tuple((str(code), int(dur)) for code, dur in entry["intervals"])
            for code, dur in intervals:
                if code not in CODE_TO_STATE:
                    raise ValueError(f"unknown state code {code!r} in {entry['name']}")
                if dur <= 0:
                    raise ValueError(f"non-positive duration in {entry['name']}")
            hosts.append(HostTrace(name=str(entry["name"]), intervals=intervals))
        return cls(hosts=hosts, slot_seconds=float(document.get("slot_seconds", 60.0)))


def synthesize_archive(
    sources,
    length: int,
    *,
    names: Sequence[str] | None = None,
    slot_seconds: float = 60.0,
) -> TraceArchive:
    """Materialise availability sources into an FTA-shaped archive.

    Args:
        sources: availability sources (anything with ``state_at``).
        length: slots to materialise per host.
        names: optional host names (default ``host-<i>``).
        slot_seconds: documentation-only slot length.
    """
    length = require_positive_int(length, "length")
    hosts = []
    for i, source in enumerate(sources):
        states = np.array(
            [source.state_at(t) for t in range(length)], dtype=np.uint8
        )
        name = names[i] if names is not None else f"host-{i}"
        hosts.append(HostTrace(name=name, intervals=tuple(intervals_from_states(states))))
    return TraceArchive(hosts=hosts, slot_seconds=slot_seconds)
