"""Experimental scenario generation (paper Section 7).

The paper's evaluation protocol:

* ``p = 20`` processors; each processor's chain drawn by
  :func:`~repro.core.markov.paper_random_model` (self-loops uniform in
  ``[0.90, 0.99]``, symmetric off-diagonals);
* speeds :math:`w_q` uniform in ``[wmin, 10 · wmin]`` (integers);
* ``Tdata = wmin`` (the fastest possible processor has a
  communication-to-computation ratio of 1), ``Tprog = 5 · wmin``;
* a scenario cell is a triple ``(n, ncom, wmin)`` with
  ``n ∈ {5, 10, 20, 40}``, ``ncom ∈ {5, 10, 20}``, ``wmin ∈ 1..10``;
* 247 random scenarios per cell, 10 trials per scenario (the trial varies
  only the seed driving the Markov state transitions), 10 iterations per
  run.

The *contention-prone* variant (Table 3) fixes ``n = 20``, ``ncom = 5``,
``wmin = 1`` and scales the communication times by a factor ``f``:
``Tdata = f · wmin``, ``Tprog = 5 f · wmin`` (``f = 5`` and ``f = 10``).

A :class:`Scenario` is the *static* description (chains, speeds,
application); :meth:`Scenario.build_platform` instantiates the stochastic
ground truth for one trial.  Availability randomness is derived from
``(scenario key, trial)`` only — never from the heuristic — so the same
trial presents the identical availability sample to every heuristic
(paired comparison, as the dfb metric requires).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .._validation import require_positive_int
from ..core.markov import MarkovAvailabilityModel, paper_random_model
from ..rng import RngFactory
from ..sim.platform import Platform, Processor
from .application import IterativeApplication

__all__ = [
    "PAPER_N_VALUES",
    "PAPER_NCOM_VALUES",
    "PAPER_WMIN_VALUES",
    "Scenario",
    "ScenarioSpec",
    "ScenarioGenerator",
]

#: Parameter grid of the paper's Table 1.
PAPER_N_VALUES: Tuple[int, ...] = (5, 10, 20, 40)
PAPER_NCOM_VALUES: Tuple[int, ...] = (5, 10, 20)
PAPER_WMIN_VALUES: Tuple[int, ...] = tuple(range(1, 11))

#: Paper constants.
PAPER_P = 20
PAPER_ITERATIONS = 10
PAPER_SCENARIOS_PER_CELL = 247
PAPER_TRIALS = 10


@dataclass(frozen=True)
class Scenario:
    """One random experimental scenario (chains + speeds + application).

    Attributes:
        key: provenance tuple identifying the scenario (cell parameters
            and scenario index) — also the RNG derivation key.
        models: one Markov chain per processor.
        speeds: one :math:`w_q` per processor.
        ncom: the master channel budget.
        app: the iterative application (m tasks, 10 iterations, timings).
        root_seed: entropy of the generating factory (provenance).
        truth: ground-truth sampler family — ``"markov"`` (the paper's
            slot-by-slot walk) or ``"semi-markov"`` (the run-length form
            of the same chains, O(runs) generation; used by the large-p
            family, DESIGN.md §12).  The scheduler belief is the Markov
            chain either way.
    """

    key: tuple
    models: Tuple[MarkovAvailabilityModel, ...]
    speeds: Tuple[int, ...]
    ncom: int
    app: IterativeApplication
    root_seed: object = None
    truth: str = "markov"

    @property
    def p(self) -> int:
        """Number of processors."""
        return len(self.models)

    def build_platform(self, trial: int) -> Platform:
        """Instantiate the ground-truth platform for one trial.

        The availability sample depends only on ``(root_seed, key, trial,
        processor)`` — identical across heuristics, fresh across trials.
        """
        factory = RngFactory(self.root_seed)
        if self.truth == "semi-markov":
            build = Processor.from_semi_markov
        elif self.truth == "markov":
            build = Processor.from_markov
        else:
            raise ValueError(
                f"unknown ground-truth family {self.truth!r}; "
                "expected 'markov' or 'semi-markov'"
            )
        processors = [
            build(
                q,
                self.speeds[q],
                self.models[q],
                factory.generator("avail", *self.key, trial, q),
            )
            for q in range(self.p)
        ]
        return Platform(processors, ncom=self.ncom)

    def scheduler_rng(self, trial: int, heuristic: str):
        """RNG stream for a heuristic's internal randomness in one trial.

        Derived per heuristic so that random heuristics don't perturb each
        other, while the availability sample stays shared.
        """
        return RngFactory(self.root_seed).generator(
            "sched", *self.key, trial, heuristic
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A name+seed description of a generator-derived :class:`Scenario`.

    Parallel execution backends ship work units between processes; a live
    :class:`Scenario` carries Markov chain objects and numpy state, so the
    units instead carry this tiny spec and rebuild the scenario on the
    worker via :class:`ScenarioGenerator` — the scenario RNG derivation
    depends only on ``(root_seed, key)``, so the rebuilt scenario is
    identical to the original regardless of which worker (or how many
    workers) executes the unit.

    Attributes:
        root_seed: the generator's root seed.  Must be a plain int: a
            ``None`` seed draws fresh OS entropy on every rebuild, so it
            cannot be serialised by name+seed.
        n, ncom, wmin, comm_factor, index: the scenario key fields.
        p: processors per scenario.
        iterations: iterations per run.
    """

    root_seed: int
    n: int
    ncom: int
    wmin: int
    comm_factor: int
    index: int
    p: int
    iterations: int

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "ScenarioSpec":
        """Extract the spec of a generator-derived scenario.

        The candidate spec is rebuilt and verified field-by-field against
        ``scenario``, so a spec round trip can never silently change what
        gets simulated.

        Raises:
            ValueError: when the scenario cannot be reproduced from a spec
                (hand-built key, non-integer seed, mutated fields).
        """
        if not isinstance(scenario.root_seed, (int, np.integer)):
            raise ValueError(
                "scenario root_seed is not an int; cannot serialise by seed"
            )
        key = scenario.key
        if len(key) != 5 or not all(isinstance(k, (int, np.integer)) for k in key):
            raise ValueError(
                f"scenario key {key!r} is not the generator's "
                "(n, ncom, wmin, comm_factor, index) layout"
            )
        spec = cls(
            root_seed=int(scenario.root_seed),
            n=int(key[0]),
            ncom=int(key[1]),
            wmin=int(key[2]),
            comm_factor=int(key[3]),
            index=int(key[4]),
            p=scenario.p,
            iterations=scenario.app.iterations,
        )
        rebuilt = spec.build()
        same = (
            rebuilt.truth == scenario.truth
            and rebuilt.key == scenario.key
            and rebuilt.ncom == scenario.ncom
            and rebuilt.speeds == scenario.speeds
            and rebuilt.app == scenario.app
            and all(
                np.array_equal(a.matrix, b.matrix)
                for a, b in zip(rebuilt.models, scenario.models)
            )
        )
        if not same:
            raise ValueError(
                "scenario does not round-trip through its spec (was it "
                "built by ScenarioGenerator and left unmodified?)"
            )
        return spec

    def build(self) -> Scenario:
        """Rebuild the scenario (cached; specs are immutable)."""
        return _build_scenario(self)


# Sized for a full paper-scale cell sweep per worker; a cached Scenario is
# a few KB (20 3×3 chains + ints), so the ceiling is a handful of MB.
# Verification in from_scenario warms this cache, and campaign units of
# one scenario run adjacently, so each worker builds a scenario O(1)
# times — a cost that is noise next to the simulations it feeds.
@lru_cache(maxsize=2048)
def _build_scenario(spec: ScenarioSpec) -> Scenario:
    generator = ScenarioGenerator(
        spec.root_seed, p=spec.p, iterations=spec.iterations
    )
    return generator.scenario(
        spec.n, spec.ncom, spec.wmin, spec.index, comm_factor=spec.comm_factor
    )


class ScenarioGenerator:
    """Generates the paper's scenario population deterministically.

    Args:
        root_seed: seed for the whole experiment campaign.
        p: processors per scenario (paper: 20).
        iterations: iterations per run (paper: 10).
    """

    def __init__(
        self,
        root_seed=12061,
        *,
        p: int = PAPER_P,
        iterations: int = PAPER_ITERATIONS,
    ):
        self._factory = RngFactory(root_seed)
        self._root_seed = root_seed
        self.p = require_positive_int(p, "p")
        self.iterations = require_positive_int(iterations, "iterations")

    def scenario(
        self,
        n: int,
        ncom: int,
        wmin: int,
        index: int,
        *,
        comm_factor: int = 1,
    ) -> Scenario:
        """The ``index``-th random scenario of cell ``(n, ncom, wmin)``.

        Args:
            n: tasks per iteration.
            ncom: channel budget.
            wmin: the speed-scale parameter; ``w_q ~ U{wmin..10·wmin}``,
                ``Tdata = comm_factor · wmin``,
                ``Tprog = 5 · comm_factor · wmin``.
            index: scenario index within the cell (0-based).
            comm_factor: Table 3's communication scaling (1, 5, or 10).
        """
        n = require_positive_int(n, "n")
        ncom = require_positive_int(ncom, "ncom")
        wmin = require_positive_int(wmin, "wmin")
        comm_factor = require_positive_int(comm_factor, "comm_factor")
        key = (n, ncom, wmin, comm_factor, index)
        rng = self._factory.generator("scenario", *key)
        models = tuple(paper_random_model(rng) for _ in range(self.p))
        speeds = tuple(
            int(rng.integers(wmin, 10 * wmin, endpoint=True)) for _ in range(self.p)
        )
        app = IterativeApplication(
            tasks_per_iteration=n,
            iterations=self.iterations,
            t_prog=5 * comm_factor * wmin,
            t_data=comm_factor * wmin,
        )
        return Scenario(
            key=key,
            models=models,
            speeds=speeds,
            ncom=ncom,
            app=app,
            root_seed=self._root_seed,
        )

    def large_grid_scenario(
        self,
        n: int,
        ncom: int,
        wmin: int,
        index: int,
        *,
        comm_factor: int = 1,
        mean_sojourn: int = 1000,
    ) -> Scenario:
        """A low-churn scenario for the large-p platform benchmarks.

        The paper's chains (self-loops in ``[0.90, 0.99]``) model a
        20-host lab where a slot is minutes and hosts flap every 10–100
        slots.  A production desktop grid (BOINC-style, the DESIGN.md §12
        setting) has per-host mean sojourns of hours-to-days — hundreds
        to thousands of slots — so platform-wide churn per slot stays
        O(p / sojourn), not O(p).  This family keeps the paper's speeds,
        timings, and symmetric off-diagonal structure but draws each
        self-loop as ``1 - 1/s`` with ``s`` log-uniform in
        ``[mean_sojourn / 2, mean_sojourn * 2]``, giving per-state mean
        sojourns around ``mean_sojourn`` slots.

        Ground truth is the run-length (semi-Markov) form of the chains
        (``truth="semi-markov"``): distributionally the same process,
        but generated in O(runs) — materialising 10k workers' traces
        must not cost Θ(p · horizon).  Beliefs stay the Markov chains.

        Seed-stable exactly like :meth:`scenario`: the key
        ``("large", n, ncom, wmin, comm_factor, mean_sojourn, index)``
        fully determines chains, speeds, and every trial's availability
        sample.  (Keys of this family are not :class:`ScenarioSpec`
        round-trippable; the bench harness passes scenarios directly.)
        """
        n = require_positive_int(n, "n")
        ncom = require_positive_int(ncom, "ncom")
        wmin = require_positive_int(wmin, "wmin")
        comm_factor = require_positive_int(comm_factor, "comm_factor")
        mean_sojourn = require_positive_int(mean_sojourn, "mean_sojourn")
        if mean_sojourn < 2:
            raise ValueError(
                f"mean_sojourn must be >= 2 slots, got {mean_sojourn}"
            )
        key = ("large", n, ncom, wmin, comm_factor, mean_sojourn, index)
        rng = self._factory.generator("scenario", *key)
        low, high = np.log(mean_sojourn / 2.0), np.log(mean_sojourn * 2.0)
        sojourns = np.exp(rng.uniform(low, high, size=(self.p, 3)))
        models = tuple(
            MarkovAvailabilityModel.from_self_loops(
                1.0 - 1.0 / row[0], 1.0 - 1.0 / row[1], 1.0 - 1.0 / row[2]
            )
            for row in sojourns
        )
        speeds = tuple(
            int(rng.integers(wmin, 10 * wmin, endpoint=True))
            for _ in range(self.p)
        )
        app = IterativeApplication(
            tasks_per_iteration=n,
            iterations=self.iterations,
            t_prog=5 * comm_factor * wmin,
            t_data=comm_factor * wmin,
        )
        return Scenario(
            key=key,
            models=models,
            speeds=speeds,
            ncom=ncom,
            app=app,
            root_seed=self._root_seed,
            truth="semi-markov",
        )

    def cell(
        self,
        n: int,
        ncom: int,
        wmin: int,
        count: int,
        *,
        comm_factor: int = 1,
    ) -> List[Scenario]:
        """``count`` scenarios of one cell (paper: 247)."""
        return [
            self.scenario(n, ncom, wmin, index, comm_factor=comm_factor)
            for index in range(count)
        ]

    def grid(
        self,
        scenarios_per_cell: int,
        *,
        n_values: Optional[Tuple[int, ...]] = None,
        ncom_values: Optional[Tuple[int, ...]] = None,
        wmin_values: Optional[Tuple[int, ...]] = None,
    ) -> Iterator[Scenario]:
        """Iterate scenarios over the full (or a restricted) parameter grid.

        Defaults to the paper's Table 1 grid.  The paper's full campaign is
        ``grid(247)`` with 10 trials each: 296,400 problem instances.
        """
        for n in n_values or PAPER_N_VALUES:
            for ncom in ncom_values or PAPER_NCOM_VALUES:
                for wmin in wmin_values or PAPER_WMIN_VALUES:
                    for index in range(scenarios_per_cell):
                        yield self.scenario(n, ncom, wmin, index)

    def contention_prone(
        self, comm_factor: int, count: int
    ) -> List[Scenario]:
        """Table 3 scenarios: ``n=20, ncom=5, wmin=1``, comm scaled.

        Args:
            comm_factor: 5 (Table 3 left) or 10 (Table 3 right).
            count: scenarios (paper: 100).
        """
        return self.cell(20, 5, 1, count, comm_factor=comm_factor)
