"""Tests for deterministic RNG stream management."""

import numpy as np
import pytest

from repro.rng import RngFactory, derive_seed, generator_from


class TestRngFactory:
    def test_same_key_same_stream(self):
        a = RngFactory(99).generator("avail", 3)
        b = RngFactory(99).generator("avail", 3)
        assert np.allclose(a.random(16), b.random(16))

    def test_different_keys_differ(self):
        fac = RngFactory(99)
        a = fac.generator("avail", 3)
        b = fac.generator("avail", 4)
        assert not np.allclose(a.random(16), b.random(16))

    def test_different_labels_differ(self):
        fac = RngFactory(99)
        a = fac.generator("avail", 3)
        b = fac.generator("sched", 3)
        assert not np.allclose(a.random(16), b.random(16))

    def test_different_roots_differ(self):
        a = RngFactory(1).generator("x")
        b = RngFactory(2).generator("x")
        assert not np.allclose(a.random(16), b.random(16))

    def test_string_and_int_key_parts(self):
        fac = RngFactory(0)
        gen = fac.generator("scenario", 5, "trial", 2)
        assert 0.0 <= gen.random() < 1.0

    def test_rejects_unhashable_key_type(self):
        with pytest.raises(TypeError, match="must be str or int"):
            RngFactory(0).generator("x", 1.5)

    def test_none_seed_allowed(self):
        fac = RngFactory(None)
        assert fac.generator("a") is not None

    def test_root_entropy_exposed(self):
        assert RngFactory(1234).root_entropy == 1234


class TestHelpers:
    def test_generator_from_int(self):
        a = generator_from(7)
        b = generator_from(7)
        assert a.random() == b.random()

    def test_generator_from_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert generator_from(seq).random() == generator_from(
            np.random.SeedSequence(5)
        ).random()

    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_derive_seed_nonnegative(self):
        for key in range(20):
            assert derive_seed(11, key) >= 0

    def test_derive_seed_varies(self):
        seeds = {derive_seed(42, "a", i) for i in range(50)}
        assert len(seeds) == 50
