"""Tests for the dfb metric and its accumulator."""

import pytest

from repro.experiments.dfb import DfbAccumulator, dfb_for_instance


class TestDfbForInstance:
    def test_best_gets_zero(self):
        dfb = dfb_for_instance({"a": 100, "b": 150})
        assert dfb["a"] == 0.0
        assert dfb["b"] == pytest.approx(50.0)

    def test_ties_all_zero(self):
        dfb = dfb_for_instance({"a": 80, "b": 80, "c": 80})
        assert all(v == 0.0 for v in dfb.values())

    def test_percentage_definition(self):
        dfb = dfb_for_instance({"a": 200, "b": 230})
        assert dfb["b"] == pytest.approx(15.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dfb_for_instance({})

    def test_rejects_nonpositive_makespan(self):
        with pytest.raises(ValueError):
            dfb_for_instance({"a": 0})


class TestAccumulator:
    def test_average_and_wins(self):
        acc = DfbAccumulator()
        acc.add_instance(("i1",), {"a": 100, "b": 110})
        acc.add_instance(("i2",), {"a": 120, "b": 100})
        assert acc.instance_count == 2
        assert acc.average_dfb("a") == pytest.approx(10.0)  # (0 + 20)/2
        assert acc.average_dfb("b") == pytest.approx(5.0)   # (10 + 0)/2
        assert acc.wins("a") == 1
        assert acc.wins("b") == 1

    def test_tie_counts_win_for_all(self):
        acc = DfbAccumulator()
        acc.add_instance(("i",), {"a": 100, "b": 100})
        assert acc.wins("a") == 1
        assert acc.wins("b") == 1

    def test_heuristics_sorted_best_first(self):
        acc = DfbAccumulator()
        acc.add_instance(("i",), {"bad": 300, "good": 100, "mid": 200})
        assert acc.heuristics() == ["good", "mid", "bad"]

    def test_table_rows(self):
        acc = DfbAccumulator()
        acc.add_instance(("i",), {"a": 100, "b": 150})
        rows = acc.table()
        assert rows[0] == ("a", 0.0, 1)
        assert rows[1][0] == "b"
        assert rows[1][1] == pytest.approx(50.0)

    def test_winners_property(self):
        acc = DfbAccumulator()
        result = acc.add_instance(("i",), {"a": 100, "b": 150, "c": 100})
        assert sorted(result.winners) == ["a", "c"]

    def test_unknown_heuristic_raises(self):
        acc = DfbAccumulator()
        with pytest.raises(KeyError):
            acc.average_dfb("nope")

    def test_dfb_values_list(self):
        acc = DfbAccumulator()
        acc.add_instance(("i1",), {"a": 100, "b": 110})
        acc.add_instance(("i2",), {"a": 100, "b": 120})
        assert acc.dfb_values("b") == pytest.approx([10.0, 20.0])
        assert acc.dfb_values("missing") == []

    def test_every_instance_has_a_winner(self):
        acc = DfbAccumulator()
        for i in range(10):
            acc.add_instance((i,), {"a": 100 + i, "b": 105, "c": 103})
        total_wins = acc.wins("a") + acc.wins("b") + acc.wins("c")
        assert total_wins >= acc.instance_count


def _accumulator(*instances):
    acc = DfbAccumulator()
    for key, makespans in instances:
        acc.add_instance(key, makespans)
    return acc


class TestAccumulatorMerge:
    def test_merge_matches_streaming(self):
        a = _accumulator((("i1",), {"x": 100, "y": 110}))
        b = _accumulator((("i2",), {"x": 130, "y": 100}))
        both = _accumulator(
            (("i1",), {"x": 100, "y": 110}), (("i2",), {"x": 130, "y": 100})
        )
        assert a.merge(b) == both

    def test_merge_does_not_mutate_operands(self):
        a = _accumulator((("i1",), {"x": 100, "y": 110}))
        b = _accumulator((("i2",), {"x": 130, "y": 100}))
        a.merge(b)
        assert a.instance_count == 1
        assert b.instance_count == 1
        assert a.dfb_values("y") == [pytest.approx(10.0)]

    def test_empty_merge_identity(self):
        a = _accumulator((("i",), {"x": 100, "y": 150}))
        empty = DfbAccumulator()
        assert empty.merge(a) == a
        assert a.merge(empty) == a
        assert empty.merge(DfbAccumulator()) == DfbAccumulator()

    def test_associativity(self):
        a = _accumulator((("i1",), {"x": 100, "y": 110}))
        b = _accumulator((("i2",), {"x": 130, "y": 100}))
        c = _accumulator((("i3",), {"x": 100, "y": 100}))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_wins_and_counts_add(self):
        a = _accumulator((("i1",), {"x": 100, "y": 110}))
        b = _accumulator(
            (("i2",), {"x": 100, "y": 100}), (("i3",), {"x": 120, "y": 100})
        )
        merged = a.merge(b)
        assert merged.instance_count == 3
        assert merged.wins("x") == 2
        assert merged.wins("y") == 2

    def test_merge_disjoint_heuristic_populations(self):
        # Partial campaigns comparing different populations still merge;
        # each heuristic keeps only its own instances.
        a = _accumulator((("i1",), {"x": 100, "y": 110}))
        b = _accumulator((("i2",), {"z": 50}))
        merged = a.merge(b)
        assert merged.dfb_values("z") == [0.0]
        assert len(merged.dfb_values("x")) == 1
