"""Tests for the distributed campaign service (DESIGN.md §13).

Covers the wire protocol, the coordinator's lease/re-issue/dedupe
machinery, the ``distributed`` execution backend, and the full failure
matrix — every mode asserting the acceptance bar: merged statistics
bit-identical to a serial run.
"""

import json
import socket
import struct
import threading
import time

import pytest

from repro.experiments.backends import SerialBackend, make_backend
from repro.experiments.distributed import (
    CampaignCoordinator,
    CampaignWorker,
    CoordinatorKilled,
    DistributedBackend,
    FaultPlan,
    FaultyWorker,
    RemoteUnitError,
    WorkerCrashed,
    campaign_status,
    render_campaign_status,
    tear_journal,
    units_fingerprint,
)
from repro.experiments.distributed.wire import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    client_handshake,
    recv_msg,
    send_msg,
)
from repro.experiments.harness import (
    CampaignConfig,
    iter_work_units,
    run_campaign,
)
from repro.workload.scenarios import ScenarioGenerator

HEURISTICS = ("mct", "emct", "random")


@pytest.fixture(scope="module")
def scenarios():
    return [ScenarioGenerator(3).scenario(5, 5, 1, i) for i in range(3)]


@pytest.fixture(scope="module")
def config():
    return CampaignConfig(heuristics=HEURISTICS, trials=2)


@pytest.fixture(scope="module")
def units(scenarios, config):
    return list(iter_work_units(scenarios, config))


@pytest.fixture(scope="module")
def serial_result(scenarios, config):
    return run_campaign(scenarios, config, backend=SerialBackend())


def assert_bit_identical(result, serial_result):
    assert result.records == serial_result.records
    assert result.accumulator == serial_result.accumulator
    assert result.per_scenario == serial_result.per_scenario
    assert result.truncated_runs == serial_result.truncated_runs
    for name in HEURISTICS:
        assert result.accumulator.average_dfb_ci(
            name
        ) == serial_result.accumulator.average_dfb_ci(name)


# ---------------------------------------------------------------------------
# wire protocol


class TestWire:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_msg(a, {"type": "hello", "payload": [1, 2.5, ("x",)]})
            message = recv_msg(b)
            assert message == {"type": "hello", "payload": [1, 2.5, ("x",)]}
        finally:
            a.close()
            b.close()

    def test_eof_raises_connection_closed(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_msg(b)
        finally:
            b.close()

    def test_eof_mid_frame(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b"short")
            a.close()
            with pytest.raises(ConnectionClosed, match="unread"):
                recv_msg(b)
        finally:
            b.close()

    def test_non_dict_frame_rejected(self):
        import pickle

        a, b = socket.socketpair()
        try:
            payload = pickle.dumps(["not", "a", "dict"])
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="malformed"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_missing_type_rejected(self):
        import pickle

        a, b = socket.socketpair()
        try:
            payload = pickle.dumps({"no_type": 1})
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="malformed"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_announcement_refused(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 2**32 - 1))
            with pytest.raises(ProtocolError, match="refusing"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            payload = b"\x80\x05 garbage that is not a pickle"
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_msg(b)
        finally:
            a.close()
            b.close()


class TestHandshake:
    def test_version_mismatch_rejected_before_any_assignment(self, units):
        coordinator = CampaignCoordinator(units[:2]).start()
        try:
            sock = socket.create_connection(coordinator.address)
            try:
                send_msg(
                    sock,
                    {"type": "hello", "version": 999, "worker": "future"},
                )
                reply = recv_msg(sock)
                assert reply["type"] == "reject"
                assert "999" in reply["reason"]
            finally:
                sock.close()
            assert coordinator.stats.chunks_assigned == 0
        finally:
            coordinator.close()

    def test_client_handshake_raises_on_reject(self, units):
        coordinator = CampaignCoordinator(units[:2]).start()
        try:
            sock = socket.create_connection(coordinator.address)
            try:
                # Not a hello at all → coordinator rejects the session.
                send_msg(sock, {"type": "request"})
                with pytest.raises(ProtocolError, match="refused"):
                    client_handshake(sock, worker_id="w")
            finally:
                sock.close()
        finally:
            coordinator.close()

    def test_welcome_advertises_heartbeat_and_total(self, units):
        coordinator = CampaignCoordinator(
            units[:3], lease_timeout=9.0
        ).start()
        try:
            sock = socket.create_connection(coordinator.address)
            try:
                welcome = client_handshake(sock, worker_id="w")
                assert welcome["version"] == PROTOCOL_VERSION
                assert welcome["units_total"] == 3
                assert welcome["heartbeat"] == pytest.approx(3.0)
            finally:
                sock.close()
        finally:
            coordinator.close()


# ---------------------------------------------------------------------------
# registry / backend basics


class TestBackendRegistry:
    def test_make_backend_resolves_lazily(self):
        backend = make_backend("distributed", jobs=2)
        assert isinstance(backend, DistributedBackend)
        assert backend.jobs == 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            DistributedBackend(0)
        with pytest.raises(ValueError):
            CampaignCoordinator([], lease_timeout=0)
        with pytest.raises(ValueError):
            CampaignCoordinator([], chunk_size=0)
        with pytest.raises(ValueError):
            CampaignCoordinator([], shards=0)

    def test_empty_unit_list_is_a_noop(self):
        assert list(DistributedBackend(jobs=2).run([])) == []

    def test_fingerprint_for_campaign_units(self, units):
        fp = units_fingerprint(units)
        assert fp["units"] == len(units)
        assert fp == units_fingerprint(list(units))  # deterministic
        assert units_fingerprint([object()]) is None  # generic units


class TestDistributedEqualsSerial:
    """The acceptance bar, healthy path."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(jobs=2),
            dict(jobs=4, chunk_size=1),
            dict(jobs=3, chunk_size=4),
        ],
        ids=["guided-2", "chunk1-4", "chunk4-3"],
    )
    def test_bit_identical(self, scenarios, config, serial_result, kwargs):
        backend = DistributedBackend(**kwargs)
        result = run_campaign(scenarios, config, backend=backend)
        assert_bit_identical(result, serial_result)
        stats = backend.last_stats
        assert stats.units_executed == len(serial_result.records)
        assert stats.duplicates_dropped == 0

    def test_work_is_actually_distributed(self, scenarios, config):
        backend = DistributedBackend(jobs=2, chunk_size=1)
        run_campaign(scenarios, config, backend=backend)
        # Pull-based stealing: with single-unit chunks both local workers
        # get at least one unit (neither can grab the whole queue).
        assert len(backend.last_stats.per_worker) == 2

    def test_checkpointed_run_then_full_restore(
        self, tmp_path, scenarios, config, serial_result
    ):
        ckpt = tmp_path / "camp"
        first = run_campaign(
            scenarios,
            config,
            backend=DistributedBackend(jobs=2, checkpoint_dir=ckpt),
        )
        assert_bit_identical(first, serial_result)
        backend = DistributedBackend(jobs=2, checkpoint_dir=ckpt)
        again = run_campaign(scenarios, config, backend=backend)
        assert_bit_identical(again, serial_result)
        assert backend.last_stats.units_restored == len(serial_result.records)
        assert backend.last_stats.units_executed == 0

    def test_different_campaign_rejected_by_shard_journals(
        self, tmp_path, scenarios, config
    ):
        ckpt = tmp_path / "camp"
        run_campaign(
            scenarios,
            config,
            backend=DistributedBackend(jobs=2, checkpoint_dir=ckpt),
        )
        other = [ScenarioGenerator(9).scenario(5, 5, 1, i) for i in range(3)]
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(
                other,
                config,
                backend=DistributedBackend(jobs=2, checkpoint_dir=ckpt),
            )

    def test_checkpoint_requires_campaign_units(self, tmp_path):
        backend = DistributedBackend(jobs=2, checkpoint_dir=tmp_path / "c")
        with pytest.raises(ValueError, match="instance_key"):
            list(backend.run([object()]))


# ---------------------------------------------------------------------------
# failure matrix — each mode must leave statistics bit-identical to serial


def _collect_results(coordinator, collected, errors):
    try:
        for index, outcome in coordinator.results():
            collected[index] = outcome
    except BaseException as exc:  # noqa: BLE001 - surfaced to the test
        errors.append(exc)


class TestCrashMidUnit:
    def test_crashed_lease_is_reissued_and_result_unchanged(
        self, units, serial_result
    ):
        # Deterministic choreography: the faulty worker runs *alone*,
        # crashes while delivering its first executed unit, and only then
        # does the rescue worker connect — the re-issue is guaranteed,
        # not a scheduling accident.
        coordinator = CampaignCoordinator(
            units, chunk_size=2, lease_timeout=30.0
        ).start()
        collected, errors = {}, []
        consumer = threading.Thread(
            target=_collect_results,
            args=(coordinator, collected, errors),
            daemon=True,
        )
        consumer.start()
        try:
            faulty = FaultyWorker(
                coordinator.address,
                plan=FaultPlan(crash_before_delivery=0),
                worker_id="crash",
            )
            with pytest.raises(WorkerCrashed):
                faulty.run()
            deadline = time.time() + 5.0
            while (
                coordinator.stats.worker_disconnects == 0
                and time.time() < deadline
            ):
                time.sleep(0.01)
            assert coordinator.stats.worker_disconnects == 1
            assert coordinator.stats.reissues >= 1
            rescue = CampaignWorker(coordinator.address, worker_id="rescue")
            rescue.run()
            consumer.join(timeout=10.0)
            assert not consumer.is_alive()
        finally:
            coordinator.close()
        assert not errors
        assert sorted(collected) == list(range(len(units)))
        makespans = [
            collected[i].makespans for i in range(len(units))
        ]
        assert makespans == [m for _k, m in serial_result.records]
        # The crashed unit was executed again — but entered the stream once.
        assert coordinator.stats.units_executed == len(units)
        assert coordinator.stats.per_worker == {"rescue": len(units)}

    def test_backend_level_crash_is_survived(
        self, scenarios, config, serial_result
    ):
        # Whole-stack version: slot 0 crashes on its first delivery; the
        # rescue worker waits for the disconnect before connecting.
        backend_box = {}

        class LateRescue(CampaignWorker):
            def run(self):
                stats = backend_box["backend"].last_stats
                deadline = time.time() + 5.0
                while (
                    stats.worker_disconnects == 0 and time.time() < deadline
                ):
                    time.sleep(0.01)
                return super().run()

        def factory(address, slot):
            if slot == 0:
                return FaultyWorker(
                    address,
                    plan=FaultPlan(crash_before_delivery=0),
                    worker_id="crash",
                )
            return LateRescue(address, worker_id="rescue")

        backend = DistributedBackend(
            jobs=2, chunk_size=2, worker_factory=factory
        )
        backend_box["backend"] = backend
        result = run_campaign(scenarios, config, backend=backend)
        assert_bit_identical(result, serial_result)
        assert backend.last_stats.worker_disconnects >= 1
        assert backend.last_stats.reissues >= 1


class TestDuplicateDelivery:
    def test_duplicates_are_counted_and_dropped(
        self, scenarios, config, serial_result
    ):
        def factory(address, slot):
            return FaultyWorker(
                address,
                plan=FaultPlan(duplicate_results=True),
                worker_id=f"dup-{slot}",
            )

        backend = DistributedBackend(
            jobs=2, chunk_size=3, worker_factory=factory
        )
        result = run_campaign(scenarios, config, backend=backend)
        assert_bit_identical(result, serial_result)
        assert backend.last_stats.duplicates_dropped >= 1
        assert backend.last_stats.units_executed == len(serial_result.records)

    def test_coordinator_dedupes_direct_double_accept(self, units):
        coordinator = CampaignCoordinator(units[:1])
        outcome = units[0].run()
        coordinator._accept_result("w", 0, 0, outcome)
        coordinator._accept_result("w", 0, 0, outcome)
        assert coordinator.stats.units_executed == 1
        assert coordinator.stats.duplicates_dropped == 1


class TestHangPastLease:
    def test_expired_lease_reissues_and_late_delivery_is_dropped(
        self, units, serial_result
    ):
        # The hanging worker goes silent past its lease while holding a
        # chunk; the consumer tick reaps the lease; the rescue worker
        # (started only after the expiry) re-executes; the hanging
        # worker's late delivery is deduplicated.
        coordinator = CampaignCoordinator(
            units, chunk_size=2, lease_timeout=0.3
        ).start()
        collected, errors = {}, []
        consumer = threading.Thread(
            target=_collect_results,
            args=(coordinator, collected, errors),
            daemon=True,
        )
        consumer.start()
        hang = FaultyWorker(
            coordinator.address,
            plan=FaultPlan(hang_before_delivery=0, hang_seconds=1.5),
            worker_id="hang",
        )
        hang_thread = threading.Thread(target=hang.run, daemon=True)
        hang_thread.start()
        try:
            deadline = time.time() + 5.0
            while (
                coordinator.stats.lease_expiries == 0
                and time.time() < deadline
            ):
                time.sleep(0.01)
            assert coordinator.stats.lease_expiries >= 1
            assert coordinator.stats.reissues >= 1
            rescue = CampaignWorker(coordinator.address, worker_id="rescue")
            rescue.run()
            # Let the hanging worker wake up and deliver late while the
            # coordinator is still alive.
            hang_thread.join(timeout=10.0)
            consumer.join(timeout=10.0)
            assert not consumer.is_alive()
        finally:
            coordinator.close()
        assert not errors
        assert sorted(collected) == list(range(len(units)))
        makespans = [collected[i].makespans for i in range(len(units))]
        assert makespans == [m for _k, m in serial_result.records]
        assert coordinator.stats.duplicates_dropped >= 1
        assert coordinator.stats.units_executed == len(units)

    def test_backend_level_hang_is_survived(
        self, scenarios, config, serial_result
    ):
        backend_box = {}

        class LateRescue(CampaignWorker):
            def run(self):
                stats = backend_box["backend"].last_stats
                deadline = time.time() + 5.0
                while stats.lease_expiries == 0 and time.time() < deadline:
                    time.sleep(0.01)
                return super().run()

        def factory(address, slot):
            if slot == 0:
                return FaultyWorker(
                    address,
                    plan=FaultPlan(hang_before_delivery=0, hang_seconds=1.2),
                    worker_id="hang",
                )
            return LateRescue(address, worker_id="rescue")

        backend = DistributedBackend(
            jobs=2,
            chunk_size=2,
            lease_timeout=0.3,
            worker_factory=factory,
        )
        backend_box["backend"] = backend
        result = run_campaign(scenarios, config, backend=backend)
        assert_bit_identical(result, serial_result)
        assert backend.last_stats.lease_expiries >= 1
        assert backend.last_stats.reissues >= 1


class TestCoordinatorKillAndResume:
    def test_kill_then_resume_is_bit_identical(
        self, tmp_path, scenarios, config, serial_result
    ):
        ckpt = tmp_path / "camp"
        killed = DistributedBackend(
            jobs=2, chunk_size=1, checkpoint_dir=ckpt, stop_after_units=3
        )
        with pytest.raises(CoordinatorKilled):
            run_campaign(scenarios, config, backend=killed)
        assert killed.last_stats.units_executed == 3

        resumed_backend = DistributedBackend(
            jobs=2, chunk_size=1, checkpoint_dir=ckpt
        )
        resumed = run_campaign(scenarios, config, backend=resumed_backend)
        assert_bit_identical(resumed, serial_result)
        stats = resumed_backend.last_stats
        # No unit enters the merged statistics twice: restored + executed
        # partition the campaign exactly.
        assert stats.units_restored == 3
        assert stats.units_restored + stats.units_executed == len(
            serial_result.records
        )

    def test_torn_shard_between_kill_and_resume(
        self, tmp_path, scenarios, config, serial_result
    ):
        from repro.experiments.persistence import (
            discover_shards,
            read_journal_entries,
        )

        ckpt = tmp_path / "camp"
        killed = DistributedBackend(
            jobs=2, chunk_size=1, checkpoint_dir=ckpt, stop_after_units=3
        )
        with pytest.raises(CoordinatorKilled):
            run_campaign(scenarios, config, backend=killed)
        # Simulate the kill landing mid-append: tear one shard journal.
        victim = next(
            path
            for path in discover_shards(ckpt)
            if read_journal_entries(path)
        )
        before = len(read_journal_entries(victim))
        tear_journal(victim)
        assert len(read_journal_entries(victim)) == before - 1

        resumed_backend = DistributedBackend(
            jobs=2, chunk_size=1, checkpoint_dir=ckpt
        )
        resumed = run_campaign(scenarios, config, backend=resumed_backend)
        assert_bit_identical(resumed, serial_result)
        stats = resumed_backend.last_stats
        assert stats.units_restored == 2  # exactly the torn entry re-runs
        assert stats.units_restored + stats.units_executed == len(
            serial_result.records
        )

    def test_kill_does_not_stall_surviving_workers(
        self, tmp_path, scenarios, config
    ):
        # close() drops live worker connections, so the backend's
        # cluster.join() returns promptly after a kill.
        backend = DistributedBackend(
            jobs=2,
            chunk_size=1,
            checkpoint_dir=tmp_path / "camp",
            stop_after_units=2,
        )
        started = time.time()
        with pytest.raises(CoordinatorKilled):
            run_campaign(scenarios, config, backend=backend)
        assert time.time() - started < 8.0


class TestWorkerErrorsAndLiveness:
    def test_remote_unit_error_propagates_with_traceback(self):
        backend = DistributedBackend(jobs=2)
        with pytest.raises(RemoteUnitError, match="boom-unit"):
            list(backend.run([_ExplodingUnit()]))

    def test_all_workers_dead_raises_instead_of_hanging(
        self, scenarios, config
    ):
        def factory(address, slot):
            return FaultyWorker(
                address,
                plan=FaultPlan(crash_before_delivery=0),
                worker_id=f"crash-{slot}",
            )

        backend = DistributedBackend(
            jobs=2, chunk_size=1, lease_timeout=0.3, worker_factory=factory
        )
        with pytest.raises(RuntimeError, match="no live workers"):
            run_campaign(scenarios, config, backend=backend)


class _ExplodingUnit:
    """A picklable unit whose run() always raises."""

    def run(self):
        raise ValueError("boom-unit")


# ---------------------------------------------------------------------------
# campaign-status


class TestCampaignStatus:
    def test_finished_campaign(self, tmp_path, scenarios, config):
        ckpt = tmp_path / "camp"
        run_campaign(
            scenarios,
            config,
            backend=DistributedBackend(jobs=2, checkpoint_dir=ckpt),
        )
        summary = campaign_status(ckpt)
        total = len(scenarios) * config.trials
        assert summary["total"] == total
        assert summary["done"] == total
        assert summary["pending"] == 0
        assert summary["finished"] is True
        assert summary["workers"]  # journal carries worker provenance
        assert sum(w["units"] for w in summary["workers"].values()) == total
        text = render_campaign_status(summary)
        assert "state: finished" in text
        assert f"{total}/{total} units done" in text
        json.dumps(summary)  # JSON-safe for --json output

    def test_killed_campaign_reports_pending(self, tmp_path, scenarios, config):
        ckpt = tmp_path / "camp"
        backend = DistributedBackend(
            jobs=2, chunk_size=1, checkpoint_dir=ckpt, stop_after_units=3
        )
        with pytest.raises(CoordinatorKilled):
            run_campaign(scenarios, config, backend=backend)
        summary = campaign_status(ckpt)
        total = len(scenarios) * config.trials
        assert summary["total"] == total
        assert summary["done"] == 3
        assert summary["finished"] is False
        assert "state: finished" not in render_campaign_status(summary)

    def test_journals_without_manifest(self, tmp_path, scenarios, config):
        from repro.experiments.persistence import ShardedCheckpoint

        base = tmp_path / "camp.ckpt"
        units = list(iter_work_units(scenarios, config))
        journal = ShardedCheckpoint(base, shards=2)
        journal.append(units[0].instance_key, {"mct": 1.0}, ())
        summary = campaign_status(tmp_path)
        assert summary["total"] is None
        assert summary["done"] == 1
        assert "total unknown" in render_campaign_status(summary)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            campaign_status(tmp_path / "nope")


# ---------------------------------------------------------------------------
# CLI plumbing


class TestCli:
    def test_parser_accepts_service_commands(self):
        from repro.experiments.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "coordinator",
                "--study", "table2",
                "--bind", "127.0.0.1:0",
                "--local-workers", "2",
                "--scenarios", "1",
                "--trials", "1",
                "--checkpoint-dir", "/tmp/x",
                "--shards", "2",
            ]
        )
        assert args.command == "coordinator"
        assert args.local_workers == 2
        args = parser.parse_args(["worker", "--connect", "localhost:9999"])
        assert args.command == "worker"
        args = parser.parse_args(["campaign-status", "some/dir", "--json"])
        assert args.command == "campaign-status"
        assert args.json is True

    def test_parse_address(self):
        from repro.experiments.cli import _parse_address

        assert _parse_address("127.0.0.1:80") == ("127.0.0.1", 80)
        with pytest.raises(SystemExit):
            _parse_address("no-port")
        with pytest.raises(SystemExit):
            _parse_address(":1234")

    def test_backend_choice_includes_distributed(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["table2", "--backend", "distributed", "--jobs", "2"]
        )
        assert args.backend == "distributed"

    def test_coordinator_command_runs_local_campaign(self, tmp_path, capsys):
        from repro.experiments.cli import main

        code = main(
            [
                "coordinator",
                "--study", "table2",
                "--scenarios", "1",
                "--trials", "1",
                "--wmin", "1",
                "--local-workers", "2",
                "--checkpoint-dir", str(tmp_path / "camp"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "coordinator listening on" in captured.err
        assert "campaign complete" in captured.err
        assert "dfb" in captured.out  # the rendered table made it out

    def test_campaign_status_command(self, tmp_path, scenarios, config, capsys):
        from repro.experiments.cli import main

        ckpt = tmp_path / "camp"
        run_campaign(
            scenarios,
            config,
            backend=DistributedBackend(jobs=2, checkpoint_dir=ckpt),
        )
        assert main(["campaign-status", str(ckpt)]) == 0
        assert "state: finished" in capsys.readouterr().out
        assert main(["campaign-status", str(ckpt), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["finished"] is True


# ---------------------------------------------------------------------------
# true external deployment (separate worker session over TCP)


class TestExternalMode:
    def test_external_worker_session(self, units, serial_result):
        addresses = []
        backend = DistributedBackend(
            external=True,
            chunk_size=2,
            on_listening=addresses.append,
        )
        collected = {}

        def consume():
            for index, outcome in backend.run(units):
                collected[index] = outcome

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        deadline = time.time() + 5.0
        while not addresses and time.time() < deadline:
            time.sleep(0.01)
        assert addresses, "coordinator never announced its address"
        worker = CampaignWorker(addresses[0], worker_id="external-1")
        stats = worker.run()
        consumer.join(timeout=10.0)
        assert not consumer.is_alive()
        # The final ack may be cut off by the coordinator closing the
        # moment the last result lands, so the worker's own counter can
        # trail by one — the authoritative count is the collected set.
        assert stats.units_done >= len(units) - 1
        assert sorted(collected) == list(range(len(units)))
        makespans = [collected[i].makespans for i in range(len(units))]
        assert makespans == [m for _k, m in serial_result.records]
