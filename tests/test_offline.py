"""Tests for the offline toolkit: instances, MCT, exact solver, counterexample."""

import numpy as np
import pytest

from repro.core.offline.counterexample import (
    analyze,
    extended_counterexample,
    paper_counterexample,
)
from repro.core.offline.exact import exact_offline_makespan
from repro.core.offline.instance import OfflineInstance, eliminate_down_states
from repro.core.offline.mct import offline_mct, pipeline_completion_slot
from repro.types import ProcState


def make_instance(rows, *, t_prog=1, t_data=1, speeds=1, ncom=1, m=1):
    return OfflineInstance.from_codes(
        rows, t_prog=t_prog, t_data=t_data, speeds=speeds, ncom=ncom, m=m
    )


class TestOfflineInstance:
    def test_from_codes(self):
        inst = make_instance(["uur", "rdu"])
        assert inst.p == 2
        assert inst.horizon == 3
        assert inst.state(1, 1) == ProcState.DOWN

    def test_pads_reclaimed_beyond_horizon(self):
        inst = make_instance(["uu"])
        assert inst.state(0, 99) == ProcState.RECLAIMED

    def test_heterogeneous_speeds(self):
        inst = make_instance(["uu", "uu"], speeds=[1, 3])
        assert inst.speeds == (1, 3)
        assert not inst.is_homogeneous

    def test_speed_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="speeds"):
            OfflineInstance(
                traces=np.zeros((2, 3), dtype=np.uint8),
                t_prog=1, t_data=1, speeds=(1,), ncom=1, m=1,
            )

    def test_uneven_rows_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            make_instance(["uu", "u"])

    def test_bad_state_values_rejected(self):
        with pytest.raises(ValueError, match="ProcState"):
            OfflineInstance(
                traces=np.array([[0, 7]], dtype=np.uint8),
                t_prog=1, t_data=1, speeds=(1,), ncom=1, m=1,
            )


class TestDownElimination:
    def test_removes_all_down_states(self):
        inst = make_instance(["udu", "ddr"])
        out = eliminate_down_states(inst)
        assert not np.any(out.traces == int(ProcState.DOWN))

    def test_no_down_is_identity_sized(self):
        inst = make_instance(["uru", "rru"])
        out = eliminate_down_states(inst)
        assert out.p == inst.p
        assert np.array_equal(out.traces, inst.traces)

    def test_split_structure(self):
        inst = make_instance(["udu"])
        out = eliminate_down_states(inst)
        assert out.p == 2
        # Before-processor: matches prefix, reclaimed from crash on.
        assert list(out.traces[0]) == [0, 1, 1]
        # After-processor: reclaimed through the crash, then the suffix.
        assert list(out.traces[1]) == [1, 1, 0]

    def test_speeds_duplicated(self):
        inst = make_instance(["udu", "uuu"], speeds=[3, 5])
        out = eliminate_down_states(inst)
        assert out.speeds == (3, 5, 3)

    @pytest.mark.parametrize("seed", range(6))
    def test_preserves_optimal_makespan(self, seed):
        # The paper's equivalence claim, checked by brute force on small
        # random instances.
        rng = np.random.default_rng(seed)
        rows = [
            "".join(rng.choice(list("uurd"), size=8)) for _ in range(2)
        ]
        inst = make_instance(rows, t_prog=1, t_data=0, speeds=1, ncom=1, m=2)
        original = exact_offline_makespan(inst).makespan
        transformed = exact_offline_makespan(eliminate_down_states(inst)).makespan
        assert original == transformed


class TestPipelineWalker:
    def test_always_up(self):
        inst = make_instance(["u" * 20], t_prog=3, t_data=2, speeds=2, m=2)
        # prog 0-2, data 3-4, comp 5-6 -> slot 6 for one task.
        assert pipeline_completion_slot(inst, 0, 1) == 6
        # second task: data 5-6 overlapped, comp 7-8 -> slot 8.
        assert pipeline_completion_slot(inst, 0, 2) == 8

    def test_zero_tasks(self):
        inst = make_instance(["u" * 5])
        assert pipeline_completion_slot(inst, 0, 0) == -1

    def test_reclaimed_slots_skipped(self):
        inst = make_instance(["ururu" + "u" * 10], t_prog=1, t_data=1, speeds=1)
        # prog slot 0, data slot 2 (slot 1 reclaimed), comp slot 4.
        assert pipeline_completion_slot(inst, 0, 1) == 4

    def test_zero_t_data(self):
        inst = make_instance(["u" * 10], t_prog=2, t_data=0, speeds=1, m=3)
        # prog 0-1, then one task per slot starting slot 2.
        assert pipeline_completion_slot(inst, 0, 3) == 4

    def test_infeasible_returns_none(self):
        inst = make_instance(["ur"], t_prog=1, t_data=1, speeds=5)
        assert pipeline_completion_slot(inst, 0, 1) is None

    def test_rejects_negative(self):
        inst = make_instance(["u"])
        with pytest.raises(ValueError):
            pipeline_completion_slot(inst, 0, -1)


class TestOfflineMct:
    def test_balances_identical_processors(self):
        inst = make_instance(
            ["u" * 30, "u" * 30], t_prog=1, t_data=1, speeds=1, ncom=None, m=4
        )
        result = offline_mct(inst)
        assert result.assignment == (2, 2)

    def test_prefers_fast_processor_for_single_task(self):
        inst = make_instance(
            ["u" * 30, "u" * 30], t_prog=1, t_data=1, speeds=[5, 1],
            ncom=None, m=1,
        )
        result = offline_mct(inst)
        assert result.assignment == (0, 1)

    def test_infeasible_reports_none(self):
        inst = make_instance(["rr"], t_prog=1, t_data=0, speeds=1, m=1)
        assert offline_mct(inst).makespan is None

    @pytest.mark.parametrize("seed", range(8))
    def test_proposition2_mct_optimal_without_contention(self, seed):
        # Random small instances with ncom = infinity: MCT's makespan must
        # equal the exhaustive optimum (Proposition 2).
        rng = np.random.default_rng(100 + seed)
        rows = [
            "".join(rng.choice(list("uuur"), size=14)) for _ in range(2)
        ]
        speeds = [int(rng.integers(1, 3)) for _ in range(2)]
        inst = OfflineInstance.from_codes(
            rows, t_prog=int(rng.integers(0, 3)), t_data=int(rng.integers(0, 2)),
            speeds=speeds, ncom=None, m=int(rng.integers(1, 4)),
        )
        mct = offline_mct(inst).makespan
        exact = exact_offline_makespan(inst).makespan
        assert mct == exact

    @pytest.mark.parametrize("seed", range(6))
    def test_mct_relaxation_lower_bounds_contended_optimum(self, seed):
        # offline_mct ignores ncom by design: it optimally solves the
        # relaxed ncom = ∞ problem (Proposition 2), so its makespan can
        # never exceed the exact optimum of the contended instance.
        rng = np.random.default_rng(200 + seed)
        rows = ["".join(rng.choice(list("uur"), size=12)) for _ in range(2)]
        inst = OfflineInstance.from_codes(
            rows, t_prog=1, t_data=1, speeds=1, ncom=1, m=2,
        )
        exact = exact_offline_makespan(inst).makespan
        mct = offline_mct(inst).makespan
        if mct is not None and exact is not None:
            assert mct <= exact


class TestExactSolver:
    def test_single_processor_single_task(self):
        inst = make_instance(["u" * 10], t_prog=1, t_data=1, speeds=2)
        # prog 0, data 1, comp 2-3 -> makespan 4.
        assert exact_offline_makespan(inst).makespan == 4

    def test_channel_sharing_forces_serialisation(self):
        # Two identical processors, ncom=1, Tprog=1, Tdata=0, w=1, m=2:
        # prog P0 slot 0, prog P1 slot 1, P0 computes slot 1, P1 slot 2.
        inst = make_instance(
            ["u" * 10, "u" * 10], t_prog=1, t_data=0, speeds=1, ncom=1, m=2
        )
        assert exact_offline_makespan(inst).makespan == 3

    def test_unbounded_channel_parallelises(self):
        inst = make_instance(
            ["u" * 10, "u" * 10], t_prog=1, t_data=0, speeds=1, ncom=None, m=2
        )
        assert exact_offline_makespan(inst).makespan == 2

    def test_infeasible(self):
        inst = make_instance(["rrr"], t_prog=1, t_data=0, speeds=1)
        assert exact_offline_makespan(inst).makespan is None

    def test_waiting_can_beat_greedy(self):
        # The paper's counterexample needs the solver to idle the channel.
        result = exact_offline_makespan(paper_counterexample())
        assert result.makespan == 9

    def test_allow_abandon_never_hurts(self):
        inst = paper_counterexample()
        plain = exact_offline_makespan(inst).makespan
        with_abandon = exact_offline_makespan(inst, allow_abandon=True).makespan
        assert with_abandon <= plain

    def test_state_limit_guard(self):
        inst = make_instance(
            ["u" * 12] * 4, t_prog=3, t_data=2, speeds=3, ncom=2, m=4
        )
        with pytest.raises(MemoryError):
            exact_offline_makespan(inst, state_limit=10)

    def test_down_wipes_pipeline(self):
        # Program received slots 0-1, crash at 2 wipes it; resend 3-4,
        # data 5, compute 6 -> makespan 7.
        inst = make_instance(
            ["uud" + "u" * 10], t_prog=2, t_data=1, speeds=1
        )
        assert exact_offline_makespan(inst).makespan == 7


class TestCounterexample:
    def test_paper_instance_parameters(self):
        inst = paper_counterexample()
        assert inst.p == 2
        assert inst.t_prog == 2 and inst.t_data == 2
        assert inst.speeds == (2, 2)
        assert inst.ncom == 1 and inst.m == 2
        assert inst.horizon == 9

    def test_analysis_reproduces_paper(self):
        result = analyze()
        assert result.optimal_makespan == 9
        assert result.mct_online_makespan > 9
        assert result.mct_first_choice_processor == 0  # P1 in paper indexing

    def test_extended_instance_longer(self):
        assert extended_counterexample(4).horizon == 13

    def test_extended_rejects_negative(self):
        with pytest.raises(ValueError):
            extended_counterexample(-1)

    def test_optimal_unchanged_by_extension(self):
        # Extra trailing UP slots cannot improve on 9.
        result = exact_offline_makespan(extended_counterexample(6))
        assert result.makespan == 9
