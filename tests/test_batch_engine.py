"""Batch cohort engine equivalence suite (DESIGN.md §11).

The batch engine's contract is *bit-identity per run*: reports, event
logs and network audit trails must match the per-run oracle exactly,
regardless of cohort composition, cohort size R, demotions, or the
admission width.  Everything here compares the two paths on identical
(scenario, trial, heuristic) instances.

Also covers the engine's substrate from this PR: the batched Markov
trace sampler, shared-trace views, the fused source extension, the
persistent score-row cache, and the ``spawn_run_streams`` derivation
helper.
"""

import numpy as np
import pytest

from repro.core.heuristics.registry import available_heuristics, make_scheduler
from repro.core.markov import MarkovAvailabilityModel
from repro.rng import RngFactory, spawn_run_streams
from repro.sim.availability import (
    MarkovSource,
    TraceView,
    extend_markov_sources,
)
from repro.sim.batch_engine import (
    BatchCampaignRunner,
    BatchRunSpec,
    CohortDivergence,
)
from repro.sim.events import EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.workload.scenarios import ScenarioGenerator


MODEL = MarkovAvailabilityModel.from_self_loops(0.9, 0.5, 0.8)


def _rng(seed):
    # Accepts mixed str/int keys; crc32 keeps the mapping stable across
    # interpreter runs (unlike hash()).
    import zlib

    return np.random.default_rng(zlib.crc32(repr(seed).encode()))


def _reference_run(scenario, spec, log=None):
    """The untouched per-run oracle for one spec."""
    platform = scenario.build_platform(spec.trial)
    sim = MasterSimulator(
        platform,
        scenario.app,
        make_scheduler(spec.heuristic, platform=platform),
        options=spec.options,
        rng=scenario.scheduler_rng(spec.trial, spec.heuristic),
        log=log,
    )
    return sim.run(max_slots=spec.max_slots)


def _assert_reports_equal(got, ref, context=""):
    assert got.makespan == ref.makespan, context
    assert got.slots_simulated == ref.slots_simulated, context
    assert got.completed_iterations == ref.completed_iterations, context
    assert got.scheduler_rounds == ref.scheduler_rounds, context


class TestSampleTraceBatch:
    """The batched walk is draw-for-draw the scalar sampler."""

    @pytest.mark.parametrize("seed", range(30))
    def test_matches_scalar_calls(self, seed):
        lengths = [1, 2, 17, 400]
        batch = MODEL.sample_trace_batch(
            lengths, [_rng((seed, i)) for i in range(len(lengths))]
        )
        for i, length in enumerate(lengths):
            scalar = MODEL.sample_trace(length, _rng((seed, i)))
            np.testing.assert_array_equal(batch[i], scalar)

    def test_initial_states_respected(self):
        batch = MODEL.sample_trace_batch(
            [50, 50], [_rng(1), _rng(2)], initials=[0, 2]
        )
        assert batch[0][0] == 0 and batch[1][0] == 2
        np.testing.assert_array_equal(
            batch[0], MODEL.sample_trace(50, _rng(1), initial=0)
        )

    def test_continue_trace_batch_matches_scalar(self):
        for seed in range(10):
            prefix = MODEL.sample_trace(20, _rng(("prefix", seed)))
            scalar = MODEL.continue_trace(int(prefix[-1]), 33, _rng(("tail", seed)))
            (batched,) = MODEL.continue_trace_batch(
                [int(prefix[-1])], [33], [_rng(("tail", seed))]
            )
            np.testing.assert_array_equal(batched, scalar)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MODEL.sample_trace_batch([5, 5], [_rng(0)])


class TestExtendMarkovSources:
    """Fused pre-extension produces the traces on-demand growth would."""

    def _source_pair(self, seed):
        return (
            MarkovSource(MODEL, _rng(seed)),
            MarkovSource(MODEL, _rng(seed)),
        )

    def test_matches_on_demand_growth(self):
        batched, lazy = zip(*[self._source_pair(("s", i)) for i in range(4)])
        extend_markov_sources(list(batched), 500)
        for fused, reference in zip(batched, lazy):
            got = [fused.state_at(slot) for slot in range(500)]
            want = [reference.state_at(slot) for slot in range(500)]
            assert got == want

    def test_extension_after_partial_reads(self):
        batched, lazy = self._source_pair("partial")
        assert [batched.state_at(s) for s in range(40)] == [
            lazy.state_at(s) for s in range(40)
        ]
        extend_markov_sources([batched], 300)
        assert [batched.state_at(s) for s in range(300)] == [
            lazy.state_at(s) for s in range(300)
        ]

    def test_already_long_sources_untouched(self):
        source, _ = self._source_pair("long")
        source.state_at(99)
        before = source.slots_materialized
        extend_markov_sources([source], 50)
        assert source.slots_materialized == before

    def test_non_markov_rejected(self):
        with pytest.raises(TypeError):
            extend_markov_sources([object()], 10)


class TestTraceView:
    def test_reads_delegate_and_grow_base(self):
        base = MarkovSource(MODEL, _rng("view"))
        reference = MarkovSource(MODEL, _rng("view"))
        view_a, view_b = TraceView(base), TraceView(base)
        # Independent cursors, one storage: interleaved reads agree with
        # an untouched scalar source.
        for slot in (0, 10, 5, 200, 199, 1000):
            assert view_a.state_at(slot) == reference.state_at(slot)
            assert view_b.state_at(slot) == reference.state_at(slot)
        assert base.slots_materialized >= 1001
        assert view_a.storage_bytes() == 0  # storage belongs to the base

    def test_next_change_matches_base(self):
        base = MarkovSource(MODEL, _rng("spans"))
        reference = MarkovSource(MODEL, _rng("spans"))
        view = TraceView(base)
        view.state_at(400)
        reference.state_at(400)
        for slot in (0, 3, 50, 399):
            assert view.next_change_after(slot) == (
                reference.next_change_after(slot)
            )

    def test_requires_rle_base(self):
        with pytest.raises(TypeError):
            TraceView(object())


class TestBatchBitIdentity:
    """Cohort execution is invisible in every per-run observable."""

    def test_full_registry(self):
        scenario = ScenarioGenerator(4).scenario(5, 5, 2, 0)
        names = available_heuristics() + ["clairvoyant"]
        specs = [
            BatchRunSpec(scenario=scenario, trial=0, heuristic=name,
                         max_slots=50_000)
            for name in names
        ]
        logs = {}

        def log_factory(index, spec):
            logs[index] = EventLog()
            return logs[index]

        reports = BatchCampaignRunner(specs, log_factory=log_factory).run()
        for index, (spec, got) in enumerate(zip(specs, reports)):
            ref_log = EventLog()
            ref = _reference_run(scenario, spec, log=ref_log)
            _assert_reports_equal(got, ref, spec.heuristic)
            assert logs[index].events == ref_log.events, spec.heuristic

    @pytest.mark.parametrize("cohort", [1, 3, 8])
    def test_cohort_sizes_and_mixed_trials(self, cohort):
        scenario = ScenarioGenerator(7).scenario(8, 5, 3, 1)
        pool = [("mct", 0), ("emct*", 0), ("lw", 1), ("ud", 1),
                ("mct*", 2), ("emct", 2), ("random", 0), ("passive", 1)]
        specs = [
            BatchRunSpec(scenario=scenario, trial=trial, heuristic=heuristic,
                         max_slots=50_000)
            for heuristic, trial in pool[:cohort]
        ]
        reports = BatchCampaignRunner(specs).run()
        for spec, got in zip(specs, reports):
            _assert_reports_equal(
                got, _reference_run(scenario, spec), spec.heuristic
            )

    def test_both_objectives(self):
        # The deadline objective is the same machinery under a budget:
        # budget-limited runs compare completed iterations, not makespan.
        scenario = ScenarioGenerator(3).scenario(5, 5, 1, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=t, heuristic=h, max_slots=800)
            for t in (0, 1) for h in ("mct", "emct*")
        ]
        reports = BatchCampaignRunner(specs).run()
        for spec, got in zip(specs, reports):
            ref = _reference_run(scenario, spec)
            _assert_reports_equal(got, ref, spec.heuristic)

    def test_mixed_scenarios_share_nothing_across_keys(self):
        gen = ScenarioGenerator(9)
        first, second = gen.scenario(5, 5, 2, 0), gen.scenario(5, 10, 4, 1)
        specs = [
            BatchRunSpec(scenario=first, trial=0, heuristic="emct*",
                         max_slots=50_000),
            BatchRunSpec(scenario=second, trial=0, heuristic="emct*",
                         max_slots=50_000),
            BatchRunSpec(scenario=first, trial=1, heuristic="mct",
                         max_slots=50_000),
        ]
        reports = BatchCampaignRunner(specs).run()
        for spec, got in zip(specs, reports):
            _assert_reports_equal(
                got, _reference_run(spec.scenario, spec), spec.heuristic
            )


class TestDemotion:
    def test_static_demotion_slot_mode_and_audit(self):
        scenario = ScenarioGenerator(4).scenario(5, 5, 2, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=0, heuristic="emct*",
                         max_slots=50_000),
            BatchRunSpec(scenario=scenario, trial=0, heuristic="mct",
                         max_slots=50_000,
                         options=SimulatorOptions(step_mode="slot")),
            BatchRunSpec(scenario=scenario, trial=1, heuristic="lw",
                         max_slots=50_000,
                         options=SimulatorOptions(audit=True)),
        ]
        logs = {}

        def log_factory(index, spec):
            logs[index] = EventLog()
            return logs[index]

        runner = BatchCampaignRunner(specs, log_factory=log_factory)
        reports = runner.run()
        assert runner.demotions == 2
        for index, (spec, got) in enumerate(zip(specs, reports)):
            ref_log = EventLog()
            ref = _reference_run(scenario, spec, log=ref_log)
            _assert_reports_equal(got, ref, spec.heuristic)
            # The audit run's network trail lives in its event log —
            # identical including audit events.
            assert logs[index].events == ref_log.events, spec.heuristic

    def test_mid_cohort_divergence_finishes_standalone(self):
        scenario = ScenarioGenerator(4).scenario(5, 5, 2, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=0, heuristic="emct*",
                         max_slots=50_000),
            BatchRunSpec(scenario=scenario, trial=0, heuristic="mct",
                         max_slots=50_000),
        ]
        runner = BatchCampaignRunner(specs)

        admit = runner._admit

        def tripping_admit(index, spec, groups, donors):
            run = admit(index, spec, groups, donors)
            if spec.heuristic == "mct":
                # Stacked members run with no provider (their own calendar);
                # installing one drops the run to the sweep body path, which
                # is bit-identical, so the tripwire can gather the rows
                # itself when there is no inner provider to delegate to.
                inner = run.sim.states_provider
                sources = run.sim._avail
                calls = {"n": 0}

                def tripwire(slot):
                    calls["n"] += 1
                    if calls["n"] > 5:
                        raise CohortDivergence("test divergence")
                    if inner is not None:
                        return inner(slot)
                    return [source.state_at(slot) for source in sources]

                run.sim.states_provider = tripwire
            return run

        runner._admit = tripping_admit
        reports = runner.run()
        assert runner.demotions == 1
        for spec, got in zip(specs, reports):
            _assert_reports_equal(
                got, _reference_run(scenario, spec), spec.heuristic
            )

    def test_width_bounds_live_rows(self):
        scenario = ScenarioGenerator(5).scenario(5, 5, 2, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=trial, heuristic=heuristic,
                         max_slots=50_000)
            for trial in range(3)
            for heuristic in ("mct", "emct*")
        ]
        runner = BatchCampaignRunner(specs, width=2)
        reports = runner.run()
        # Six runs through two rows: the free list recycled rows.
        assert runner._row_clock.size <= 2
        for spec, got in zip(specs, reports):
            _assert_reports_equal(
                got, _reference_run(scenario, spec), spec.heuristic
            )


class TestHarnessEngine:
    def test_campaign_unit_batch_dispatch(self):
        from repro.experiments.harness import (
            CampaignConfig,
            iter_work_units,
            run_campaign,
        )

        scenarios = [ScenarioGenerator(3).scenario(5, 5, 1, i) for i in range(2)]
        base = CampaignConfig(heuristics=("mct", "emct*"), trials=2)
        batch = CampaignConfig(
            heuristics=("mct", "emct*"), trials=2, engine="batch"
        )
        a = run_campaign(scenarios, base)
        b = run_campaign(scenarios, batch)
        assert a.records == b.records
        assert a.accumulator == b.accumulator
        units = list(iter_work_units(scenarios, batch))
        assert all(unit.engine == "batch" for unit in units)

    def test_engine_validated(self):
        from repro.experiments.harness import CampaignConfig

        with pytest.raises(ValueError):
            CampaignConfig(heuristics=("mct",), engine="warp")


class TestPersistentScoreRows:
    """Satellite 1: cross-round score-row reuse is result-invisible."""

    @pytest.mark.parametrize("heuristic", ["mct", "emct*", "lw", "ud"])
    def test_stamped_path_matches_unstamped(self, heuristic):
        scenario = ScenarioGenerator(6).scenario(8, 5, 3, 0)
        reports = []
        for stamped in (True, False):
            platform = scenario.build_platform(0)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler(heuristic, platform=platform),
                rng=scenario.scheduler_rng(0, heuristic),
            )
            sim.round_state.stamped = stamped
            reports.append(sim.run(max_slots=100_000))
        _assert_reports_equal(reports[0], reports[1], heuristic)


class TestSpawnRunStreams:
    def test_deterministic_and_independent(self):
        a = spawn_run_streams(1234, 3)
        b = spawn_run_streams(1234, 3)
        assert len(a) == 3
        draws = set()
        for streams_a, streams_b in zip(a, b):
            for name in ("scheduler", "bootstrap", "availability"):
                x = float(getattr(streams_a, name).random())
                assert x == float(getattr(streams_b, name).random())
                draws.add(x)
        # 9 distinct streams -> 9 distinct first draws.
        assert len(draws) == 9

    def test_matches_named_factory_children(self):
        (streams,) = spawn_run_streams(77, 1)
        want = RngFactory(77).generator("run", 0, "sched")
        assert float(streams.scheduler.random()) == float(want.random())

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_run_streams(0, -1)
