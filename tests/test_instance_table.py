"""Structure-of-arrays instance store vs the legacy list store.

The PR-4 redesign gate (DESIGN.md §9): for every registry heuristic, the
simulator driven through ``instance_store="array"`` — the
:class:`~repro.sim.instance_table.InstanceTable` with incrementally
maintained aggregates, free-list row reuse and the vectorised body — must
produce **bit identical** reports, event logs, and network audit trails to
the preserved ``instance_store="legacy"`` list path, across both
objectives and both stepping modes.  Unit tests cover the table itself:
free-list reuse, aggregate/column invariants against a brute-force rebuild
(the same :meth:`InstanceTable.audit` the master's audit mode runs), and
the O(1) saturation/unpinned counters.
"""

import numpy as np
import pytest

from repro.core.heuristics.registry import (
    HEURISTIC_FACTORIES,
    PAPER_HEURISTICS,
    make_scheduler,
)
from repro.sim.events import EventLog
from repro.sim.instance_table import InstanceTable
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.worker import TaskInstance, reset_instance
from repro.workload.scenarios import ScenarioGenerator

ALL_HEURISTICS = sorted(HEURISTIC_FACTORIES) + ["clairvoyant"]


def run_store_pair(
    scenario,
    heuristic,
    *,
    trial=0,
    objective="run",
    budget=40_000,
    step_mode="span",
    options_kwargs=None,
    with_log=True,
):
    """Run the legacy and array instance stores on identical inputs."""
    outcomes = {}
    for store in ("legacy", "array"):
        platform = scenario.build_platform(trial)
        log = EventLog(enabled=with_log)
        options = SimulatorOptions(
            step_mode=step_mode,
            instance_store=store,
            **(options_kwargs or {}),
        )
        sim = MasterSimulator(
            platform,
            scenario.app,
            make_scheduler(heuristic, platform=platform),
            options=options,
            rng=scenario.scheduler_rng(trial, heuristic),
            log=log,
        )
        if objective == "run":
            report = sim.run(max_slots=budget)
        else:
            report = sim.run_slots(budget)
        outcomes[store] = (report, log.events, sim.network.usage)
    return outcomes


def assert_identical(outcomes):
    legacy_report, legacy_events, legacy_usage = outcomes["legacy"]
    array_report, array_events, array_usage = outcomes["array"]
    assert array_report == legacy_report
    assert array_events == legacy_events
    assert array_usage == legacy_usage


class TestInstanceTableUnit:
    """Direct table-contract tests (no simulator)."""

    @staticmethod
    def _inst(task_id, replica_id=0, iteration=0, data_needed=3):
        return TaskInstance(
            iteration=iteration,
            task_id=task_id,
            replica_id=replica_id,
            data_needed=data_needed,
        )

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            InstanceTable(0, 4, 3)
        with pytest.raises(ValueError):
            InstanceTable(4, 0, 3)
        with pytest.raises(ValueError):
            InstanceTable(4, 4, 0)

    def test_add_assigns_rows_and_aggregates(self):
        tbl = InstanceTable(3, 2, 3)
        insts = [self._inst(t) for t in range(3)]
        rows = [tbl.add(inst) for inst in insts]
        assert rows == sorted(rows)  # free list pops ascending after reset
        assert tbl.n_live == 3
        assert tbl.n_unpinned == 3
        assert tbl.repl_deficit == 3  # nobody saturated yet
        assert not tbl.replication_saturated
        tbl.audit(insts, committed=set())

    def test_free_list_reuse(self):
        tbl = InstanceTable(2, 2, 2)
        a, b = self._inst(0), self._inst(1)
        row_a = tbl.add(a)
        tbl.add(b)
        tbl.destroy(a)
        assert a.row == -1
        c = self._inst(0, replica_id=1)
        assert tbl.add(c) == row_a  # the freed row is recycled
        tbl.audit([b, c], committed=set())

    def test_grow_preserves_rows(self):
        tbl = InstanceTable(12, 2, 2, capacity=4)  # forces doubling
        insts = []
        for task in range(12):
            for rid in (0, 1):
                inst = self._inst(task, replica_id=rid)
                tbl.add(inst)
                insts.append(inst)
        assert len(tbl.task_id) >= 24  # grew past the initial 4 rows
        tbl.audit(insts, committed=set())
        # Rows allocated before the growth are untouched.
        for inst in insts:
            assert tbl.objects[inst.row] is inst

    def test_pin_and_release_track_unpinned_set(self):
        tbl = InstanceTable(2, 2, 2)
        inst = self._inst(0)
        row = tbl.add(inst)
        inst.worker = 1
        inst.data_received = 1  # pinned per the instance's own rule
        tbl.pin(inst)
        assert tbl.n_unpinned == 0
        assert row not in tbl.unpinned
        tbl.pin(inst)  # idempotent
        assert tbl.n_unpinned == 0
        reset_instance(inst)
        tbl.release(inst)
        assert tbl.n_unpinned == 1
        tbl.audit([inst], committed=set())

    def test_computing_row_lifecycle(self):
        tbl = InstanceTable(2, 3, 2)
        inst = self._inst(1)
        tbl.add(inst)
        inst.worker = 2
        inst.computing = True
        tbl.start_computing(inst)
        assert tbl.computing_row[2] == inst.row
        assert inst.pinned and tbl.n_unpinned == 0
        tbl.destroy(inst)  # destroy reads inst.worker for the rollback
        assert tbl.computing_row[2] == -1

    def test_saturation_counter(self):
        tbl = InstanceTable(2, 2, 2)  # 1 original + 1 replica saturates
        originals = [self._inst(t) for t in range(2)]
        for inst in originals:
            tbl.add(inst)
        replicas = [self._inst(t, replica_id=1) for t in range(2)]
        tbl.add(replicas[0])
        assert not tbl.replication_saturated
        tbl.add(replicas[1])
        assert tbl.replication_saturated
        tbl.destroy(replicas[0])
        assert not tbl.replication_saturated
        # A committed task stops counting toward the deficit.
        tbl.commit_task(0)
        assert tbl.replication_saturated
        tbl.audit([originals[0], originals[1], replicas[1]], committed={0})

    def test_free_replica_id_lowest_gap(self):
        tbl = InstanceTable(1, 1, 3)
        orig = self._inst(0)
        r1 = self._inst(0, replica_id=1)
        r2 = self._inst(0, replica_id=2)
        for inst in (orig, r1, r2):
            tbl.add(inst)
        tbl.destroy(r1)
        assert tbl.free_replica_id(0) == 1
        tbl.destroy(r2)
        assert tbl.free_replica_id(0) == 1

    def test_rows_of_preserves_creation_order(self):
        tbl = InstanceTable(1, 1, 3)
        orig = self._inst(0)
        r2 = self._inst(0, replica_id=2)
        r1 = self._inst(0, replica_id=1)
        for inst in (orig, r2, r1):
            tbl.add(inst)
        uids = [tbl.seq[row] for row in tbl.rows_of[0]]
        assert uids == sorted(uids)  # creation order == uid order

    def test_randomized_ops_against_bruteforce(self):
        """Random add/pin/compute/release/destroy/commit sequences keep
        every incremental aggregate equal to the brute-force rebuild."""
        rng = np.random.default_rng(4242)
        n_tasks, n_workers, max_instances = 5, 4, 3
        tbl = InstanceTable(n_tasks, n_workers, max_instances)
        live = []
        committed = set()
        for _ in range(600):
            op = rng.integers(0, 6)
            if op == 0 and tbl.n_live < n_tasks * max_instances:
                task = int(rng.integers(0, n_tasks))
                used = {
                    inst.replica_id for inst in live if inst.task_id == task
                }
                free_ids = [
                    r for r in range(max_instances) if r not in used
                ]
                if free_ids:
                    inst = self._inst(task, replica_id=free_ids[0])
                    tbl.add(inst)
                    live.append(inst)
            elif op == 1 and live:
                inst = live[int(rng.integers(0, len(live)))]
                if not inst.pinned:
                    inst.worker = int(rng.integers(0, n_workers))
                    inst.data_received = 1
                    tbl.pin(inst)
            elif op == 2 and live:
                inst = live[int(rng.integers(0, len(live)))]
                free_worker = inst.worker if inst.worker is not None else 0
                if (
                    not inst.computing
                    and tbl.computing_row[free_worker] == -1
                ):
                    inst.worker = free_worker
                    inst.computing = True
                    tbl.start_computing(inst)
            elif op == 3 and live:
                inst = live[int(rng.integers(0, len(live)))]
                if inst.replica_id == 0:
                    host = inst.worker
                    if host is not None:
                        tbl.release(inst)
                        reset_instance(inst)
            elif op == 4 and live:
                inst = live.pop(int(rng.integers(0, len(live))))
                tbl.destroy(inst)
            elif op == 5:
                task = int(rng.integers(0, n_tasks))
                if task not in committed:
                    for inst in [
                        i for i in live if i.task_id == task
                    ]:
                        live.remove(inst)
                        tbl.destroy(inst)
                    committed.add(task)
                    tbl.commit_task(task)
            tbl.audit(live, committed)

    def test_reset_clears_everything(self):
        tbl = InstanceTable(2, 2, 2)
        insts = [self._inst(t) for t in range(2)]
        for inst in insts:
            tbl.add(inst)
        tbl.commit_task(0)
        tbl.reset()
        assert tbl.n_live == 0
        assert tbl.n_unpinned == 0
        assert tbl.n_uncommitted == 2
        assert tbl.repl_deficit == 2
        assert len(tbl.free) == len(tbl.task_id)
        tbl.audit([], committed=set())


class TestFullRegistryBitIdentical:
    """Every registry heuristic, both objectives, both step modes —
    mirrors the scheduler-API suite with the stores swapped instead."""

    @pytest.mark.parametrize("step_mode", ["span", "slot"])
    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
    def test_run_objective(self, heuristic, step_mode):
        scenario = ScenarioGenerator(24061).scenario(5, 5, 1, 0)
        outcomes = run_store_pair(
            scenario, heuristic, step_mode=step_mode, budget=30_000
        )
        assert_identical(outcomes)
        assert outcomes["array"][0].makespan is not None  # sanity: finished

    @pytest.mark.parametrize("step_mode", ["span", "slot"])
    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
    def test_run_slots_objective(self, heuristic, step_mode):
        scenario = ScenarioGenerator(24061).scenario(5, 5, 2, 1)
        outcomes = run_store_pair(
            scenario,
            heuristic,
            trial=1,
            objective="run_slots",
            budget=800,
            step_mode=step_mode,
        )
        assert_identical(outcomes)

    @pytest.mark.parametrize("heuristic", ["emct*", "ud*", "random2w", "passive"])
    def test_paper_midpoint_cell_with_audit(self, heuristic):
        """The p=20 midpoint cell, with the table/aggregate cross-check
        (audit) active on both sides."""
        scenario = ScenarioGenerator(24061).scenario(20, 10, 5, 0)
        outcomes = run_store_pair(
            scenario,
            heuristic,
            budget=60_000,
            options_kwargs={"audit": True},
        )
        assert_identical(outcomes)


class TestOptionVariants:
    """Simulator options exercise distinct array-store branches."""

    @pytest.mark.parametrize(
        "options_kwargs",
        [
            {"replication": False},
            {"max_replicas": 0},
            {"max_replicas": 1},
            {"proactive": True},
            {"proactive": True, "audit": True},
            {"replan_every_slot": True},
            {"audit": True},
            {"scheduler_api": "legacy"},
        ],
        ids=[
            "no-replication",
            "zero-replicas",
            "one-replica",
            "proactive",
            "proactive-audit",
            "replan-every",
            "audit",
            "legacy-scheduler-api",
        ],
    )
    def test_option_variants_bit_identical(self, options_kwargs):
        scenario = ScenarioGenerator(71).scenario(5, 5, 2, 0)
        outcomes = run_store_pair(
            scenario, "emct", budget=50_000, options_kwargs=options_kwargs
        )
        assert_identical(outcomes)


class TestRandomizedSweep:
    """Deterministic random configurations across the registry long tail."""

    @pytest.mark.parametrize("config_seed", range(8))
    def test_random_config_bit_identical(self, config_seed):
        cfg = np.random.default_rng(6000 + config_seed)
        n = int(cfg.choice([1, 2, 5, 10, 20, 40]))
        ncom = int(cfg.choice([1, 5, 10, 20]))
        wmin = int(cfg.integers(1, 6))
        heuristic = str(cfg.choice(list(PAPER_HEURISTICS)))
        trial = int(cfg.integers(0, 3))
        objective = str(cfg.choice(["run", "run_slots"]))
        budget = int(cfg.choice([500, 3000, 30_000]))
        step_mode = str(cfg.choice(["span", "slot"]))
        audit = bool(cfg.integers(0, 2))
        scenario = ScenarioGenerator(888).scenario(n, ncom, wmin, 0)
        outcomes = run_store_pair(
            scenario,
            heuristic,
            trial=trial,
            objective=objective,
            budget=budget,
            step_mode=step_mode,
            options_kwargs={"audit": audit},
        )
        assert_identical(outcomes)


class TestLegacyStoreSwapRemove:
    """Satellite: the legacy store's O(1) swap-remove keeps physics and
    events identical while never rebuilding the instance list."""

    def test_legacy_rows_track_positions(self):
        scenario = ScenarioGenerator(24061).scenario(5, 5, 2, 0)
        platform = scenario.build_platform(0)
        sim = MasterSimulator(
            platform,
            scenario.app,
            make_scheduler("emct*", platform=platform),
            options=SimulatorOptions(instance_store="legacy"),
            rng=scenario.scheduler_rng(0, "emct*"),
        )
        finished = False
        for slot in range(2_000):
            finished = sim._step(slot)
            # Invariant after every slot: each live instance records its
            # own list position (the swap-remove contract).
            for position, inst in enumerate(sim._instances):
                assert inst.row == position
            if finished:
                break
        assert finished or sim.report.tasks_committed > 0

    def test_instance_ops_counted_on_array_store_only(self):
        scenario = ScenarioGenerator(24061).scenario(5, 5, 1, 0)
        counts = {}
        for store in ("legacy", "array"):
            platform = scenario.build_platform(0)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler("mct", platform=platform),
                options=SimulatorOptions(instance_store=store),
                rng=scenario.scheduler_rng(0, "mct"),
            )
            sim.run(max_slots=30_000)
            counts[store] = sim.instance_ops
        assert counts["legacy"] == 0
        assert counts["array"] > 0

    def test_rejects_unknown_store(self):
        with pytest.raises(ValueError, match="instance_store"):
            SimulatorOptions(instance_store="bogus")
