"""Array-backed (batch ``RoundState``) vs legacy scalar scheduler path.

The PR-3 redesign gate (DESIGN.md §8): for every registry heuristic, the
simulator driven through ``scheduler_api="array"`` — incremental RoundState
maintenance + batch scoring + array lazy heap — must produce **bit
identical** reports, event logs, and network audit trails to the preserved
``scheduler_api="legacy"`` scalar path, across both objectives and both
stepping modes.  Also covers the compatibility shim (lazily materialised
``ProcessorView``s equal the eager legacy snapshots mid-simulation) and the
batched timeline fill for quiet spans.
"""

import numpy as np
import pytest

from repro.core.heuristics.base import Scheduler
from repro.core.heuristics.registry import (
    HEURISTIC_FACTORIES,
    PAPER_HEURISTICS,
    make_scheduler,
)
from repro.sim.events import EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.timeline import TimelineRecorder
from repro.workload.scenarios import ScenarioGenerator

ALL_HEURISTICS = sorted(HEURISTIC_FACTORIES) + ["clairvoyant"]


def run_pair(
    scenario,
    heuristic,
    *,
    trial=0,
    objective="run",
    budget=40_000,
    step_mode="span",
    options_kwargs=None,
    with_log=True,
):
    """Run the legacy and array scheduler APIs on identical inputs."""
    outcomes = {}
    for api in ("legacy", "array"):
        platform = scenario.build_platform(trial)
        log = EventLog(enabled=with_log)
        options = SimulatorOptions(
            step_mode=step_mode, scheduler_api=api, **(options_kwargs or {})
        )
        sim = MasterSimulator(
            platform,
            scenario.app,
            make_scheduler(heuristic, platform=platform),
            options=options,
            rng=scenario.scheduler_rng(trial, heuristic),
            log=log,
        )
        if objective == "run":
            report = sim.run(max_slots=budget)
        else:
            report = sim.run_slots(budget)
        outcomes[api] = (report, log.events, sim.network.usage)
    return outcomes


def assert_identical(outcomes):
    legacy_report, legacy_events, legacy_usage = outcomes["legacy"]
    array_report, array_events, array_usage = outcomes["array"]
    assert array_report == legacy_report
    assert array_events == legacy_events
    assert array_usage == legacy_usage


class TestFullRegistryBitIdentical:
    """Every registry heuristic, both objectives, both step modes."""

    @pytest.mark.parametrize("step_mode", ["span", "slot"])
    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
    def test_run_objective(self, heuristic, step_mode):
        scenario = ScenarioGenerator(12061).scenario(5, 5, 1, 0)
        outcomes = run_pair(
            scenario, heuristic, step_mode=step_mode, budget=30_000
        )
        assert_identical(outcomes)
        assert outcomes["array"][0].makespan is not None  # sanity: finished

    @pytest.mark.parametrize("step_mode", ["span", "slot"])
    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
    def test_run_slots_objective(self, heuristic, step_mode):
        scenario = ScenarioGenerator(12061).scenario(5, 5, 2, 1)
        outcomes = run_pair(
            scenario,
            heuristic,
            trial=1,
            objective="run_slots",
            budget=800,
            step_mode=step_mode,
        )
        assert_identical(outcomes)

    @pytest.mark.parametrize("heuristic", ["emct*", "ud*", "random2w", "passive"])
    def test_paper_midpoint_cell_with_audit(self, heuristic):
        """The p=20 midpoint cell, with the incremental-maintenance
        cross-check (audit) active on the array side."""
        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        outcomes = run_pair(
            scenario,
            heuristic,
            budget=60_000,
            options_kwargs={"audit": True},
        )
        assert_identical(outcomes)


class TestOptionVariants:
    """Simulator options exercise distinct array-path branches."""

    @pytest.mark.parametrize(
        "options_kwargs",
        [
            {"replication": False},
            {"max_replicas": 0},
            {"proactive": True},
            {"replan_every_slot": True},
            {"audit": True},
        ],
        ids=[
            "no-replication",
            "zero-replicas",
            "proactive",
            "replan-every",
            "audit",
        ],
    )
    def test_option_variants_bit_identical(self, options_kwargs):
        scenario = ScenarioGenerator(7).scenario(5, 5, 2, 0)
        outcomes = run_pair(
            scenario, "emct", budget=50_000, options_kwargs=options_kwargs
        )
        assert_identical(outcomes)


class TestRandomizedSweep:
    """Deterministic random configurations across the registry long tail."""

    @pytest.mark.parametrize("config_seed", range(6))
    def test_random_config_bit_identical(self, config_seed):
        cfg = np.random.default_rng(4000 + config_seed)
        n = int(cfg.choice([1, 2, 5, 10, 20]))
        ncom = int(cfg.choice([1, 5, 10]))
        wmin = int(cfg.integers(1, 6))
        heuristic = str(cfg.choice(list(PAPER_HEURISTICS)))
        trial = int(cfg.integers(0, 3))
        objective = str(cfg.choice(["run", "run_slots"]))
        budget = int(cfg.choice([500, 3000, 30_000]))
        step_mode = str(cfg.choice(["span", "slot"]))
        audit = bool(cfg.integers(0, 2))
        scenario = ScenarioGenerator(999).scenario(n, ncom, wmin, 0)
        outcomes = run_pair(
            scenario,
            heuristic,
            trial=trial,
            objective=objective,
            budget=budget,
            step_mode=step_mode,
            options_kwargs={"audit": audit},
        )
        assert_identical(outcomes)


class _ShimProbe(Scheduler):
    """Wraps an inner scheduler; at every round asserts the lazy shim views
    equal the eager legacy snapshot built from the same simulator state."""

    name = "shim-probe"

    def __init__(self, inner):
        self._inner = inner
        self.sim = None  # attached after construction
        self.rounds_checked = 0

    def place_array(self, rs, n_tasks, allowed=None):
        eager = self.sim._build_context(rs.slot, rs.state)
        lazy = rs.as_context()
        assert len(lazy.processors) == len(eager.processors)
        for eager_view, lazy_view in zip(eager.processors, lazy.processors):
            assert lazy_view == eager_view  # dataclass: field-for-field
        assert lazy.slot == eager.slot
        assert lazy.t_prog == eager.t_prog
        assert lazy.t_data == eager.t_data
        assert lazy.ncom == eager.ncom
        assert lazy.remaining_tasks == eager.remaining_tasks
        assert [v.index for v in lazy.up_processors()] == [
            v.index for v in eager.up_processors()
        ]
        self.rounds_checked += 1
        return self._inner.place_array(rs, n_tasks, allowed)

    def select(self, ctx, candidates, nq, n_active):  # pragma: no cover
        raise NotImplementedError("probe overrides place_array")


class TestCompatibilityShim:
    """Satellite: lazily materialised views == eager legacy snapshots,
    across a randomized sweep of mid-simulation states."""

    @pytest.mark.parametrize("config_seed", range(5))
    def test_lazy_views_equal_eager_snapshots(self, config_seed):
        cfg = np.random.default_rng(8800 + config_seed)
        n = int(cfg.choice([2, 5, 10, 20]))
        ncom = int(cfg.choice([1, 5, 10]))
        wmin = int(cfg.integers(1, 6))
        trial = int(cfg.integers(0, 3))
        inner = str(cfg.choice(["mct", "emct*", "random2w"]))
        scenario = ScenarioGenerator(555).scenario(n, ncom, wmin, 0)
        platform = scenario.build_platform(trial)
        probe = _ShimProbe(make_scheduler(inner, platform=platform))
        sim = MasterSimulator(
            platform,
            scenario.app,
            probe,
            rng=scenario.scheduler_rng(trial, inner),
        )
        probe.sim = sim
        sim.run(max_slots=20_000)
        assert probe.rounds_checked > 0

    def test_shim_probe_is_transparent(self):
        """The probe (legacy eager build + comparisons) must not perturb
        the run: same report as the bare inner heuristic."""
        scenario = ScenarioGenerator(555).scenario(5, 5, 2, 0)
        reports = []
        for wrap in (False, True):
            platform = scenario.build_platform(0)
            inner = make_scheduler("emct*", platform=platform)
            sched = inner
            if wrap:
                sched = _ShimProbe(inner)
            sim = MasterSimulator(
                platform,
                scenario.app,
                sched,
                rng=scenario.scheduler_rng(0, "emct*"),
            )
            if wrap:
                sched.sim = sim
            reports.append(sim.run(max_slots=20_000))
        bare, probed = reports
        # heuristic_name differs by construction; compare the physics.
        probed_dict = dict(probed.__dict__, heuristic_name=bare.heuristic_name)
        assert probed_dict == bare.__dict__


class TestTimelineSpanFill:
    """Satellite: span mode no longer degrades to slot stepping when a
    TimelineRecorder is attached; recorded timelines stay bit-identical."""

    @pytest.mark.parametrize("cell", [(5, 5, 1), (20, 10, 5)])
    @pytest.mark.parametrize("heuristic", ["emct*", "random2w"])
    def test_timeline_bit_identical_across_modes(self, cell, heuristic):
        scenario = ScenarioGenerator(12061).scenario(*cell, 0)
        outcomes = {}
        for mode in ("slot", "span"):
            platform = scenario.build_platform(0)
            timeline = TimelineRecorder(len(platform))
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler(heuristic, platform=platform),
                options=SimulatorOptions(step_mode=mode, audit=True),
                rng=scenario.scheduler_rng(0, heuristic),
                timeline=timeline,
            )
            report = sim.run(max_slots=60_000)
            outcomes[mode] = (report, timeline.matrix(), sim.steps_executed)
        assert outcomes["span"][0] == outcomes["slot"][0]
        assert np.array_equal(outcomes["span"][1], outcomes["slot"][1])
        assert outcomes["span"][1].shape[0] == outcomes["span"][0].slots_simulated

    def test_span_mode_actually_spans_with_timeline(self):
        """The recorder no longer forces the slot loop: boundaries < slots."""
        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        platform = scenario.build_platform(0)
        timeline = TimelineRecorder(len(platform))
        sim = MasterSimulator(
            platform,
            scenario.app,
            make_scheduler("emct*", platform=platform),
            rng=scenario.scheduler_rng(0, "emct*"),
            timeline=timeline,
        )
        assert sim._step_mode_effective() == "span"
        report = sim.run(max_slots=60_000)
        assert sim.steps_executed < report.slots_simulated
        assert timeline.slots_recorded == report.slots_simulated

    def test_record_quiet_span_validates_count(self):
        timeline = TimelineRecorder(2)
        with pytest.raises(ValueError, match="count must be positive"):
            timeline.record_quiet_span(np.zeros(2, dtype=np.uint8), [], [], 0)
