"""Tests for the generic discrete-event kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestTimeouts:
    def test_clock_advances(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_run_until_clamps_clock(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=3.0)
        assert env.now == 3.0

    def test_run_until_past_queue_end(self):
        env = Environment()
        env.timeout(1.0)
        env.run(until=100.0)
        assert env.now == 100.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until_in_past_rejected(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)


class TestEvents:
    def test_succeed_carries_value(self):
        env = Environment()
        evt = env.event()
        evt.succeed("payload")
        assert evt.triggered
        assert evt.value == "payload"

    def test_double_succeed_rejected(self):
        env = Environment()
        evt = env.event()
        evt.succeed()
        with pytest.raises(SimulationError, match="already fired"):
            evt.succeed()

    def test_process_waits_for_event(self):
        env = Environment()
        evt = env.event()
        log = []

        def waiter():
            value = yield evt
            log.append((env.now, value))

        def firer():
            yield env.timeout(4.0)
            evt.succeed("go")

        env.process(waiter())
        env.process(firer())
        env.run()
        assert log == [(4.0, "go")]


class TestProcesses:
    def test_sequential_timeouts(self):
        env = Environment()
        times = []

        def proc():
            yield env.timeout(1.0)
            times.append(env.now)
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [1.0, 3.5]

    def test_return_value_becomes_event_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return 42

        p = env.process(proc())
        env.run()
        assert p.triggered
        assert p.value == 42

    def test_waiting_on_another_process(self):
        env = Environment()

        def child():
            yield env.timeout(3.0)
            return "done"

        def parent():
            result = yield env.process(child())
            return (env.now, result)

        p = env.process(parent())
        env.run()
        assert p.value == (3.0, "done")

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield 5

        env.process(bad())
        with pytest.raises(SimulationError, match="must yield Event"):
            env.run()

    def test_deterministic_tie_order(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestInterrupt:
    def test_interrupt_wakes_process(self):
        env = Environment()
        caught = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                caught.append((env.now, exc.cause))

        def breaker(target):
            yield env.timeout(2.0)
            target.interrupt("wake up")

        target = env.process(sleeper())
        env.process(breaker(target))
        env.run()
        assert caught == [(2.0, "wake up")]

    def test_interrupting_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(0.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError, match="finished"):
            p.interrupt()

    def test_abandoned_wait_does_not_resume(self):
        # After an interrupt, the original timeout must not wake the
        # process a second time.
        env = Environment()
        wakeups = []

        def sleeper():
            try:
                yield env.timeout(5.0)
                wakeups.append("timeout")
            except Interrupt:
                wakeups.append("interrupt")
                yield env.timeout(10.0)
                wakeups.append("second")

        def breaker(target):
            yield env.timeout(1.0)
            target.interrupt()

        target = env.process(sleeper())
        env.process(breaker(target))
        env.run()
        assert wakeups == ["interrupt", "second"]
        assert env.now == 11.0


class TestCombinators:
    def test_all_of_barrier(self):
        env = Environment()

        def proc():
            results = yield AllOf(env, [env.timeout(1.0), env.timeout(5.0)])
            return (env.now, results)

        p = env.process(proc())
        env.run()
        assert p.value == (5.0, [1.0, 5.0])

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        barrier = env.all_of([])
        assert barrier.triggered

    def test_any_of_race(self):
        env = Environment()

        def proc():
            winner = yield AnyOf(env, [env.timeout(9.0), env.timeout(2.0)])
            return (env.now, winner)

        p = env.process(proc())
        env.run()
        assert p.value == (2.0, (1, 2.0))

    def test_any_of_empty_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.any_of([])


class TestRunUntilEvent:
    def test_returns_value(self):
        env = Environment()

        def proc():
            yield env.timeout(2.0)
            return "finished"

        p = env.process(proc())
        assert env.run_until_event(p) == "finished"

    def test_drained_queue_raises(self):
        env = Environment()
        pending = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError, match="drained"):
            env.run_until_event(pending)

    def test_limit_raises(self):
        env = Environment()

        def proc():
            yield env.timeout(50.0)

        p = env.process(proc())
        with pytest.raises(SimulationError, match="limit"):
            env.run_until_event(p, limit=10.0)

    def test_schedule_into_past_rejected(self):
        env = Environment()
        env.timeout(1.0)
        env.run()
        with pytest.raises(SimulationError, match="past"):
            env._schedule(0.0, lambda _: None, None)
