"""Tests for Processor and Platform."""

import numpy as np
import pytest

from repro.core.markov import MarkovAvailabilityModel
from repro.sim.platform import Platform, Processor
from repro.types import ProcState


def model():
    return MarkovAvailabilityModel.from_self_loops(0.9, 0.9, 0.9)


def trace_proc(index, codes="uuu", speed=1):
    from repro.types import states_from_codes

    return Processor.from_trace(index, speed, states_from_codes(codes))


class TestProcessor:
    def test_from_markov_sets_belief(self):
        m = model()
        proc = Processor.from_markov(0, 2, m, np.random.default_rng(0))
        assert proc.belief is m
        assert proc.state_at(0) in list(ProcState)

    def test_from_trace_replays(self):
        proc = trace_proc(0, "urd")
        assert proc.state_at(0) == ProcState.UP
        assert proc.state_at(1) == ProcState.RECLAIMED
        assert proc.state_at(2) == ProcState.DOWN

    def test_from_trace_optional_belief(self):
        m = model()
        proc = Processor.from_trace(0, 1, [0, 1], belief=m)
        assert proc.belief is m

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            trace_proc(0, speed=0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            trace_proc(-1)


class TestPlatform:
    def test_basic_container_protocol(self):
        platform = Platform([trace_proc(0), trace_proc(1)], ncom=1)
        assert len(platform) == 2
        assert platform[1].index == 1
        assert [p.index for p in platform] == [0, 1]

    def test_states_at(self):
        platform = Platform([trace_proc(0, "ur"), trace_proc(1, "du")], ncom=1)
        assert list(platform.states_at(0)) == [0, 2]
        assert list(platform.states_at(1)) == [1, 0]

    def test_up_indices_at(self):
        platform = Platform([trace_proc(0, "ur"), trace_proc(1, "uu")], ncom=1)
        assert platform.up_indices_at(0) == [0, 1]
        assert platform.up_indices_at(1) == [1]

    def test_homogeneity(self):
        assert Platform([trace_proc(0), trace_proc(1)], ncom=1).is_homogeneous
        assert not Platform(
            [trace_proc(0, speed=1), trace_proc(1, speed=2)], ncom=1
        ).is_homogeneous

    def test_unbounded_ncom(self):
        platform = Platform([trace_proc(0)])
        assert platform.ncom is None

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Platform([], ncom=1)

    def test_rejects_duplicate_indices(self):
        with pytest.raises(ValueError, match="duplicate"):
            Platform([trace_proc(0), trace_proc(0)], ncom=1)

    def test_rejects_gapped_indices(self):
        with pytest.raises(ValueError, match="without gaps"):
            Platform([trace_proc(0), trace_proc(2)], ncom=1)

    def test_rejects_bad_ncom(self):
        with pytest.raises(ValueError):
            Platform([trace_proc(0)], ncom=0)


class TestStatesBlock:
    def test_states_block_matches_states_at(self):
        import numpy as np

        from repro.core.markov import MarkovAvailabilityModel

        model = MarkovAvailabilityModel.from_self_loops(0.9, 0.85, 0.9)
        platform = Platform(
            [
                Processor.from_markov(
                    q, 2, model, np.random.default_rng(40 + q)
                )
                for q in range(4)
            ],
            ncom=2,
        )
        block = platform.states_block(10, 40)
        assert block.shape == (30, 4)
        for offset, slot in enumerate(range(10, 40)):
            assert block[offset].tolist() == platform.states_at(slot).tolist()

    def test_platform_next_change_after(self):
        platform = Platform(
            [
                Processor.from_trace(0, 1, [0, 0, 0, 1, 1]),
                Processor.from_trace(1, 1, [0, 0, 1, 1, 1]),
            ],
            ncom=1,
        )
        assert platform.next_change_after(0) == 2  # P1 moves first
        assert platform.next_change_after(3, limit=3) is None
